"""Quickstart: track influential users over a simulated social stream.

Runs the paper's SIC framework over a Twitter-like action stream and prints
the evolving top-k influencers for every window slide, together with their
exact influence value.  Takes a few seconds.

Usage::

    python examples/quickstart.py
"""

from repro import SparseInfluentialCheckpoints, batched
from repro.datasets import twitter_like
from repro.experiments.metrics import StreamEvaluator

WINDOW = 2_000  # the latest N actions we care about
SLIDE = 50  # refresh the answer every L actions
K = 5  # how many influencers to track
STREAM_LENGTH = 8_000


def main() -> None:
    stream = twitter_like(n_users=1_500, n_actions=STREAM_LENGTH, seed=42)

    sic = SparseInfluentialCheckpoints(window_size=WINDOW, k=K, beta=0.2)
    evaluator = StreamEvaluator(WINDOW)  # ground truth for reporting

    print(f"Tracking top-{K} influencers over the last {WINDOW} actions")
    print(f"{'time':>6}  {'seeds':<28} {'claimed':>8} {'exact':>6} {'ckpts':>6}")
    for batch in batched(stream, SLIDE):
        evaluator.feed(batch)
        sic.process(batch)
        answer = sic.query()
        exact = evaluator.influence_value(answer.seeds)
        seeds = ",".join(str(u) for u in sorted(answer.seeds))
        print(
            f"{answer.time:>6}  {seeds:<28} {answer.value:>8.0f} "
            f"{exact:>6.0f} {sic.checkpoint_count:>6}"
        )

    print(
        f"\nSIC kept only ~{sic.checkpoint_count} checkpoints for a "
        f"{WINDOW}-action window (IC would keep {WINDOW // SLIDE})."
    )


if __name__ == "__main__":
    main()
