"""Location-aware SIM (Appendix A): influencers inside a target region.

A city-scale promotion only cares about influence exercised *within the
city*.  Appendix A's recipe: attach a position to every action and run the
frameworks over the sub-stream of actions located inside the query region.
This example compares the downtown leaderboard against the global one.

Usage::

    python examples/geo_campaign.py
"""

import random

from repro import SparseInfluentialCheckpoints, batched
from repro.datasets import twitter_like
from repro.influence import Region, filter_stream, region_filter

WINDOW = 1_500
SLIDE = 300
K = 4

#: Users live in a unit square; the campaign targets the downtown quarter.
DOWNTOWN = Region(min_x=0.0, min_y=0.0, max_x=0.5, max_y=0.5)


def assign_positions(actions, n_users, seed=23):
    """Position oracle: each user posts from around a fixed home location."""
    rng = random.Random(seed)
    home = {}
    position_of = {}
    for action in actions:
        if action.user not in home:
            home[action.user] = (rng.random(), rng.random())
        hx, hy = home[action.user]
        jitter = 0.02
        position_of[action.time] = (
            min(1.0, max(0.0, hx + rng.uniform(-jitter, jitter))),
            min(1.0, max(0.0, hy + rng.uniform(-jitter, jitter))),
        )
    return position_of


def run_leaderboard(label, stream):
    sic = SparseInfluentialCheckpoints(window_size=WINDOW, k=K, beta=0.2)
    final = None
    for batch in batched(stream, SLIDE):
        sic.process(batch)
        final = sic.query()
    seeds = ", ".join(f"u{u}" for u in sorted(final.seeds)) if final else "-"
    value = f"{final.value:.0f}" if final else "-"
    print(f"  {label:<22} top-{K} = [{seeds}]  influence {value}")
    return final


def main() -> None:
    n_users = 1_000
    actions = list(twitter_like(n_users=n_users, n_actions=6_000, seed=5))
    position_of = assign_positions(actions, n_users)

    downtown_stream = list(
        filter_stream(actions, region_filter(position_of, DOWNTOWN))
    )
    print(
        f"{len(downtown_stream)} of {len(actions)} actions happened downtown\n"
    )
    print("Leaderboards:")
    global_answer = run_leaderboard("global", actions)
    downtown_answer = run_leaderboard("downtown only", downtown_stream)

    overlap = global_answer.seeds & downtown_answer.seeds
    print(
        f"\nOnly {len(overlap)} of the top-{K} global influencers also lead "
        "downtown — location-aware targeting changes the buy."
    )


if __name__ == "__main__":
    main()
