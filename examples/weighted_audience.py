"""Beyond cardinality: weighted and conformity-aware influence functions.

The frameworks accept any monotone submodular influence function
(Section 3, Appendix A).  Two business-flavoured variants:

* **weighted audience** — each influenced user is worth their purchase
  propensity, so the query maximises expected reachable revenue;
* **conformity-aware** — an influenced user counts according to
  ``1 − Π (1 − Φ(seed)·Ω(user))``, rewarding seed sets whose members
  reinforce each other on conformist audiences (Appendix A).

The example runs all three functions over the same stream and shows that
the selected seed sets differ.

Usage::

    python examples/weighted_audience.py
"""

import random

from repro import SparseInfluentialCheckpoints, WindowedGreedy, batched
from repro.datasets import reddit_like
from repro.influence import (
    CardinalityInfluence,
    ConformityAwareInfluence,
    WeightedCardinalityInfluence,
)

WINDOW = 1_200
SLIDE = 200
K = 4
N_USERS = 800


def main() -> None:
    rng = random.Random(9)
    actions = list(reddit_like(n_users=N_USERS, n_actions=5_000, seed=17))

    # Purchase propensity: a few whales, many casual users.
    weights = {u: (5.0 if rng.random() < 0.05 else 1.0) for u in range(N_USERS)}
    # Offline influence/conformity scores for the conformity-aware variant.
    phi = {u: rng.random() for u in range(N_USERS)}
    omega = {u: rng.random() for u in range(N_USERS)}

    functions = {
        "cardinality": CardinalityInfluence(),
        "weighted": WeightedCardinalityInfluence(weights),
        "conformity": ConformityAwareInfluence(phi, omega),
    }

    print(f"top-{K} seeds per influence function (same stream, same window)\n")
    answers = {}
    for label, func in functions.items():
        if func.modular:
            algorithm = SparseInfluentialCheckpoints(
                window_size=WINDOW, k=K, beta=0.2, func=func
            )
        else:
            # Non-modular functions: the swap/sieve incremental paths fall
            # back to re-evaluation; windowed greedy is the pragmatic choice.
            algorithm = WindowedGreedy(window_size=WINDOW, k=K, func=func)
        for batch in batched(actions, SLIDE):
            algorithm.process(batch)
        answer = algorithm.query()
        answers[label] = answer
        seeds = ", ".join(f"u{u}" for u in sorted(answer.seeds))
        print(f"  {label:<12} -> [{seeds}]  f = {answer.value:.2f}")

    base = answers["cardinality"].seeds
    for label in ("weighted", "conformity"):
        moved = len(base ^ answers[label].seeds) // 2
        print(f"\n{label}: {moved} of {K} seeds differ from plain cardinality")


if __name__ == "__main__":
    main()
