"""Topic-aware SIM (Appendix A): per-topic influencer tracking.

A marketing team wants the most influential users *per campaign topic* —
say "sports" and "politics" — rather than globally.  Appendix A shows that
topic-aware SIM reduces to running IC/SIC over the sub-stream of actions
relevant to the query topics.  This example:

1. generates a Reddit-like stream and assigns each cascade a topic mix;
2. builds one filtered sub-stream per campaign via ``topic_filter``;
3. runs an independent SIC instance per campaign and prints both leaderboards.

Usage::

    python examples/trending_topics.py
"""

import random

from repro import SparseInfluentialCheckpoints, batched
from repro.datasets import reddit_like
from repro.influence import filter_stream, topic_filter

TOPICS = ("sports", "politics", "music")
WINDOW = 1_500
SLIDE = 250
K = 3


def assign_topics(actions, seed=11):
    """Topic oracle: roots draw a topic; responses inherit their parent's."""
    rng = random.Random(seed)
    topic_of_action = {}
    for action in actions:
        if action.is_root or action.parent not in topic_of_action:
            topic_of_action[action.time] = {rng.choice(TOPICS)}
        else:
            topic_of_action[action.time] = set(topic_of_action[action.parent])
    return topic_of_action


def main() -> None:
    actions = list(reddit_like(n_users=1_200, n_actions=6_000, seed=3))
    topics_of = assign_topics(actions)

    for campaign in ("sports", "politics"):
        predicate = topic_filter(topics_of, {campaign})
        sub_stream = list(filter_stream(actions, predicate))
        print(f"\n=== campaign: {campaign} ({len(sub_stream)} relevant actions) ===")

        sic = SparseInfluentialCheckpoints(window_size=WINDOW, k=K, beta=0.2)
        for batch in batched(sub_stream, SLIDE):
            sic.process(batch)
            answer = sic.query()
            seeds = ", ".join(f"u{u}" for u in sorted(answer.seeds))
            print(
                f"  after {answer.time:>5} actions: top-{K} = [{seeds}] "
                f"(influence {answer.value:.0f})"
            )


if __name__ == "__main__":
    main()
