"""Replay a logged event export through a board of SIM queries.

End-to-end operational flow:

1. a raw "forum export" (usernames + reply-to positions) is ingested and
   normalised into a valid action stream (``repro.datasets.io``);
2. the stream is archived as JSONL, then replayed from disk;
3. a :class:`MultiQueryEngine` answers three queries at once — a global
   top-k board, a high-precision board (small β), and a topic campaign.

Usage::

    python examples/replay_log.py
"""

import random
import tempfile
from pathlib import Path

from repro.core.multi import MultiQueryEngine
from repro.core.sic import SparseInfluentialCheckpoints
from repro.core.stream import batched
from repro.datasets.io import ingest_events, read_jsonl, write_jsonl
from repro.influence.queries import TopicAwareSIM

WINDOW = 1_000
SLIDE = 200
N_EVENTS = 4_000


def fake_forum_export(n_events, seed=31):
    """A raw export: (username, reply_to_position_or_None) pairs."""
    rng = random.Random(seed)
    usernames = [f"user_{i:03d}" for i in range(300)]
    events = []
    for position in range(n_events):
        user = rng.choice(usernames)
        if position and rng.random() < 0.6:
            events.append((user, rng.randrange(position)))
        else:
            events.append((user, None))
    return events


def main() -> None:
    # 1. ingest the raw export.
    events = fake_forum_export(N_EVENTS)
    actions, user_mapping = ingest_events(events)
    print(f"ingested {len(actions)} events from {len(user_mapping)} users")

    # 2. archive + replay from disk.
    with tempfile.TemporaryDirectory() as tmp:
        archive = Path(tmp) / "forum.jsonl"
        write_jsonl(actions, archive)
        print(f"archived to {archive.name} ({archive.stat().st_size:,} bytes)")
        replay = list(read_jsonl(archive))

    # 3. one ingest loop, three queries.
    rng = random.Random(7)
    topics_of = {a.time: {rng.choice(["deals", "support"])} for a in replay}
    engine = (
        MultiQueryEngine()
        .add("global", SparseInfluentialCheckpoints(WINDOW, k=5, beta=0.3))
        .add("precise", SparseInfluentialCheckpoints(WINDOW, k=5, beta=0.1))
        .add(
            "deals-campaign",
            TopicAwareSIM({"deals"}, topics_of, window_size=WINDOW, k=5),
        )
    )
    for batch in batched(replay, SLIDE):
        engine.process(batch)

    id_of = {v: k for k, v in user_mapping.items()}
    print("\nfinal boards:")
    for name, answer in engine.query_all().items():
        seeds = ", ".join(id_of[u] for u in sorted(answer.seeds))
        print(f"  {name:<15} f={answer.value:>6.0f}  [{seeds}]")


if __name__ == "__main__":
    main()
