"""Framework comparison: SIC vs IC vs Greedy vs IMM vs UBI on one stream.

Reproduces the paper's core claim (Section 6.3) on a laptop-scale stream:
the checkpoint frameworks match the quality of recompute-from-scratch
approaches at a fraction of the processing cost.  Prints a table with
throughput, exact influence value, and Monte-Carlo spread quality.

Usage::

    python examples/framework_comparison.py          # default scale
    python examples/framework_comparison.py --quick  # fastest settings
"""

import sys

from repro.experiments.config import Scale, make_config
from repro.experiments.reporting import format_table
from repro.experiments.runner import build_algorithm, make_stream, run_algorithm

APPROACHES = ("sic", "ic", "greedy", "ubi", "imm")


def main() -> None:
    scale = Scale.TINY if "--quick" in sys.argv else Scale.SMALL
    config = make_config("twitter", scale)
    print(
        f"dataset=twitter-like  N={config.window_size}  L={config.slide}  "
        f"k={config.k}  beta={config.beta}\n"
    )
    rows = []
    for name in APPROACHES:
        result = run_algorithm(
            build_algorithm(name, config),
            make_stream(config),
            slide=config.slide,
            name=name.upper(),
            evaluate_quality=True,
            mc_rounds=100,
            quality_every=4,
        )
        rows.append(
            [
                result.name,
                f"{result.throughput:,.0f}",
                f"{result.mean_influence_value:.1f}",
                f"{result.mean_quality:.1f}" if result.mean_quality else "-",
                f"{result.mean_checkpoints:.1f}" if result.mean_checkpoints else "-",
            ]
        )
        print(f"  finished {result.name}")
    print()
    print(
        format_table(
            ["approach", "actions/s", "influence value", "MC spread", "checkpoints"],
            rows,
        )
    )
    print(
        "\nExpected shape (paper Figures 8-9): SIC fastest with quality within"
        "\n~10% of the recompute baselines; IC slower but slightly better;"
        "\nGreedy/IMM highest quality, lowest throughput."
    )


if __name__ == "__main__":
    main()
