"""Unit tests for throughput metering and the ground-truth evaluator."""

import time

import pytest

from repro.core.actions import Action
from repro.experiments.metrics import (
    RateEstimator,
    StreamEvaluator,
    ThroughputMeter,
)
from tests.conftest import make_paper_stream


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestRateEstimator:
    def test_initial_rate_zero(self):
        assert RateEstimator().rate == 0.0

    def test_steady_rate(self):
        clock = FakeClock()
        estimator = RateEstimator(halflife=10.0, clock=clock)
        for _ in range(20):
            clock.now += 1.0
            estimator.record(50)
        # 50 events per second, read at the slide boundary (a read taken
        # later decays toward zero by design — see the idle test).
        assert estimator.rate == pytest.approx(50.0, rel=0.05)

    def test_rate_tracks_recent_past(self):
        clock = FakeClock()
        estimator = RateEstimator(halflife=2.0, clock=clock)
        for _ in range(10):
            clock.now += 1.0
            estimator.record(100)
        fast = estimator.rate
        for _ in range(20):
            clock.now += 1.0
            estimator.record(10)
        slow = estimator.rate
        assert fast == pytest.approx(100.0, rel=0.1)
        assert slow == pytest.approx(10.0, rel=0.1)

    def test_idle_stream_decays_to_zero(self):
        clock = FakeClock()
        estimator = RateEstimator(halflife=1.0, clock=clock)
        estimator.record(100)
        clock.now += 1.0
        estimator.record(100)
        busy = estimator.rate
        clock.now += 60.0  # one idle minute
        assert estimator.rate < busy / 100

    def test_halflife_validated(self):
        with pytest.raises(ValueError, match="halflife"):
            RateEstimator(halflife=0.0)


class TestThroughputMeter:
    def test_initial_state(self):
        meter = ThroughputMeter()
        assert meter.throughput == 0.0
        assert meter.elapsed == 0.0
        assert meter.actions == 0

    def test_accumulates(self):
        meter = ThroughputMeter()
        meter.start()
        time.sleep(0.01)
        interval = meter.stop(100)
        assert interval > 0
        assert meter.actions == 100
        assert meter.throughput == pytest.approx(100 / meter.elapsed)

    def test_double_start_rejected(self):
        meter = ThroughputMeter()
        meter.start()
        with pytest.raises(RuntimeError, match="already started"):
            meter.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError, match="not started"):
            ThroughputMeter().stop(1)


class TestStreamEvaluator:
    def test_influence_value_matches_example(self):
        evaluator = StreamEvaluator(window_size=8)
        evaluator.feed(make_paper_stream()[:8])
        assert evaluator.influence_value({1, 3}) == 5.0
        evaluator.feed(make_paper_stream()[8:])
        assert evaluator.influence_value({2, 3}) == 6.0
        assert evaluator.influence_value({1, 3}) == 4.0

    def test_window_expiry(self):
        evaluator = StreamEvaluator(window_size=2)
        evaluator.feed([Action.root(1, 1), Action.root(2, 2), Action.root(3, 3)])
        assert evaluator.influence_value({1}) == 0.0
        assert evaluator.influence_value({2, 3}) == 2.0

    def test_quality_runs_monte_carlo(self):
        evaluator = StreamEvaluator(window_size=8)
        evaluator.feed(make_paper_stream()[:8])
        spread = evaluator.quality({1, 3}, mc_rounds=200, seed=1)
        # Seeds themselves activate, so spread >= |{1,3} ∩ graph nodes|.
        assert spread >= 2.0
        assert spread <= 6.0

    def test_quality_deterministic_under_seed(self):
        evaluator = StreamEvaluator(window_size=8)
        evaluator.feed(make_paper_stream()[:8])
        a = evaluator.quality({1, 3}, mc_rounds=100, seed=3)
        b = evaluator.quality({1, 3}, mc_rounds=100, seed=3)
        assert a == b

    def test_empty_seed_quality(self):
        evaluator = StreamEvaluator(window_size=8)
        evaluator.feed(make_paper_stream()[:8])
        assert evaluator.quality(set(), mc_rounds=10, seed=1) == 0.0
