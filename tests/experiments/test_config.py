"""Unit tests for experiment configuration and scale presets."""

import pytest

from repro.experiments.config import (
    BETA_GRID,
    DATASETS,
    K_GRID,
    ExperimentConfig,
    Scale,
    make_config,
)


class TestExperimentConfig:
    def test_valid_construction(self):
        config = ExperimentConfig(
            dataset="syn-o", n_users=100, n_actions=1000,
            window_size=200, slide=10, k=5, beta=0.3,
        )
        assert config.dataset == "syn-o"

    def test_unknown_dataset(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            ExperimentConfig(
                dataset="facebook", n_users=10, n_actions=10,
                window_size=5, slide=1, k=1, beta=0.1,
            )

    def test_slide_exceeding_window(self):
        with pytest.raises(ValueError, match="slide"):
            ExperimentConfig(
                dataset="syn-o", n_users=10, n_actions=10,
                window_size=5, slide=6, k=1, beta=0.1,
            )

    def test_with_overrides(self):
        config = make_config("syn-n", Scale.TINY)
        changed = config.with_overrides(k=99, beta=0.5)
        assert changed.k == 99
        assert changed.beta == 0.5
        assert changed.dataset == config.dataset
        assert config.k != 99  # original untouched


class TestPresets:
    def test_grids_match_table4(self):
        assert BETA_GRID == (0.1, 0.2, 0.3, 0.4, 0.5)
        assert K_GRID == (5, 25, 50, 75, 100)
        assert set(DATASETS) == {"reddit", "twitter", "syn-o", "syn-n"}

    @pytest.mark.parametrize("scale", list(Scale))
    def test_all_scales_resolve(self, scale):
        config = make_config("reddit", scale)
        assert config.window_size <= config.n_actions
        assert 1 <= config.slide <= config.window_size
        assert config.beta == 0.3  # Table 4 default

    def test_paper_scale_is_table4(self):
        config = make_config("reddit", Scale.PAPER)
        assert config.window_size == 500_000
        assert config.slide == 5_000
        assert config.k == 50
        assert config.n_users == 2_000_000

    def test_scales_are_ordered(self):
        sizes = [
            make_config("syn-o", scale).window_size
            for scale in (Scale.TINY, Scale.SMALL, Scale.MEDIUM, Scale.PAPER)
        ]
        assert sizes == sorted(sizes)

    def test_make_config_overrides(self):
        config = make_config("syn-o", Scale.TINY, k=77)
        assert config.k == 77
