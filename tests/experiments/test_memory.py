"""Unit tests for framework memory accounting (Figure 6's space claim)."""

from repro.core.ic import InfluentialCheckpoints
from repro.core.sic import SparseInfluentialCheckpoints
from repro.experiments.memory import FrameworkFootprint, measure_footprint
from tests.conftest import random_stream


def drive(algorithm, actions):
    for action in actions:
        algorithm.process([action])
    return algorithm


class TestMeasureFootprint:
    def test_empty_framework(self):
        footprint = measure_footprint(InfluentialCheckpoints(window_size=5, k=2))
        assert footprint.checkpoints == 0
        assert footprint.total_entries == 0

    def test_counts_grow_with_stream(self):
        sic = SparseInfluentialCheckpoints(window_size=30, k=2, beta=0.3)
        drive(sic, random_stream(30, 6, seed=1))
        footprint = measure_footprint(sic)
        assert footprint.checkpoints == sic.checkpoint_count
        assert footprint.index_users > 0
        assert footprint.index_entries >= footprint.index_users
        assert footprint.oracle_instances > 0  # sieve oracle

    def test_swap_oracle_counts_cover_entries(self):
        sic = SparseInfluentialCheckpoints(
            window_size=30, k=2, beta=0.3, oracle="blog_watch"
        )
        drive(sic, random_stream(60, 6, seed=2))
        footprint = measure_footprint(sic)
        assert footprint.oracle_instances == 0
        assert footprint.oracle_covered_entries > 0

    def test_sic_is_smaller_than_ic(self):
        """The space side of Figure 6: SIC's footprint ≪ IC's."""
        actions = random_stream(300, 10, seed=3)
        ic = drive(InfluentialCheckpoints(window_size=100, k=3, beta=0.3), actions)
        sic = drive(
            SparseInfluentialCheckpoints(window_size=100, k=3, beta=0.3), actions
        )
        ic_footprint = measure_footprint(ic)
        sic_footprint = measure_footprint(sic)
        assert sic_footprint.checkpoints < ic_footprint.checkpoints
        assert sic_footprint.ratio_to(ic_footprint) < 0.5

    def test_larger_beta_smaller_footprint(self):
        actions = random_stream(300, 10, seed=4)
        tight = drive(
            SparseInfluentialCheckpoints(window_size=100, k=3, beta=0.1), actions
        )
        loose = drive(
            SparseInfluentialCheckpoints(window_size=100, k=3, beta=0.5), actions
        )
        assert (
            measure_footprint(loose).total_entries
            <= measure_footprint(tight).total_entries
        )

    def test_ratio_to_zero_footprint(self):
        empty = FrameworkFootprint(0, 0, 0, 0, 0)
        assert empty.ratio_to(empty) == 0.0
