"""Unit tests for framework memory accounting (Figure 6's space claim)."""

from repro.core.ic import InfluentialCheckpoints
from repro.core.sic import SparseInfluentialCheckpoints
from repro.experiments.memory import FrameworkFootprint, measure_footprint
from tests.conftest import random_stream


def drive(algorithm, actions):
    for action in actions:
        algorithm.process([action])
    return algorithm


class TestMeasureFootprint:
    def test_empty_framework(self):
        footprint = measure_footprint(InfluentialCheckpoints(window_size=5, k=2))
        assert footprint.checkpoints == 0
        assert footprint.total_entries == 0

    def test_counts_grow_with_stream(self):
        sic = SparseInfluentialCheckpoints(window_size=30, k=2, beta=0.3)
        drive(sic, random_stream(30, 6, seed=1))
        footprint = measure_footprint(sic)
        assert footprint.shared
        assert footprint.checkpoints == sic.checkpoint_count
        assert footprint.index_users > 0
        assert footprint.index_entries >= footprint.index_users
        assert footprint.oracle_instances > 0  # sieve oracle

    def test_swap_oracle_counts_cover_entries(self):
        sic = SparseInfluentialCheckpoints(
            window_size=30, k=2, beta=0.3, oracle="blog_watch"
        )
        drive(sic, random_stream(60, 6, seed=2))
        footprint = measure_footprint(sic)
        assert footprint.oracle_instances == 0
        assert footprint.oracle_covered_entries > 0

    def test_sic_is_smaller_than_ic_per_checkpoint(self):
        """The space side of Figure 6, on the per-checkpoint reference
        indexes the paper's analysis describes: SIC's footprint ≪ IC's."""
        actions = random_stream(300, 10, seed=3)
        ic = drive(
            InfluentialCheckpoints(
                window_size=100, k=3, beta=0.3, shared_index=False
            ),
            actions,
        )
        sic = drive(
            SparseInfluentialCheckpoints(
                window_size=100, k=3, beta=0.3, shared_index=False
            ),
            actions,
        )
        ic_footprint = measure_footprint(ic)
        sic_footprint = measure_footprint(sic)
        assert not ic_footprint.shared
        assert sic_footprint.checkpoints < ic_footprint.checkpoints
        assert sic_footprint.ratio_to(ic_footprint) < 0.5

    def test_shared_index_does_not_scale_with_checkpoints(self):
        """The tentpole's memory claim: physical index entries are the
        distinct pairs, not the sum of all suffix sizes."""
        actions = random_stream(300, 10, seed=3)
        shared = drive(
            InfluentialCheckpoints(window_size=100, k=3, beta=0.3), actions
        )
        reference = drive(
            InfluentialCheckpoints(
                window_size=100, k=3, beta=0.3, shared_index=False
            ),
            actions,
        )
        shared_fp = measure_footprint(shared)
        reference_fp = measure_footprint(reference)
        assert shared_fp.shared
        assert shared_fp.checkpoints == reference_fp.checkpoints == 100
        # ~100 live checkpoints each duplicating a suffix: the shared map
        # must be an order of magnitude below the per-checkpoint sum.
        assert shared_fp.index_entries * 10 < reference_fp.index_entries
        # And it can never exceed twice the visible pairs (compaction's
        # amortised doubling bound) — here bounded loosely by the window's
        # worst case of one pair per (influencer, action) credit.
        assert shared_fp.index_entries <= 2 * reference_fp.index_entries / 100 + 64

    def test_larger_beta_smaller_footprint(self):
        actions = random_stream(300, 10, seed=4)
        tight = drive(
            SparseInfluentialCheckpoints(
                window_size=100, k=3, beta=0.1, shared_index=False
            ),
            actions,
        )
        loose = drive(
            SparseInfluentialCheckpoints(
                window_size=100, k=3, beta=0.5, shared_index=False
            ),
            actions,
        )
        assert (
            measure_footprint(loose).total_entries
            <= measure_footprint(tight).total_entries
        )

    def test_ratio_to_zero_footprint(self):
        empty = FrameworkFootprint(0, 0, 0, 0, 0)
        assert empty.ratio_to(empty) == 0.0
