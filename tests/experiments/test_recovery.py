"""The crash/recovery experiment scenario."""

import pytest

from repro.core.ic import InfluentialCheckpoints
from repro.core.sic import SparseInfluentialCheckpoints
from repro.experiments.recovery import crash_recovery_run
from tests.conftest import random_stream


@pytest.mark.parametrize(
    "factory",
    [
        lambda: InfluentialCheckpoints(window_size=40, k=3, beta=0.25),
        lambda: SparseInfluentialCheckpoints(window_size=40, k=3, beta=0.25),
    ],
)
def test_scenario_passes_for_checkpoint_frameworks(factory, tmp_path):
    report = crash_recovery_run(
        factory,
        random_stream(120, 8, seed=2),
        slide=4,
        kill_at_slide=17,
        state_dir=tmp_path,
        snapshot_every=5,
        fsync=False,
    )
    assert report.identical
    assert report.first_divergence is None
    assert report.slides_total == 30
    assert report.kill_at_slide == 17
    assert report.replayed_slides == 2  # snapshot at 15, WAL 16-17
    assert report.snapshot_count >= 1
    assert report.restore_seconds >= 0.0


def test_kill_slide_validated(tmp_path):
    with pytest.raises(ValueError):
        crash_recovery_run(
            lambda: InfluentialCheckpoints(window_size=10, k=2),
            random_stream(20, 5, seed=0),
            slide=5,
            kill_at_slide=4,  # == slides_total
            state_dir=tmp_path,
        )


def test_report_labels_default_to_class_name(tmp_path):
    report = crash_recovery_run(
        lambda: InfluentialCheckpoints(window_size=20, k=2),
        random_stream(40, 6, seed=1),
        slide=2,
        kill_at_slide=10,
        state_dir=tmp_path,
        snapshot_every=4,
        fsync=False,
    )
    assert report.name == "InfluentialCheckpoints"
    assert report.identical
