"""Tests for the repro-experiments CLI."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["table3"])
        assert args.scale == "small"
        assert args.datasets is None
        assert args.seed == 7

    def test_dataset_choices(self):
        args = build_parser().parse_args(
            ["fig7", "--datasets", "syn-n", "reddit"]
        )
        assert args.datasets == ["syn-n", "reddit"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig7", "--datasets", "myspace"])


class TestMain:
    def test_table3_runs(self, capsys):
        code = main(["table3", "--scale", "tiny", "--datasets", "syn-n"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "syn-n" in out

    def test_csv_output(self, tmp_path, capsys):
        target = tmp_path / "out.csv"
        code = main([
            "table3", "--scale", "tiny", "--datasets", "syn-n",
            "--csv", str(target),
        ])
        assert code == 0
        content = target.read_text()
        assert content.startswith("# Table 3")
        assert "dataset" in content

    def test_fig6_runs(self, capsys):
        code = main(["fig6", "--scale", "tiny", "--datasets", "syn-n"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "SIC" in out
