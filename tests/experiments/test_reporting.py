"""Unit tests for text-table reporting."""

import pytest

from repro.experiments.reporting import ExperimentTable, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "long_header"], [[1, 2.5], [33, None]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "long_header" in lines[0]
        assert "-" in lines[1]
        assert "33" in lines[3]
        assert "-" in lines[3]  # None rendered as '-'

    def test_float_formatting(self):
        text = format_table(["x"], [[1234.5], [0.125]])
        assert "1,234" in text or "1,235" in text
        assert "0.12" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestExperimentTable:
    def make(self):
        table = ExperimentTable("Fig X", ["dataset", "beta", "value"])
        table.add_row("syn-o", 0.1, 10.0)
        table.add_row("syn-o", 0.2, 8.0)
        table.add_row("syn-n", 0.1, 5.0)
        return table

    def test_add_row_validates_length(self):
        table = self.make()
        with pytest.raises(ValueError, match="expected 3"):
            table.add_row(1, 2)

    def test_render_contains_title(self):
        assert self.make().render().startswith("Fig X")

    def test_column(self):
        assert self.make().column("beta") == [0.1, 0.2, 0.1]
        with pytest.raises(ValueError):
            self.make().column("missing")

    def test_series_filters(self):
        table = self.make()
        assert table.series({"dataset": "syn-o"}, "value") == [10.0, 8.0]
        assert table.series({"dataset": "syn-n", "beta": 0.1}, "value") == [5.0]
        assert table.series({"dataset": "none"}, "value") == []

    def test_to_csv(self):
        csv_text = self.make().to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "dataset,beta,value"
        assert len(lines) == 4
