"""Unit tests for ASCII chart rendering."""

import pytest

from repro.experiments.reporting import ExperimentTable, ascii_chart


class TestAsciiChart:
    def test_basic_render(self):
        chart = ascii_chart({"A": [1, 2, 3]}, [10, 20, 30], width=20, height=5)
        lines = chart.splitlines()
        assert len(lines) == 5 + 3  # grid + axis + labels + legend
        assert "o=A" in lines[-1]
        assert "10" in lines[-2] and "30" in lines[-2]

    def test_two_series_distinct_markers(self):
        chart = ascii_chart(
            {"SIC": [5, 6], "IC": [1, 2]}, [0.1, 0.5], width=10, height=4
        )
        assert "o=IC" in chart
        assert "x=SIC" in chart
        assert "o" in chart and "x" in chart

    def test_extremes_on_first_and_last_rows(self):
        chart = ascii_chart({"A": [0, 10]}, [1, 2], width=10, height=4)
        lines = chart.splitlines()
        assert "o" in lines[3]  # min on the bottom grid row
        assert "o" in lines[0]  # max on the top grid row

    def test_constant_series(self):
        chart = ascii_chart({"A": [5, 5, 5]}, [1, 2, 3], width=12, height=4)
        assert "o" in chart  # must not divide by zero

    def test_validation(self):
        assert ascii_chart({}, []) == "(no data)"
        with pytest.raises(ValueError, match="x-label"):
            ascii_chart({"A": [1, 2]}, [1, 2, 3])
        with pytest.raises(ValueError, match="two points"):
            ascii_chart({"A": [1]}, [1])


class TestTableChart:
    def make(self):
        table = ExperimentTable(
            "Fig", ["dataset", "beta", "algorithm", "throughput"]
        )
        for beta, sic, ic in [(0.1, 3.0, 1.0), (0.5, 17.0, 3.2)]:
            table.add_row("syn-n", beta, "SIC", sic)
            table.add_row("syn-n", beta, "IC", ic)
            table.add_row("reddit", beta, "SIC", sic * 2)
        return table

    def test_chart_by_group(self):
        chart = self.make().chart(
            "beta", "throughput", "algorithm", filters={"dataset": "syn-n"}
        )
        assert "o=IC" in chart and "x=SIC" in chart

    def test_filter_excludes_other_datasets(self):
        chart = self.make().chart(
            "beta", "throughput", "algorithm", filters={"dataset": "reddit"}
        )
        # reddit rows only contain SIC.
        assert "SIC" in chart and "o=IC" not in chart

    def test_series_with_none_skipped(self):
        table = ExperimentTable("Fig", ["dataset", "x", "algorithm", "y"])
        table.add_row("d", 1, "A", 1.0)
        table.add_row("d", 2, "A", None)
        table.add_row("d", 1, "B", 1.0)
        table.add_row("d", 2, "B", 2.0)
        chart = table.chart("x", "y", "algorithm")
        assert "o=B" in chart and "A" not in chart.splitlines()[-1].replace("o=B", "")


class TestCliChartFlag:
    def test_chart_flag(self, capsys):
        from repro.experiments.cli import main

        code = main([
            "fig6", "--scale", "tiny", "--datasets", "syn-n", "--chart",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "checkpoints vs beta" in out
        assert "=SIC" in out  # legend of the chart
