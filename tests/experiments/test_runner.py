"""Integration tests for the experiment runner."""

import pytest

from repro.core.sic import SparseInfluentialCheckpoints
from repro.experiments.config import Scale, make_config
from repro.experiments.runner import build_algorithm, make_stream, run_algorithm
from tests.conftest import random_stream


def tiny_config(**overrides):
    defaults = dict(
        n_users=200, n_actions=600, window_size=150, slide=30, k=3,
    )
    defaults.update(overrides)
    return make_config("syn-n", Scale.TINY).with_overrides(**defaults)


class TestRunAlgorithm:
    def test_basic_run(self):
        config = tiny_config()
        result = run_algorithm(
            build_algorithm("sic", config),
            make_stream(config),
            slide=config.slide,
            name="SIC",
        )
        assert result.name == "SIC"
        assert result.queries > 0
        assert result.throughput > 0
        assert result.mean_influence_value > 0
        assert result.mean_checkpoints is not None
        assert result.mean_quality is None

    def test_quality_evaluation(self):
        config = tiny_config()
        result = run_algorithm(
            build_algorithm("greedy", config),
            make_stream(config),
            slide=config.slide,
            evaluate_quality=True,
            mc_rounds=50,
            quality_every=2,
        )
        assert result.mean_quality is not None
        assert result.mean_quality > 0

    def test_warmup_excludes_early_windows(self):
        config = tiny_config()
        algorithm = SparseInfluentialCheckpoints(
            window_size=config.window_size, k=config.k
        )
        result = run_algorithm(
            algorithm,
            make_stream(config),
            slide=config.slide,
            warmup_fraction=0.5,
        )
        total_slides = config.n_actions // config.slide
        assert result.queries == total_slides - int(total_slides * 0.5)

    def test_validation(self):
        config = tiny_config()
        algorithm = build_algorithm("sic", config)
        with pytest.raises(ValueError, match="slide"):
            run_algorithm(algorithm, [], slide=0)
        with pytest.raises(ValueError, match="warmup"):
            run_algorithm(algorithm, [], slide=1, warmup_fraction=1.0)

    def test_default_name_is_class_name(self):
        config = tiny_config()
        result = run_algorithm(
            build_algorithm("sic", config),
            random_stream(300, 50, seed=1),
            slide=30,
        )
        assert result.name == "SparseInfluentialCheckpoints"


class TestBuildAlgorithm:
    @pytest.mark.parametrize("name,expected_k", [
        ("sic", 3), ("ic", 3), ("greedy", 3), ("imm", 3), ("ubi", 3),
    ])
    def test_all_names(self, name, expected_k):
        algorithm = build_algorithm(name, tiny_config())
        assert algorithm.k == expected_k
        assert algorithm.window_size == 150

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            build_algorithm("magic", tiny_config())


class TestMakeStream:
    @pytest.mark.parametrize("dataset", ["reddit", "twitter", "syn-o", "syn-n"])
    def test_all_datasets(self, dataset):
        config = tiny_config().with_overrides(dataset=dataset)
        actions = list(make_stream(config))
        assert len(actions) == config.n_actions
        assert all(0 <= a.user < config.n_users for a in actions)
