"""Edge-case tests for the experiment runner and figure plumbing."""

import pytest

from repro.core.sic import SparseInfluentialCheckpoints
from repro.experiments.config import Scale, make_config
from repro.experiments.runner import build_algorithm, make_stream, run_algorithm
from tests.conftest import random_stream


class TestQualityCadence:
    def test_quality_every_reduces_evaluations(self):
        config = make_config("syn-n", Scale.TINY).with_overrides(
            n_actions=600, window_size=150, slide=30, k=3
        )
        dense = run_algorithm(
            build_algorithm("sic", config), make_stream(config),
            slide=config.slide, evaluate_quality=True, mc_rounds=20,
            quality_every=1, warmup_fraction=0.0,
        )
        sparse = run_algorithm(
            build_algorithm("sic", config), make_stream(config),
            slide=config.slide, evaluate_quality=True, mc_rounds=20,
            quality_every=5, warmup_fraction=0.0,
        )
        # Same stream, same seeds -> similar quality, fewer MC calls.
        assert dense.mean_quality is not None
        assert sparse.mean_quality is not None
        assert dense.queries == sparse.queries

    def test_zero_warmup_measures_all_slides(self):
        config = make_config("syn-n", Scale.TINY).with_overrides(
            n_actions=300, window_size=100, slide=50, k=2
        )
        result = run_algorithm(
            build_algorithm("greedy", config), make_stream(config),
            slide=config.slide, warmup_fraction=0.0,
        )
        assert result.queries == 6

    def test_short_stream_with_large_warmup(self):
        algorithm = SparseInfluentialCheckpoints(window_size=50, k=2)
        result = run_algorithm(
            algorithm, random_stream(40, 5, seed=1), slide=20,
            warmup_fraction=0.9,
        )
        # 2 batches, warmup floor(2*0.9)=1 -> exactly one measured query.
        assert result.queries == 1

    def test_empty_stream(self):
        algorithm = SparseInfluentialCheckpoints(window_size=10, k=2)
        result = run_algorithm(algorithm, [], slide=5)
        assert result.queries == 0
        assert result.throughput == 0.0
        assert result.mean_influence_value == 0.0


class TestConfigInteraction:
    def test_oracle_override_flows_to_frameworks(self):
        config = make_config("syn-n", Scale.TINY, oracle="threshold")
        sic = build_algorithm("sic", config)
        for action in random_stream(60, 8, seed=2):
            sic.process([action])
        from repro.core.oracles.threshold import ThresholdStreamOracle

        assert isinstance(sic.checkpoints[0].oracle, ThresholdStreamOracle)

    def test_beta_override_flows_to_sic(self):
        config = make_config("syn-n", Scale.TINY, beta=0.42)
        sic = build_algorithm("sic", config)
        assert sic.beta == pytest.approx(0.42)

    def test_k_flows_to_all(self):
        config = make_config("syn-n", Scale.TINY, k=7)
        for name in ("sic", "ic", "greedy", "imm", "ubi"):
            assert build_algorithm(name, config).k == 7
