"""Integration tests for the per-figure regenerators (reduced grids)."""

import pytest

from repro.experiments import figures
from repro.experiments.config import Scale


@pytest.fixture(scope="module")
def beta_tables():
    """One shared tiny β sweep for the fig5/6/7 assertions."""
    return figures.fig5_6_7(
        scale=Scale.TINY, datasets=("syn-n",), betas=(0.1, 0.4), seed=7
    )


class TestFig567(object):
    def test_tables_present(self, beta_tables):
        assert set(beta_tables) == {"fig5", "fig6", "fig7"}

    def test_fig5_rows(self, beta_tables):
        table = beta_tables["fig5"]
        assert len(table.rows) == 4  # 2 betas x 2 algorithms
        assert set(table.column("algorithm")) == {"IC", "SIC"}

    def test_fig6_ic_constant_sic_decreasing(self, beta_tables):
        table = beta_tables["fig6"]
        ic_counts = table.series({"algorithm": "IC"}, "checkpoints")
        sic_counts = table.series({"algorithm": "SIC"}, "checkpoints")
        # IC: constant ceil(N/L); SIC: fewer, and fewer still for larger β.
        assert ic_counts[0] == ic_counts[1]
        assert all(s < i for s, i in zip(sic_counts, ic_counts))
        assert sic_counts[1] <= sic_counts[0]

    def test_fig7_sic_faster_than_ic(self, beta_tables):
        table = beta_tables["fig7"]
        for beta in (0.1, 0.4):
            ic = table.series({"algorithm": "IC", "beta": beta}, "throughput")[0]
            sic = table.series({"algorithm": "SIC", "beta": beta}, "throughput")[0]
            assert sic > ic

    def test_fig5_values_positive(self, beta_tables):
        assert all(v > 0 for v in beta_tables["fig5"].column("influence_value"))


class TestFig89:
    def test_reduced_sweep(self):
        tables = figures.fig8_9(
            scale=Scale.TINY,
            datasets=("syn-n",),
            ks=(5,),
            algorithms=("sic", "greedy"),
            mc_rounds=30,
            quality_every=5,
            seed=7,
        )
        quality = tables["fig8"]
        throughput = tables["fig9"]
        assert len(quality.rows) == 2
        assert all(v is not None and v > 0 for v in quality.column("spread"))
        assert all(v > 0 for v in throughput.column("throughput"))


class TestScalabilityFigures:
    def test_fig10_structure(self):
        table = figures.fig10(
            scale=Scale.TINY, datasets=("syn-n",), factors=(0.5, 1.0),
            algorithms=("sic",), seed=7,
        )
        assert len(table.rows) == 2
        sizes = table.column("window_size")
        assert sizes[0] < sizes[1]

    def test_fig11_structure(self):
        table = figures.fig11(
            scale=Scale.TINY, datasets=("syn-n",), fractions=(0.01, 0.02),
            algorithms=("sic", "ic"), seed=7,
        )
        assert len(table.rows) == 4
        # IC throughput grows with L (fewer checkpoints per action).
        ic = table.series({"algorithm": "IC"}, "throughput")
        assert ic[1] > ic[0] * 0.8  # allow noise, expect roughly increasing

    def test_fig12_structure(self):
        table = figures.fig12(
            scale=Scale.TINY, datasets=("syn-n",), factors=(1.0, 2.0),
            algorithms=("sic",), seed=7,
        )
        users = table.column("n_users")
        assert users[0] < users[1]


class TestTables:
    def test_table2_all_oracles(self):
        table = figures.table2(scale=Scale.TINY, dataset="syn-n", seed=7)
        assert table.column("oracle") == [
            "sieve", "threshold", "blog_watch", "mkc"
        ]
        assert all(v > 0 for v in table.column("influence_value"))

    def test_table3_all_datasets(self):
        table = figures.table3(scale=Scale.TINY, seed=7)
        assert len(table.rows) == 4
        assert all(v > 0 for v in table.column("avg_depth"))
