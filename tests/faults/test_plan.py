"""FaultPlan: validation, round-trips, filtering, seeded generation."""

import pytest

from repro.faults import FAULT_KINDS, Fault, FaultPlan


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault(kind="explode", shard=0, at_slide=1)

    def test_worker_kinds_need_a_slide(self):
        for kind in ("kill", "drop_reply"):
            with pytest.raises(ValueError, match="at_slide >= 1"):
                Fault(kind=kind, shard=0)

    def test_hang_needs_positive_seconds(self):
        with pytest.raises(ValueError, match="seconds > 0"):
            Fault(kind="hang", shard=0, at_slide=2)

    def test_negative_shard_rejected(self):
        with pytest.raises(ValueError, match="shard must be >= 0"):
            Fault(kind="kill", shard=-1, at_slide=1)

    def test_corrupt_wal_tail_accepts_any_restart(self):
        # at_slide=0 means "the first restart, whenever it happens".
        fault = Fault(kind="corrupt_wal_tail", shard=1)
        assert fault.at_slide == 0
        with pytest.raises(ValueError, match="nbytes"):
            Fault(kind="corrupt_wal_tail", shard=1, nbytes=0)

    def test_plan_rejects_non_fault_entries(self):
        with pytest.raises(TypeError, match="Fault entries"):
            FaultPlan([{"kind": "kill", "shard": 0, "at_slide": 1}])


class TestRoundTrip:
    def _plan(self):
        return FaultPlan(
            [
                Fault(kind="kill", shard=1, at_slide=3),
                Fault(kind="hang", shard=0, at_slide=5, seconds=2.0),
                Fault(kind="drop_reply", shard=1, at_slide=8),
                Fault(kind="corrupt_wal_tail", shard=1, at_slide=3, nbytes=2),
            ],
            seed=7,
        )

    def test_json_round_trip_is_identity(self):
        plan = self._plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_save_load_round_trip(self, tmp_path):
        plan = self._plan()
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_state_emits_only_relevant_knobs(self):
        state = Fault(kind="kill", shard=0, at_slide=1).to_state()
        assert set(state) == {"kind", "shard", "at_slide"}
        state = Fault(kind="hang", shard=0, at_slide=1, seconds=0.5).to_state()
        assert state["seconds"] == 0.5

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unsupported fault plan format"):
            FaultPlan.from_state({"format": 99, "faults": []})

    def test_unknown_fault_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fault fields"):
            Fault.from_state({"kind": "kill", "shard": 0, "at_slide": 1, "x": 2})


class TestFiltering:
    def test_for_shard_defaults_to_worker_kinds(self):
        plan = FaultPlan(
            [
                Fault(kind="kill", shard=0, at_slide=2),
                Fault(kind="corrupt_wal_tail", shard=0, at_slide=2),
                Fault(kind="hang", shard=1, at_slide=4, seconds=1.0),
            ]
        )
        mine = plan.for_shard(0)
        assert [f.kind for f in mine] == ["kill"]
        facade = plan.for_shard(0, kinds=("corrupt_wal_tail",))
        assert [f.kind for f in facade] == ["corrupt_wal_tail"]

    def test_max_shard(self):
        assert FaultPlan().max_shard() == -1
        plan = FaultPlan([Fault(kind="kill", shard=3, at_slide=1)])
        assert plan.max_shard() == 3

    def test_kinds_are_partitioned(self):
        # Every kind belongs to exactly one side of the injection plane.
        assert len(FAULT_KINDS) == len(set(FAULT_KINDS)) == 4


class TestRandom:
    def test_same_seed_same_plan(self):
        a = FaultPlan.random(seed=11, shards=4, slides=20, kills=3, hangs=2)
        b = FaultPlan.random(seed=11, shards=4, slides=20, kills=3, hangs=2)
        assert a == b
        assert len(a) == 5
        assert a.seed == 11

    def test_different_seed_different_plan(self):
        a = FaultPlan.random(seed=1, shards=4, slides=50, kills=4)
        b = FaultPlan.random(seed=2, shards=4, slides=50, kills=4)
        assert a != b

    def test_faults_land_on_distinct_cells_in_range(self):
        plan = FaultPlan.random(seed=5, shards=2, slides=6, kills=6, hangs=3)
        cells = [(f.shard, f.at_slide) for f in plan]
        assert len(set(cells)) == len(cells)
        for fault in plan:
            assert 0 <= fault.shard < 2
            assert 1 <= fault.at_slide <= 6

    def test_too_many_faults_rejected(self):
        with pytest.raises(ValueError, match="do not fit"):
            FaultPlan.random(seed=1, shards=1, slides=2, kills=3)
