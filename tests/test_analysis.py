"""Unit tests for the optimality-analysis helpers."""

import pytest

from repro.analysis.optimality import (
    MAX_CANDIDATES,
    RatioReport,
    RatioTracker,
    exact_optimum,
)
from repro.core.diffusion import DiffusionForest
from repro.core.greedy import WindowedGreedy
from repro.core.influence_index import WindowInfluenceIndex
from repro.core.sic import SparseInfluentialCheckpoints
from tests.conftest import make_paper_stream, random_stream


def window_index(actions, size):
    forest = DiffusionForest()
    index = WindowInfluenceIndex()
    records = []
    for action in actions:
        record = forest.add(action)
        records.append(record)
        index.add(record)
        if len(records) > size:
            index.remove(records.pop(0))
    return index


class TestExactOptimum:
    def test_paper_example(self):
        index = window_index(make_paper_stream()[:8], 8)
        seeds, value = exact_optimum(index, k=2)
        assert value == 5.0
        assert seeds == {1, 3}

    def test_empty_index(self):
        seeds, value = exact_optimum(WindowInfluenceIndex(), k=3)
        assert seeds == frozenset() and value == 0.0

    def test_duplicate_influence_sets_deduplicated(self):
        # Users 10..25 all with identical singleton influence sets must not
        # explode the combination count.
        from repro.core.actions import Action

        forest = DiffusionForest()
        index = WindowInfluenceIndex()
        for t in range(1, 60):
            index.add(forest.add(Action.root(t, 0)))
        seeds, value = exact_optimum(index, k=2)
        assert value == 1.0

    def test_candidate_limit(self):
        from repro.core.actions import Action

        forest = DiffusionForest()
        index = WindowInfluenceIndex()
        for t in range(1, MAX_CANDIDATES + 3):
            index.add(forest.add(Action.root(t, t)))  # all distinct sets
        with pytest.raises(ValueError, match="brute-force limit"):
            exact_optimum(index, k=2)


class TestRatioTracker:
    def test_greedy_ratio_near_one(self):
        actions = random_stream(60, 6, seed=1)
        tracker = RatioTracker(WindowedGreedy(window_size=15, k=2))
        report = tracker.run(actions, slide=5, warmup_windows=2)
        assert report.windows == 10
        assert report.worst >= 1 - 1 / 2.718281828 - 1e-9
        assert report.mean >= 0.9  # greedy is near-optimal in practice

    def test_sic_ratio_exceeds_theorem4(self):
        beta = 0.2
        actions = random_stream(80, 6, seed=2)
        tracker = RatioTracker(
            SparseInfluentialCheckpoints(window_size=20, k=2, beta=beta)
        )
        report = tracker.run(actions, slide=4, warmup_windows=3)
        assert report.worst >= 0.25 - beta - 1e-9

    def test_report_edge_cases(self):
        empty = RatioReport(ratios=())
        assert empty.worst == 1.0
        assert empty.mean == 1.0
        assert empty.windows == 0
        mixed = RatioReport(ratios=(0.5, 1.0))
        assert mixed.worst == 0.5
        assert mixed.mean == 0.75
