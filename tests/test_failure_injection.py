"""Failure injection: malformed inputs must fail loudly, never corrupt.

The frameworks keep derived state (windows, forests, indexes, oracles); a
malformed action must be rejected *before* any of it mutates, so that a
caller catching the exception can continue with the next event.
"""

import pytest

from repro.core.actions import Action
from repro.core.greedy import WindowedGreedy
from repro.core.ic import InfluentialCheckpoints
from repro.core.sic import SparseInfluentialCheckpoints
from tests.conftest import random_stream

ALGORITHMS = [
    lambda: SparseInfluentialCheckpoints(window_size=10, k=2),
    lambda: InfluentialCheckpoints(window_size=10, k=2),
    lambda: WindowedGreedy(window_size=10, k=2),
]


@pytest.mark.parametrize("make", ALGORITHMS)
class TestOutOfOrderActions:
    def test_duplicate_timestamp_rejected(self, make):
        algorithm = make()
        algorithm.process([Action.root(1, 0)])
        with pytest.raises(ValueError):
            algorithm.process([Action.root(1, 1)])

    def test_past_timestamp_rejected(self, make):
        algorithm = make()
        algorithm.process([Action.root(5, 0)])
        with pytest.raises(ValueError):
            algorithm.process([Action.root(3, 1)])

    def test_recovery_after_rejection(self, make):
        """A rejected action must not poison subsequent processing."""
        algorithm = make()
        algorithm.process([Action.root(1, 0)])
        with pytest.raises(ValueError):
            algorithm.process([Action.root(1, 9)])
        algorithm.process([Action.root(2, 1)])
        answer = algorithm.query()
        assert answer.time == 2
        assert answer.value >= 1.0


class TestMalformedActions:
    def test_action_validation_happens_at_construction(self):
        with pytest.raises(ValueError):
            Action(time=-1, user=0)
        with pytest.raises(ValueError):
            Action(time=5, user=0, parent=9)

    def test_duplicate_forest_insertion(self):
        algorithm = SparseInfluentialCheckpoints(window_size=5, k=1)
        action = Action.root(1, 0)
        algorithm.process([action])
        with pytest.raises(ValueError):
            algorithm.process([action])


class TestStateConsistencyAfterFailure:
    def test_window_unchanged_after_rejected_batch(self):
        algorithm = WindowedGreedy(window_size=10, k=2)
        for action in random_stream(10, 4, seed=1):
            algorithm.process([action])
        before = algorithm.query()
        with pytest.raises(ValueError):
            algorithm.process([Action.root(2, 0)])  # past timestamp
        after = algorithm.query()
        assert before == after

    def test_long_run_with_periodic_failures(self):
        algorithm = SparseInfluentialCheckpoints(window_size=20, k=2)
        good = 0
        for action in random_stream(100, 6, seed=2):
            algorithm.process([action])
            good += 1
            if good % 10 == 0:
                with pytest.raises(ValueError):
                    algorithm.process([Action.root(action.time, 0)])
        assert algorithm.actions_processed == 100
        assert algorithm.query().value > 0
