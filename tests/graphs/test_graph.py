"""Unit tests for the DiGraph substrate."""

import pytest

from repro.graphs.graph import DiGraph


class TestConstruction:
    def test_empty(self):
        graph = DiGraph()
        assert graph.node_count == 0
        assert graph.edge_count == 0
        assert 1 not in graph

    def test_add_nodes_and_edges(self):
        graph = DiGraph()
        graph.add_edge(1, 2, 0.5)
        graph.add_edge(2, 3, 0.25)
        assert graph.node_count == 3
        assert graph.edge_count == 2
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(2, 1)

    def test_add_node_idempotent(self):
        graph = DiGraph()
        graph.add_node(1)
        graph.add_node(1)
        assert graph.node_count == 1

    def test_overwrite_probability(self):
        graph = DiGraph()
        graph.add_edge(1, 2, 0.5)
        graph.add_edge(1, 2, 0.9)
        assert graph.edge_count == 1
        assert graph.probability(1, 2) == 0.9

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            DiGraph().add_edge(3, 3)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="probability"):
            DiGraph().add_edge(1, 2, 1.5)
        with pytest.raises(ValueError, match="probability"):
            DiGraph().add_edge(1, 2, -0.1)

    def test_from_edges(self):
        graph = DiGraph.from_edges([(1, 2, 0.5), (2, 3, 1.0)])
        assert graph.edge_count == 2


class TestAccessors:
    @pytest.fixture
    def diamond(self):
        graph = DiGraph()
        graph.add_edge(1, 2, 0.5)
        graph.add_edge(1, 3, 0.5)
        graph.add_edge(2, 4, 1.0)
        graph.add_edge(3, 4, 1.0)
        return graph

    def test_successors_predecessors(self, diamond):
        assert set(diamond.successors(1)) == {2, 3}
        assert set(diamond.predecessors(4)) == {2, 3}
        assert diamond.successors(4) == {}
        assert diamond.predecessors(1) == {}

    def test_degrees(self, diamond):
        assert diamond.out_degree(1) == 2
        assert diamond.in_degree(4) == 2
        assert diamond.in_degree(1) == 0
        assert diamond.out_degree(99) == 0

    def test_edges_iteration(self, diamond):
        edges = set((s, t) for s, t, _ in diamond.edges())
        assert edges == {(1, 2), (1, 3), (2, 4), (3, 4)}

    def test_probability_missing_edge(self, diamond):
        with pytest.raises(KeyError):
            diamond.probability(4, 1)

    def test_copy_is_deep(self, diamond):
        clone = diamond.copy()
        clone.add_edge(4, 5, 1.0)
        assert 5 not in diamond
        assert clone.edge_count == diamond.edge_count + 1
        assert clone.probability(1, 2) == diamond.probability(1, 2)
