"""Unit tests for the weighted cascade model and influence-graph builder."""

import pytest

from repro.core.diffusion import DiffusionForest
from repro.core.influence_index import WindowInfluenceIndex
from repro.graphs.graph import DiGraph
from repro.graphs.influence_graph import build_influence_graph
from repro.graphs.wc_model import (
    assign_weighted_cascade,
    weighted_cascade_probability,
)
from tests.conftest import make_paper_stream, random_stream


class TestWCModel:
    def test_probability_formula(self):
        assert weighted_cascade_probability(4) == 0.25
        assert weighted_cascade_probability(1) == 1.0
        with pytest.raises(ValueError, match="positive"):
            weighted_cascade_probability(0)

    def test_assignment(self):
        graph = DiGraph()
        graph.add_edge(1, 3, 0.9)
        graph.add_edge(2, 3, 0.9)
        graph.add_edge(1, 2, 0.9)
        assign_weighted_cascade(graph)
        assert graph.probability(1, 3) == 0.5
        assert graph.probability(2, 3) == 0.5
        assert graph.probability(1, 2) == 1.0

    def test_incoming_probabilities_sum_to_one(self):
        graph = DiGraph()
        for s in range(5):
            for t in range(5):
                if s != t and (s + t) % 2:
                    graph.add_edge(s, t, 1.0)
        assign_weighted_cascade(graph)
        for node in graph.nodes():
            preds = graph.predecessors(node)
            if preds:
                assert sum(preds.values()) == pytest.approx(1.0)


class TestInfluenceGraph:
    def build_index(self, actions, window):
        forest = DiffusionForest()
        index = WindowInfluenceIndex()
        records = []
        for action in actions:
            record = forest.add(action)
            records.append(record)
            index.add(record)
            if len(records) > window:
                index.remove(records.pop(0))
        return index

    def test_paper_example_graph(self):
        index = self.build_index(make_paper_stream()[:8], 8)
        graph = build_influence_graph(index)
        # Influence pairs at t=8 minus self-loops.
        assert graph.has_edge(1, 2)
        assert graph.has_edge(1, 3)
        assert graph.has_edge(3, 1)
        assert graph.has_edge(3, 4)
        assert graph.has_edge(3, 5)
        assert graph.has_edge(5, 4)
        assert not graph.has_edge(2, 2)  # no self-loops

    def test_wc_probabilities(self):
        index = self.build_index(make_paper_stream()[:8], 8)
        graph = build_influence_graph(index)
        # u4 is influenced by u3 and u5: each edge gets 1/2.
        assert graph.probability(3, 4) == pytest.approx(0.5)
        assert graph.probability(5, 4) == pytest.approx(0.5)
        # u2 is influenced only by u1.
        assert graph.probability(1, 2) == pytest.approx(1.0)

    def test_empty_index(self):
        graph = build_influence_graph(WindowInfluenceIndex())
        assert graph.node_count == 0

    def test_no_self_loops_ever(self):
        index = self.build_index(random_stream(80, 6, seed=3), 40)
        graph = build_influence_graph(index)
        for s, t, _ in graph.edges():
            assert s != t
