"""Unit and statistical tests for the R-MAT generator."""

import numpy as np
import pytest

from repro.graphs.rmat import rmat_adjacency, rmat_edges


class TestBasics:
    def test_edge_count_and_validity(self):
        edges = rmat_edges(64, 200, seed=1)
        assert len(edges) == 200
        assert len(set(edges)) == 200  # distinct
        for s, t in edges:
            assert 0 <= s < 64
            assert 0 <= t < 64
            assert s != t

    def test_deterministic_under_seed(self):
        assert rmat_edges(32, 100, seed=5) == rmat_edges(32, 100, seed=5)
        assert rmat_edges(32, 100, seed=5) != rmat_edges(32, 100, seed=6)

    def test_non_power_of_two_universe(self):
        edges = rmat_edges(100, 300, seed=2)
        assert all(0 <= s < 100 and 0 <= t < 100 for s, t in edges)

    def test_zero_edges(self):
        assert rmat_edges(10, 0, seed=1) == []

    def test_validation(self):
        with pytest.raises(ValueError, match="at least 2"):
            rmat_edges(1, 5)
        with pytest.raises(ValueError, match="non-negative"):
            rmat_edges(10, -1)
        with pytest.raises(ValueError, match="quadrant"):
            rmat_edges(10, 5, a=0.9, b=0.2, c=0.2)

    def test_adjacency_form(self):
        adjacency = rmat_adjacency(32, 100, seed=3)
        total = sum(len(targets) for targets in adjacency.values())
        assert total == 100


class TestSkew:
    def test_degree_distribution_is_skewed(self):
        """R-MAT with a=0.57 concentrates edges on low-id quadrants: the
        max out-degree should far exceed the mean (power-law behaviour)."""
        edges = rmat_edges(256, 2000, seed=7)
        out_degree = np.zeros(256)
        for s, _ in edges:
            out_degree[s] += 1
        mean = out_degree[out_degree > 0].mean()
        assert out_degree.max() >= 4 * mean

    def test_uniform_quadrants_are_not_skewed(self):
        edges = rmat_edges(256, 2000, a=0.25, b=0.25, c=0.25, seed=7)
        out_degree = np.zeros(256)
        for s, _ in edges:
            out_degree[s] += 1
        mean = out_degree[out_degree > 0].mean()
        # Uniform R-MAT is an Erdos-Renyi-like graph: much flatter.
        assert out_degree.max() <= 6 * mean
