"""Unit tests for stream persistence (JSONL/CSV) and raw-log ingestion."""

import pytest

from repro.datasets.io import (
    ingest_events,
    read_csv,
    read_jsonl,
    write_csv,
    write_jsonl,
)
from tests.conftest import random_stream


class TestJsonlRoundtrip:
    def test_roundtrip(self, tmp_path, paper_stream):
        path = tmp_path / "stream.jsonl"
        assert write_jsonl(paper_stream, path) == 10
        assert list(read_jsonl(path)) == paper_stream

    def test_random_roundtrip(self, tmp_path):
        actions = random_stream(200, 12, seed=3)
        path = tmp_path / "s.jsonl"
        write_jsonl(actions, path)
        assert list(read_jsonl(path)) == actions

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"t":1,"u":2}\n\n{"t":2,"u":3,"p":1}\n')
        actions = list(read_jsonl(path))
        assert len(actions) == 2
        assert actions[1].parent == 1

    def test_malformed_line_reports_position(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t":1,"u":2}\nnot-json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            list(read_jsonl(path))

    def test_missing_field(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t":1}\n')
        with pytest.raises(ValueError, match="malformed"):
            list(read_jsonl(path))

    def test_invalid_stream_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t":2,"u":1}\n{"t":1,"u":1}\n')
        with pytest.raises(ValueError, match="strictly increasing"):
            list(read_jsonl(path))


class TestCsvRoundtrip:
    def test_roundtrip(self, tmp_path, paper_stream):
        path = tmp_path / "stream.csv"
        assert write_csv(paper_stream, path) == 10
        assert list(read_csv(path)) == paper_stream

    def test_header_enforced(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,\n")
        with pytest.raises(ValueError, match="header"):
            list(read_csv(path))

    def test_column_count_enforced(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,user,parent\n1,2\n")
        with pytest.raises(ValueError, match="3 columns"):
            list(read_csv(path))

    def test_non_integer_field(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,user,parent\nx,2,\n")
        with pytest.raises(ValueError, match="non-integer"):
            list(read_csv(path))

    def test_empty_parent_is_root(self, tmp_path):
        path = tmp_path / "s.csv"
        path.write_text("time,user,parent\n1,7,\n2,8,1\n")
        actions = list(read_csv(path))
        assert actions[0].is_root
        assert actions[1].parent == 1


class TestRoundtripProperty:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100_000), n=st.integers(1, 120))
    def test_jsonl_and_csv_preserve_any_stream(self, tmp_path_factory, seed, n):
        tmp = tmp_path_factory.mktemp("io")
        actions = random_stream(n, 9, seed=seed)
        jsonl = tmp / "s.jsonl"
        csv_file = tmp / "s.csv"
        write_jsonl(actions, jsonl)
        write_csv(actions, csv_file)
        assert list(read_jsonl(jsonl)) == actions
        assert list(read_csv(csv_file)) == actions


class TestIngestEvents:
    def test_arbitrary_user_ids(self):
        actions, users = ingest_events(
            [("alice", None), ("bob", 0), ("alice", 1)]
        )
        assert users == {"alice": 0, "bob": 1}
        assert [a.user for a in actions] == [0, 1, 0]
        assert actions[1].parent == 1
        assert actions[2].parent == 2

    def test_unknown_parent_demoted_to_root(self):
        actions, _ = ingest_events([("a", None), ("b", 7), ("c", -1)])
        assert all(a.is_root for a in actions)

    def test_self_or_future_parent_demoted(self):
        actions, _ = ingest_events([("a", 0), ("b", 1)])
        assert actions[0].is_root  # parent 0 == own position
        assert actions[1].is_root  # parent 1 == own position

    def test_result_is_valid_stream(self):
        from repro.core.stream import validate_stream

        events = [("u%d" % (i % 5), i - 1 if i % 3 else None) for i in range(50)]
        actions, _ = ingest_events(events)
        assert list(validate_stream(actions)) == actions

    def test_empty(self):
        actions, users = ingest_events([])
        assert actions == [] and users == {}
