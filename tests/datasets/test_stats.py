"""Unit tests for stream statistics (Table 3 regenerator)."""

import pytest

from repro.core.actions import Action
from repro.datasets.stats import StreamStatistics, stream_statistics
from tests.conftest import make_paper_stream


class TestStreamStatistics:
    def test_empty_stream(self):
        stats = stream_statistics([])
        assert stats.users == 0
        assert stats.actions == 0
        assert stats.mean_response_distance == 0.0
        assert stats.mean_depth == 0.0
        assert stats.root_fraction == 0.0

    def test_paper_stream(self):
        stats = stream_statistics(make_paper_stream())
        assert stats.users == 6
        assert stats.actions == 10
        assert stats.root_fraction == pytest.approx(0.3)
        # Distances: a2:1, a4:3, a5:2, a6:3, a7:4, a8:1, a10:1 -> mean 15/7.
        assert stats.mean_response_distance == pytest.approx(15 / 7)
        # Depths: 1,2,1,2,2,2,2,3,1,2 -> mean 1.8, max 3.
        assert stats.mean_depth == pytest.approx(1.8)
        assert stats.max_depth == 3

    def test_all_roots(self):
        actions = [Action.root(t, t) for t in range(1, 6)]
        stats = stream_statistics(actions)
        assert stats.root_fraction == 1.0
        assert stats.mean_response_distance == 0.0
        assert stats.mean_depth == 1.0

    def test_as_row_formatting(self):
        stats = StreamStatistics(
            users=1000, actions=50000, mean_response_distance=123.4,
            mean_depth=2.5, max_depth=9, root_fraction=0.4,
        )
        row = stats.as_row("test")
        assert "test" in row
        assert "1,000" in row
        assert "123.4" in row
        assert "2.50" in row
