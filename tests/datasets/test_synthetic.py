"""Unit and statistical tests for SYN-O/SYN-N generators."""

import pytest

from repro.core.stream import validate_stream
from repro.datasets.stats import stream_statistics
from repro.datasets.synthetic import SyntheticConfig, syn_n, syn_o, synthetic_stream


class TestConfigValidation:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError, match="users"):
            SyntheticConfig(1, 100, 10.0)
        with pytest.raises(ValueError, match="action count"):
            SyntheticConfig(10, 0, 10.0)
        with pytest.raises(ValueError, match="distance"):
            SyntheticConfig(10, 100, 0.0)
        with pytest.raises(ValueError, match="follow probability"):
            SyntheticConfig(10, 100, 10.0, follow_probability=1.0)


class TestStreamValidity:
    def test_stream_is_valid(self):
        config = SyntheticConfig(100, 500, 20.0, seed=1)
        actions = list(validate_stream(synthetic_stream(config)))
        assert len(actions) == 500
        assert actions[0].time == 1
        assert actions[-1].time == 500

    def test_deterministic_under_seed(self):
        config = SyntheticConfig(100, 300, 20.0, seed=9)
        first = list(synthetic_stream(config))
        second = list(synthetic_stream(SyntheticConfig(100, 300, 20.0, seed=9)))
        assert first == second

    def test_users_within_universe(self):
        config = SyntheticConfig(50, 400, 15.0, seed=2)
        assert all(0 <= a.user < 50 for a in synthetic_stream(config))

    def test_first_action_is_root(self):
        config = SyntheticConfig(10, 50, 5.0, seed=3)
        assert next(iter(synthetic_stream(config))).is_root


class TestStatisticsShape:
    def test_follow_probability_controls_depth(self):
        """Mean depth ~ 1/(1 - p) in steady state."""
        shallow = SyntheticConfig(200, 4000, 50.0, follow_probability=0.3, seed=4)
        deep = SyntheticConfig(200, 4000, 50.0, follow_probability=0.75, seed=4)
        shallow_stats = stream_statistics(synthetic_stream(shallow))
        deep_stats = stream_statistics(synthetic_stream(deep))
        assert deep_stats.mean_depth > shallow_stats.mean_depth
        assert shallow_stats.mean_depth == pytest.approx(1 / 0.7, rel=0.2)

    def test_mean_response_distance_matches_config(self):
        config = SyntheticConfig(200, 6000, 40.0, seed=5)
        stats = stream_statistics(synthetic_stream(config))
        assert stats.mean_response_distance == pytest.approx(40.0, rel=0.25)

    def test_syn_o_vs_syn_n_distances(self):
        """SYN-O's distances are ~100x SYN-N's (Table 3 ratio)."""
        o_stats = stream_statistics(syn_o(500, 5000, seed=6))
        n_stats = stream_statistics(syn_n(500, 5000, seed=6))
        assert o_stats.mean_response_distance > 20 * n_stats.mean_response_distance

    def test_table3_depth_shape(self):
        stats = stream_statistics(syn_o(500, 5000, seed=7))
        assert stats.mean_depth == pytest.approx(2.5, abs=0.5)
