"""Statistical tests for the Reddit/Twitter surrogate streams."""

import pytest

from repro.core.stream import validate_stream
from repro.datasets.stats import stream_statistics
from repro.datasets.surrogates import heavy_tail_stream, reddit_like, twitter_like


class TestValidity:
    def test_reddit_stream_is_valid(self):
        actions = list(validate_stream(reddit_like(n_users=300, n_actions=2000, seed=1)))
        assert len(actions) == 2000

    def test_twitter_stream_is_valid(self):
        actions = list(validate_stream(twitter_like(n_users=300, n_actions=2000, seed=1)))
        assert len(actions) == 2000

    def test_heavy_tail_validation(self):
        with pytest.raises(ValueError, match="follow probability"):
            list(heavy_tail_stream(10, 10, 1.0, 0.1))
        with pytest.raises(ValueError, match="zipf"):
            list(heavy_tail_stream(10, 10, 0.5, 0.1, zipf_exponent=1.0))

    def test_deterministic(self):
        a = list(reddit_like(n_users=200, n_actions=800, seed=5))
        b = list(reddit_like(n_users=200, n_actions=800, seed=5))
        assert a == b


class TestTable3Shapes:
    def test_reddit_depth(self):
        """Table 3: Reddit average depth 4.58."""
        stats = stream_statistics(reddit_like(n_users=800, n_actions=10_000, seed=2))
        assert stats.mean_depth == pytest.approx(4.58, abs=0.9)

    def test_twitter_depth(self):
        """Table 3: Twitter average depth 1.87."""
        stats = stream_statistics(twitter_like(n_users=800, n_actions=10_000, seed=2))
        assert stats.mean_depth == pytest.approx(1.87, abs=0.4)

    def test_response_distance_fractions(self):
        """Distances keep the original fraction of the stream length."""
        n = 10_000
        reddit_stats = stream_statistics(reddit_like(n_users=800, n_actions=n, seed=3))
        twitter_stats = stream_statistics(twitter_like(n_users=800, n_actions=n, seed=3))
        assert reddit_stats.mean_response_distance == pytest.approx(
            n * 404_714.9 / 48_104_875, rel=0.35
        )
        assert twitter_stats.mean_response_distance == pytest.approx(
            n * 294_609.4 / 9_724_908, rel=0.35
        )

    def test_activity_is_heavy_tailed(self):
        """A few users should dominate the action count."""
        from collections import Counter

        counts = Counter(
            a.user for a in reddit_like(n_users=1000, n_actions=8000, seed=4)
        )
        top_share = sum(c for _, c in counts.most_common(10)) / 8000
        assert top_share > 0.2
