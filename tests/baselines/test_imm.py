"""Unit and quality tests for the IMM baseline."""

import pytest

from repro.baselines.imm import imm_select
from repro.diffusion.monte_carlo import estimate_spread
from repro.graphs.graph import DiGraph
from repro.graphs.rmat import rmat_edges
from repro.graphs.wc_model import assign_weighted_cascade


def wc_graph(n_nodes=60, n_edges=240, seed=1):
    graph = DiGraph.from_edges(
        (s, t, 1.0) for s, t in rmat_edges(n_nodes, n_edges, seed=seed)
    )
    assign_weighted_cascade(graph)
    return graph


class TestEdgeCases:
    def test_empty_graph(self):
        result = imm_select(DiGraph(), k=3, seed=1)
        assert result.seeds == ()
        assert result.spread_estimate == 0.0

    def test_graph_smaller_than_k(self):
        graph = DiGraph()
        graph.add_edge(1, 2, 0.5)
        result = imm_select(graph, k=5, seed=1)
        assert set(result.seeds) == {1, 2}
        assert result.spread_estimate == 2.0

    def test_k_validation(self):
        with pytest.raises(ValueError, match="positive"):
            imm_select(DiGraph(), k=0)

    def test_epsilon_validation(self):
        with pytest.raises(ValueError, match="epsilon"):
            imm_select(DiGraph(), k=1, epsilon=1.5)


class TestSelection:
    def test_returns_at_most_k_seeds(self):
        result = imm_select(wc_graph(), k=4, seed=2, max_rr_sets=3000)
        assert 0 < len(result.seeds) <= 4
        assert result.rr_sets_used > 0

    def test_deterministic_under_seed(self):
        a = imm_select(wc_graph(), k=3, seed=5, max_rr_sets=2000)
        b = imm_select(wc_graph(), k=3, seed=5, max_rr_sets=2000)
        assert a.seeds == b.seeds

    def test_truncation_reported(self):
        result = imm_select(wc_graph(), k=3, seed=3, max_rr_sets=50)
        assert result.truncated
        assert result.rr_sets_used <= 50 + 1

    def test_hub_graph_picks_the_hub(self):
        """A star around node 0 makes 0 the obvious single seed."""
        graph = DiGraph()
        for leaf in range(1, 30):
            graph.add_edge(0, leaf, 1.0)
        result = imm_select(graph, k=1, seed=4, max_rr_sets=2000)
        assert result.seeds == (0,)
        assert result.spread_estimate == pytest.approx(30, rel=0.1)


class TestQuality:
    def test_beats_worst_singletons(self):
        """IMM seeds should outperform the k lowest-degree nodes by MC."""
        graph = wc_graph(n_nodes=80, n_edges=400, seed=6)
        result = imm_select(graph, k=3, seed=7, max_rr_sets=4000)
        imm_spread = estimate_spread(graph, result.seeds, rounds=2000, seed=8)
        worst = sorted(graph.nodes(), key=graph.out_degree)[:3]
        worst_spread = estimate_spread(graph, worst, rounds=2000, seed=8)
        assert imm_spread >= worst_spread

    def test_close_to_rr_estimate(self):
        graph = wc_graph(n_nodes=60, n_edges=300, seed=9)
        result = imm_select(graph, k=3, seed=10, max_rr_sets=5000)
        mc = estimate_spread(graph, result.seeds, rounds=4000, seed=11)
        assert result.spread_estimate == pytest.approx(mc, rel=0.25, abs=1.0)
