"""Unit tests for the IMM/UBI SIM adapters."""

from repro.baselines.adapters import IMMAlgorithm, UBIAlgorithm
from repro.core.stream import batched
from tests.conftest import random_stream


def drive(algorithm, actions, slide=5):
    for batch in batched(actions, slide):
        algorithm.process(batch)
    return algorithm


class TestIMMAdapter:
    def test_query_returns_seeds(self):
        imm = IMMAlgorithm(window_size=40, k=3, seed=1, max_rr_sets=500)
        drive(imm, random_stream(100, 10, seed=1))
        result = imm.query()
        assert 0 < len(result.seeds) <= 3
        assert result.time == 100

    def test_window_expiry_respected(self):
        imm = IMMAlgorithm(window_size=20, k=2, seed=2, max_rr_sets=500)
        drive(imm, random_stream(100, 8, seed=2))
        # The adapter's index only holds window pairs.
        for u in imm.index.influencers():
            assert imm.index.influence_set(u)

    def test_empty_window_query(self):
        imm = IMMAlgorithm(window_size=10, k=2, seed=3, max_rr_sets=100)
        result = imm.query()
        assert result.seeds == frozenset()


class TestUBIAdapter:
    def test_query_returns_seeds(self):
        ubi = UBIAlgorithm(window_size=40, k=3, seed=4, rr_samples=300)
        drive(ubi, random_stream(100, 10, seed=4))
        result = ubi.query()
        assert 0 < len(result.seeds) <= 3

    def test_tracker_exposed(self):
        ubi = UBIAlgorithm(window_size=30, k=2, seed=5, rr_samples=200)
        drive(ubi, random_stream(60, 8, seed=5))
        assert ubi.tracker.seeds == ubi.query().seeds

    def test_index_matches_window(self):
        ubi = UBIAlgorithm(window_size=25, k=2, seed=6, rr_samples=200)
        actions = random_stream(80, 6, seed=6)
        drive(ubi, actions)
        # Compare against a freshly built exact index.
        from repro.core.diffusion import DiffusionForest
        from repro.core.influence_index import WindowInfluenceIndex

        forest = DiffusionForest()
        expected = WindowInfluenceIndex()
        records = []
        for action in actions:
            record = forest.add(action)
            records.append(record)
            expected.add(record)
            if len(records) > 25:
                expected.remove(records.pop(0))
        for user in expected.influencers():
            assert ubi.index.influence_set(user) == expected.influence_set(user)
