"""Unit tests for the UBI dynamic baseline."""

import pytest

from repro.baselines.ubi import UpperBoundInterchange
from repro.graphs.graph import DiGraph
from repro.graphs.rmat import rmat_edges
from repro.graphs.wc_model import assign_weighted_cascade


def wc_graph(n_nodes=50, n_edges=200, seed=1):
    graph = DiGraph.from_edges(
        (s, t, 1.0) for s, t in rmat_edges(n_nodes, n_edges, seed=seed)
    )
    assign_weighted_cascade(graph)
    return graph


class TestValidation:
    def test_parameters(self):
        with pytest.raises(ValueError, match="k must be positive"):
            UpperBoundInterchange(k=0)
        with pytest.raises(ValueError, match="gamma"):
            UpperBoundInterchange(k=1, gamma=0.0)
        with pytest.raises(ValueError, match="rr_samples"):
            UpperBoundInterchange(k=1, rr_samples=0)


class TestTracking:
    def test_initial_update_seeds_greedily(self):
        ubi = UpperBoundInterchange(k=3, seed=1, rr_samples=500)
        seeds = ubi.update(wc_graph())
        assert 0 < len(seeds) <= 3

    def test_empty_graph_keeps_state(self):
        ubi = UpperBoundInterchange(k=2, seed=1, rr_samples=200)
        ubi.update(wc_graph())
        before = ubi.seeds
        ubi.update(DiGraph())
        assert ubi.seeds == before

    def test_vanished_seeds_replaced(self):
        ubi = UpperBoundInterchange(k=3, seed=2, rr_samples=500)
        ubi.update(wc_graph(seed=3))
        # A disjoint node universe: all old seeds vanish.
        shifted = DiGraph()
        for s, t in rmat_edges(40, 150, seed=4):
            shifted.add_edge(s + 1000, t + 1000, 1.0)
        assign_weighted_cascade(shifted)
        seeds = ubi.update(shifted)
        assert all(u >= 1000 for u in seeds)
        assert len(seeds) == 3

    def test_interchange_follows_drift(self):
        """When the graph's hub moves, UBI should eventually follow."""
        ubi = UpperBoundInterchange(k=1, seed=5, rr_samples=800, gamma=0.01)
        star_a = DiGraph()
        for leaf in range(1, 20):
            star_a.add_edge(0, leaf, 1.0)
        ubi.update(star_a)
        assert ubi.seeds == {0}
        # New graph: node 100 is a far bigger hub; node 0 shrinks.
        star_b = DiGraph()
        star_b.add_edge(0, 1, 1.0)
        for leaf in range(101, 160):
            star_b.add_edge(100, leaf, 1.0)
        ubi.update(star_b)
        assert ubi.seeds == {100}
        assert ubi.interchanges_performed >= 1

    def test_spread_estimate(self):
        ubi = UpperBoundInterchange(k=2, seed=6, rr_samples=500)
        graph = wc_graph(seed=7)
        ubi.update(graph)
        estimate = ubi.spread_estimate(graph)
        assert estimate >= len(ubi.seeds) * 0.5

    def test_seed_count_never_exceeds_k(self):
        ubi = UpperBoundInterchange(k=2, seed=8, rr_samples=300)
        for seed in range(5):
            ubi.update(wc_graph(seed=seed))
            assert len(ubi.seeds) <= 2
