"""Unit tests for the online topic/location-aware SIM query wrappers."""

import pytest

from repro.core.greedy import WindowedGreedy
from repro.influence.filters import Region, filter_stream
from repro.influence.queries import FilteredSIM, LocationAwareSIM, TopicAwareSIM
from tests.conftest import make_paper_stream, random_stream


class TestFilteredSIM:
    def test_counts(self, paper_stream):
        query = FilteredSIM(lambda a: a.user != 3, window_size=8, k=2)
        for action in paper_stream:
            query.observe(action)
        assert query.observed == 10
        assert query.matched == 8  # u3 performed a3 and a4

    def test_batch_size_validation(self):
        with pytest.raises(ValueError, match="batch size"):
            FilteredSIM(lambda a: True, window_size=4, k=1, batch_size=0)

    def test_online_matches_offline_filtering(self):
        """Feeding online must equal filter_stream + process offline."""
        actions = random_stream(120, 8, seed=4)
        predicate = lambda a: a.user % 2 == 0

        online = FilteredSIM(
            predicate, window_size=30, k=2,
            algorithm=WindowedGreedy(window_size=30, k=2),
        )
        for action in actions:
            online.observe(action)
        online_answer = online.query()

        offline_algorithm = WindowedGreedy(window_size=30, k=2)
        retimed = list(filter_stream(actions, predicate))
        for action in retimed:
            offline_algorithm.process([action])
        offline_answer = offline_algorithm.query()

        assert online_answer.value == offline_answer.value
        assert online_answer.seeds == offline_answer.seeds

    def test_buffering_flushes_on_query(self):
        query = FilteredSIM(lambda a: True, window_size=8, k=2, batch_size=100)
        for action in make_paper_stream()[:8]:
            query.observe(action)
        # Nothing processed yet (buffered), but query() flushes.
        assert query.algorithm.actions_processed == 0
        answer = query.query()
        assert query.algorithm.actions_processed == 8
        assert answer.value > 0

    def test_default_algorithm_is_sic(self):
        from repro.core.sic import SparseInfluentialCheckpoints

        query = FilteredSIM(lambda a: True, window_size=8, k=2)
        assert isinstance(query.algorithm, SparseInfluentialCheckpoints)


class TestTopicAwareSIM:
    def test_tracks_only_query_topics(self):
        topics = {t: ({"sports"} if t % 2 else {"music"}) for t in range(1, 50)}
        query = TopicAwareSIM(
            {"sports"}, topics, window_size=20, k=2,
            algorithm=WindowedGreedy(window_size=20, k=2),
        )
        for action in random_stream(49, 6, seed=5):
            query.observe(action)
        assert query.matched == 25  # odd timestamps

    def test_empty_topics_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            TopicAwareSIM(set(), {}, window_size=4, k=1)

    def test_live_topic_oracle(self):
        """The oracle mapping may be populated while streaming."""
        topics = {}
        query = TopicAwareSIM({"x"}, topics, window_size=10, k=1)
        for t, action in enumerate(random_stream(20, 4, seed=6), start=1):
            topics[t] = {"x"} if t > 10 else {"y"}
            query.observe(action)
        assert query.matched == 10


class TestLocationAwareSIM:
    def test_region_filtering(self):
        positions = {t: (0.1, 0.1) if t <= 5 else (0.9, 0.9) for t in range(1, 11)}
        query = LocationAwareSIM(
            Region(0, 0, 0.5, 0.5), positions, window_size=8, k=2,
        )
        for action in make_paper_stream():
            query.observe(action)
        assert query.matched == 5

    def test_answer_reflects_subwindow(self):
        positions = {t: (0.2, 0.2) for t in range(1, 11)}
        query = LocationAwareSIM(
            Region(0, 0, 1, 1), positions, window_size=8, k=2,
            algorithm=WindowedGreedy(window_size=8, k=2),
        )
        for action in make_paper_stream()[:8]:
            query.observe(action)
        answer = query.query()
        assert answer.seeds == {1, 3}
        assert answer.value == 5.0
