"""Unit and property tests for the influence functions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diffusion import DiffusionForest
from repro.core.influence_index import AppendOnlyInfluenceIndex
from repro.influence.functions import (
    CardinalityInfluence,
    ConformityAwareInfluence,
    WeightedCardinalityInfluence,
)
from tests.conftest import random_stream


def build_index(actions):
    forest = DiffusionForest()
    index = AppendOnlyInfluenceIndex()
    for action in actions:
        index.add(forest.add(action))
    return index


class TestCardinality:
    def test_is_modular(self):
        func = CardinalityInfluence()
        assert func.modular
        assert func.weight(42) == 1.0

    def test_evaluate_counts_union(self):
        index = build_index(random_stream(40, 5, seed=1))
        func = CardinalityInfluence()
        assert func.evaluate([0, 1], index) == len(index.coverage([0, 1]))

    def test_value_of_covered(self):
        assert CardinalityInfluence().value_of_covered({1, 2, 3}) == 3.0

    def test_empty(self):
        index = build_index([])
        assert CardinalityInfluence().evaluate([], index) == 0.0


class TestWeighted:
    def test_weights_applied(self):
        index = build_index(random_stream(40, 5, seed=2))
        weights = {u: float(u) for u in range(5)}
        func = WeightedCardinalityInfluence(weights, default=0.0)
        covered = index.coverage([0, 1, 2])
        assert func.evaluate([0, 1, 2], index) == sum(weights[v] for v in covered)

    def test_default_weight(self):
        func = WeightedCardinalityInfluence({}, default=2.5)
        assert func.weight(99) == 2.5
        assert func.value_of_covered({1, 2}) == 5.0

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError, match="weights"):
            WeightedCardinalityInfluence({1: -1.0})
        with pytest.raises(ValueError, match="default"):
            WeightedCardinalityInfluence({}, default=-0.1)


class TestConformity:
    def test_not_modular(self):
        func = ConformityAwareInfluence({}, {})
        assert not func.modular
        with pytest.raises(NotImplementedError):
            func.weight(1)
        with pytest.raises(NotImplementedError):
            func.value_of_covered({1})

    def test_single_seed_formula(self):
        index = build_index(random_stream(40, 5, seed=3))
        phi = {u: 0.8 for u in range(5)}
        omega = {u: 0.5 for u in range(5)}
        func = ConformityAwareInfluence(phi, omega)
        for u in range(5):
            members = index.influence_set(u)
            expected = len(members) * (0.8 * 0.5)
            assert func.evaluate([u], index) == pytest.approx(expected)

    def test_reinforcement_bounded_by_one_per_user(self):
        index = build_index(random_stream(60, 4, seed=4))
        func = ConformityAwareInfluence({}, {}, 1.0, 1.0)
        # With phi = omega = 1 every influenced user saturates to 1.
        value = func.evaluate(range(4), index)
        assert value == pytest.approx(len(index.coverage(range(4))))

    def test_score_validation(self):
        with pytest.raises(ValueError, match="influence scores"):
            ConformityAwareInfluence({1: 1.5}, {})
        with pytest.raises(ValueError, match="conformity scores"):
            ConformityAwareInfluence({}, {1: -0.2})
        with pytest.raises(ValueError, match="default_influence"):
            ConformityAwareInfluence({}, {}, default_influence=2.0)

    def test_score_lookup(self):
        func = ConformityAwareInfluence({1: 0.9}, {2: 0.1}, 0.4, 0.6)
        assert func.influence_score(1) == 0.9
        assert func.influence_score(5) == 0.4
        assert func.conformity_score(2) == 0.1
        assert func.conformity_score(5) == 0.6


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_all_functions_monotone_and_submodular(seed):
    """Property: f(A) <= f(B) for A ⊆ B, and diminishing returns."""
    index = build_index(random_stream(50, 6, seed=seed))
    functions = [
        CardinalityInfluence(),
        WeightedCardinalityInfluence({u: (u % 3) + 0.5 for u in range(6)}),
        ConformityAwareInfluence(
            {u: 0.3 + 0.1 * u for u in range(6)},
            {u: 0.9 - 0.1 * u for u in range(6)},
        ),
    ]
    a = [0, 1]
    b = [0, 1, 2, 3]
    x = 4
    for func in functions:
        fa = func.evaluate(a, index)
        fb = func.evaluate(b, index)
        assert fb >= fa - 1e-12  # monotone
        gain_a = func.evaluate(a + [x], index) - fa
        gain_b = func.evaluate(b + [x], index) - fb
        assert gain_a >= gain_b - 1e-9  # submodular
