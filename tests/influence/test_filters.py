"""Unit tests for topic/region stream filters (Appendix A)."""

import pytest

from repro.core.actions import Action
from repro.core.stream import validate_stream
from repro.influence.filters import (
    Region,
    filter_stream,
    region_filter,
    topic_filter,
)
from tests.conftest import make_paper_stream


class TestRegion:
    def test_contains(self):
        region = Region(0, 0, 1, 1)
        assert region.contains((0.5, 0.5))
        assert region.contains((0, 1))
        assert not region.contains((1.1, 0.5))
        assert not region.contains((0.5, -0.1))

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError, match="degenerate"):
            Region(1, 0, 0, 1)

    def test_point_region(self):
        region = Region(0.5, 0.5, 0.5, 0.5)
        assert region.contains((0.5, 0.5))


class TestTopicFilter:
    def test_keeps_matching_topics(self):
        topics = {1: {"a"}, 2: {"b"}, 3: {"a", "b"}}
        predicate = topic_filter(topics, {"a"})
        stream = make_paper_stream()[:3]
        assert [predicate(action) for action in stream] == [True, False, True]

    def test_unlabelled_actions_dropped(self):
        predicate = topic_filter({}, {"a"})
        assert not predicate(Action.root(1, 1))

    def test_empty_query_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            topic_filter({}, set())


class TestRegionFilter:
    def test_keeps_in_region_actions(self):
        positions = {1: (0.2, 0.2), 2: (0.9, 0.9)}
        predicate = region_filter(positions, Region(0, 0, 0.5, 0.5))
        assert predicate(Action.root(1, 1))
        assert not predicate(Action.root(2, 2))

    def test_unlocated_actions_dropped(self):
        predicate = region_filter({}, Region(0, 0, 1, 1))
        assert not predicate(Action.root(1, 1))


class TestFilterStream:
    def test_retimes_contiguously(self, paper_stream):
        kept = list(filter_stream(paper_stream, lambda a: a.time % 2 == 1))
        assert [a.time for a in kept] == [1, 2, 3, 4, 5]
        # Result is itself a valid stream.
        assert list(validate_stream(kept)) == kept

    def test_relinks_surviving_parents(self, paper_stream):
        # Keep everything: parents must be preserved under re-timing.
        kept = list(filter_stream(paper_stream, lambda a: True))
        assert [a.parent for a in kept] == [a.parent for a in paper_stream]

    def test_orphaned_responses_become_roots(self):
        actions = [
            Action.root(1, 1),
            Action.response(2, 2, 1),
            Action.response(3, 3, 2),
        ]
        # Drop the middle action: a3's parent vanishes.
        kept = list(filter_stream(actions, lambda a: a.time != 2))
        assert [a.time for a in kept] == [1, 2]
        assert kept[1].is_root

    def test_chain_through_surviving_parent(self):
        actions = [
            Action.root(1, 1),
            Action.response(2, 2, 1),
            Action.response(3, 3, 2),
        ]
        kept = list(filter_stream(actions, lambda a: a.time != 1))
        # a2 becomes a root; a3 still points at a2 (re-timed to 1).
        assert kept[0].is_root
        assert kept[1].parent == 1

    def test_empty_result(self, paper_stream):
        assert list(filter_stream(paper_stream, lambda a: False)) == []
