"""Smoke tests for the repository scripts."""

import pathlib
import subprocess
import sys

SCRIPTS = pathlib.Path(__file__).parent.parent / "scripts"


class TestRunExperiments:
    def test_only_table3(self, tmp_path):
        completed = subprocess.run(
            [
                sys.executable,
                str(SCRIPTS / "run_experiments.py"),
                "--only", "table3",
                "--beta-scale", "tiny",
                "--sweep-scale", "tiny",
                "--out", str(tmp_path),
            ],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr[-1500:]
        assert (tmp_path / "table3.csv").exists()
        assert (tmp_path / "table3.txt").exists()
        assert "wrote table3" in completed.stdout
        # Nothing else was produced.
        produced = {p.name for p in tmp_path.iterdir()}
        assert produced == {"table3.csv", "table3.txt"}

    def test_csv_has_all_datasets(self, tmp_path):
        subprocess.run(
            [
                sys.executable,
                str(SCRIPTS / "run_experiments.py"),
                "--only", "table3",
                "--beta-scale", "tiny",
                "--out", str(tmp_path),
            ],
            capture_output=True,
            timeout=300,
            check=True,
        )
        content = (tmp_path / "table3.csv").read_text()
        for dataset in ("reddit", "twitter", "syn-o", "syn-n"):
            assert dataset in content


class TestLoadGen:
    def test_drives_a_live_server(self):
        """The load generator pushes a stream and reports the board."""
        import importlib.util

        from repro.core.sic import SparseInfluentialCheckpoints
        from repro.persistence.engine import RecoverableEngine
        from repro.service.config import ServiceConfig
        from repro.service.runner import ServiceRunner

        spec = importlib.util.spec_from_file_location(
            "load_gen", SCRIPTS / "load_gen.py"
        )
        load_gen = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(load_gen)

        engine = RecoverableEngine.open(
            None,
            lambda: SparseInfluentialCheckpoints(window_size=200, k=3, beta=0.3),
        )
        config = ServiceConfig(port=0, slide=25, flush_interval=60.0)
        with ServiceRunner(engine, config) as runner:
            report = load_gen.main([
                "--port", str(runner.port), "-n", "500", "-u", "50",
            ])
        assert report["actions"] == 500
        assert report["accepted"] == 500
        assert report["rejected"] == 0
        assert report["actions_per_sec"] > 0
        assert report["board"]["main"]["time"] == 500
