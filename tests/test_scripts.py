"""Smoke tests for the repository scripts."""

import pathlib
import subprocess
import sys

SCRIPTS = pathlib.Path(__file__).parent.parent / "scripts"


class TestRunExperiments:
    def test_only_table3(self, tmp_path):
        completed = subprocess.run(
            [
                sys.executable,
                str(SCRIPTS / "run_experiments.py"),
                "--only", "table3",
                "--beta-scale", "tiny",
                "--sweep-scale", "tiny",
                "--out", str(tmp_path),
            ],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr[-1500:]
        assert (tmp_path / "table3.csv").exists()
        assert (tmp_path / "table3.txt").exists()
        assert "wrote table3" in completed.stdout
        # Nothing else was produced.
        produced = {p.name for p in tmp_path.iterdir()}
        assert produced == {"table3.csv", "table3.txt"}

    def test_csv_has_all_datasets(self, tmp_path):
        subprocess.run(
            [
                sys.executable,
                str(SCRIPTS / "run_experiments.py"),
                "--only", "table3",
                "--beta-scale", "tiny",
                "--out", str(tmp_path),
            ],
            capture_output=True,
            timeout=300,
            check=True,
        )
        content = (tmp_path / "table3.csv").read_text()
        for dataset in ("reddit", "twitter", "syn-o", "syn-n"):
            assert dataset in content
