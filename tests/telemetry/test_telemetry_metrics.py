"""Unit tests for the telemetry metric primitives and registry."""

import pytest

from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)
from tests.conftest import parse_prometheus


class TestScalars:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_gauge_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10.0)
        gauge.inc(5.0)
        gauge.dec()
        assert gauge.value == 14.0


class TestHistogram:
    def test_observe_places_values_in_buckets(self):
        hist = Histogram(buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        assert hist.counts == [1, 1, 1, 1]
        assert hist.count == 4
        assert hist.sum == pytest.approx(5.555)
        assert hist.max == 5.0

    def test_boundary_value_lands_in_its_bucket(self):
        """`le` is inclusive: an observation equal to a bound counts under it."""
        hist = Histogram(buckets=(0.01, 0.1))
        hist.observe(0.01)
        assert hist.counts == [1, 0, 0]

    def test_cumulative_counts(self):
        hist = Histogram(buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        assert hist.cumulative_counts() == [1, 2, 3, 4]

    def test_percentile_empty_is_zero(self):
        hist = Histogram()
        assert hist.percentile(0.5) == 0.0
        summary = hist.summary()
        assert summary["count"] == 0
        assert summary["p99"] == 0.0

    def test_percentile_interpolates_within_bucket(self):
        hist = Histogram(buckets=(0.0, 1.0))
        for _ in range(100):
            hist.observe(0.5)
        p50 = hist.percentile(0.5)
        assert 0.0 < p50 <= 1.0

    def test_percentile_never_exceeds_observed_max(self):
        hist = Histogram(buckets=(1.0, 10.0))
        hist.observe(1.5)
        assert hist.percentile(0.99) <= 1.5

    def test_overflow_bucket_reports_max(self):
        hist = Histogram(buckets=(0.001,))
        hist.observe(42.0)
        assert hist.percentile(0.99) == 42.0

    def test_summary_percentile_ordering(self):
        hist = Histogram()
        for i in range(1, 1000):
            hist.observe(i / 1000.0)
        summary = hist.summary()
        assert summary["p50"] <= summary["p95"] <= summary["p99"]
        assert summary["p99"] <= summary["max"]
        assert summary["mean"] == pytest.approx(0.5, abs=0.01)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 0.5))

    def test_default_buckets_are_shared_and_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
        assert Histogram().bounds == DEFAULT_LATENCY_BUCKETS


class TestRegistry:
    def test_get_or_create_returns_same_child(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", "help")
        b = registry.counter("repro_x_total")
        assert a is b

    def test_labels_create_distinct_children(self):
        registry = MetricsRegistry()
        a = registry.gauge("repro_shard_up", shard="0")
        b = registry.gauge("repro_shard_up", shard="1")
        assert a is not b
        a.set(1.0)
        assert b.value == 0.0

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_x_total")

    def test_attach_adopts_external_histogram(self):
        registry = MetricsRegistry()
        hist = Histogram()
        hist.observe(0.5)
        adopted = registry.attach(
            "repro_wal_fsync_seconds", "histogram", hist, "help"
        )
        assert adopted is hist
        snapshot = registry.snapshot()
        assert snapshot["repro_wal_fsync_seconds"]["count"] == 1

    def test_attach_rejects_unknown_kind(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="unknown metric kind"):
            registry.attach("repro_x", "timer", Histogram())

    def test_snapshot_shapes(self):
        registry = MetricsRegistry()
        registry.counter("repro_plain_total").inc(3)
        registry.gauge("repro_labeled", shard="0").set(7.0)
        registry.histogram("repro_lat_seconds").observe(0.02)
        snapshot = registry.snapshot()
        assert snapshot["repro_plain_total"] == 3
        assert snapshot["repro_labeled"] == {"shard=0": 7.0}
        summary = snapshot["repro_lat_seconds"]
        assert summary["count"] == 1
        assert {"p50", "p95", "p99", "max"} <= set(summary)


class TestPrometheusRender:
    def test_render_is_parseable_and_complete(self):
        registry = MetricsRegistry()
        registry.counter("repro_actions_total", "Actions seen").inc(41)
        registry.gauge("repro_queue_depth", "Depth").set(3)
        hist = registry.histogram("repro_lat_seconds", "Latency")
        hist.observe(0.003)
        hist.observe(0.3)
        text = render_prometheus(registry)
        assert text.endswith("\n")
        samples = parse_prometheus(text)
        assert samples["repro_actions_total"][""] == 41
        assert samples["repro_queue_depth"][""] == 3
        assert samples["repro_lat_seconds_count"][""] == 2
        assert samples["repro_lat_seconds_sum"][""] == pytest.approx(0.303)
        buckets = samples["repro_lat_seconds_bucket"]
        assert buckets['{le="+Inf"}'] == 2
        # Cumulative counts never decrease across the ladder.
        ordered = [
            buckets[f'{{le="{self._fmt(b)}"}}']
            for b in DEFAULT_LATENCY_BUCKETS
        ]
        assert ordered == sorted(ordered)

    @staticmethod
    def _fmt(bound: float) -> str:
        return str(int(bound)) if bound == int(bound) else repr(bound)

    def test_labeled_children_render_with_labels(self):
        registry = MetricsRegistry()
        registry.counter("repro_shard_restarts_total", shard="0").inc(2)
        registry.counter("repro_shard_restarts_total", shard="1").inc(5)
        samples = parse_prometheus(render_prometheus(registry))
        restarts = samples["repro_shard_restarts_total"]
        assert restarts['{shard="0"}'] == 2
        assert restarts['{shard="1"}'] == 5

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.gauge("repro_g", q='a"b\\c\nd').set(1.0)
        text = render_prometheus(registry)
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        assert "\nd" not in text.replace("\\n", "")
