"""Unit tests for the ops-console rendering (`repro-stream top`)."""

from repro.telemetry.console import (
    format_quantity,
    gather_top,
    render_top,
    run_top,
    sparkline,
)


class TestSparkline:
    def test_empty_is_placeholder(self):
        assert sparkline([], width=5) == "·····"

    def test_flat_series_renders_lowest_block(self):
        assert sparkline([3.0, 3.0, 3.0], width=10) == "▁▁▁"

    def test_ramp_uses_full_range(self):
        line = sparkline(list(range(8)), width=8)
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 8

    def test_width_keeps_newest_tail(self):
        line = sparkline([0.0] * 50 + [9.0], width=4)
        assert len(line) == 4
        assert line[-1] == "█"


class TestFormatQuantity:
    def test_latency_scales(self):
        assert format_quantity(0.0000005, "s") == "0µs"
        assert format_quantity(0.0023, "s") == "2.3ms"
        assert format_quantity(1.5, "s") == "1.50s"

    def test_magnitudes(self):
        assert format_quantity(1_234_567) == "1.23M"
        assert format_quantity(2_500) == "2.50k"
        assert format_quantity(42.0) == "42"
        assert format_quantity(None) == "—"


def fake_documents(active_alert=False):
    metrics = {
        "uptime_seconds": 12.5,
        "ingest": {"accepted": 1500},
        "engine": {"slides": 47},
        "telemetry": {
            "slo": {
                "active": ["slide_latency"] if active_alert else [],
                "alerts": [
                    {
                        "slo": "slide_latency",
                        "severity": "page",
                        "active": active_alert,
                        "fast_burn": 8.0,
                        "slow_burn": 7.0,
                        "last_value": 2.5,
                    }
                ],
            }
        },
    }
    history = {
        "repro_ingest_accepted_total:rate": {
            "points": [[1.0, 100.0], [2.0, 150.0]]
        },
        "repro_slide_seconds:p99": {"points": [[1.0, 0.002], [2.0, 0.004]]},
        'repro_shard_busy_seconds_total{shard="0"}:rate': {
            "points": [[1.0, 0.5]]
        },
    }
    return metrics, history


class TestRenderTop:
    def test_healthy_frame_contents(self):
        metrics, history = fake_documents()
        frame = render_top(metrics, history, 200, {"status": "ok"})
        assert "OK ok" in frame
        assert "ingest rate" in frame
        assert "slide p99" in frame
        assert "shard 0 busy" in frame
        assert "alerts: none" in frame
        assert "ALERT" not in frame

    def test_alerting_frame_shows_alert_and_503(self):
        metrics, history = fake_documents(active_alert=True)
        frame = render_top(metrics, history, 503, {"status": "alerting"})
        assert "!! 503 alerting" in frame
        assert "ALERT [page] slide_latency" in frame
        assert "fast=8.0" in frame

    def test_missing_series_render_placeholders(self):
        frame = render_top({"ingest": {}, "engine": {}}, {}, 200, {})
        assert "—" in frame  # no data, but no crash either


class FakeClient:
    """Answers http_get from a canned route table, records requests."""

    def __init__(self, routes):
        self.routes = routes
        self.requests = []

    def http_get(self, path):
        self.requests.append(path)
        for prefix, response in self.routes.items():
            if path.startswith(prefix):
                return response
        return 404, {}


class TestGatherAndRun:
    def test_gather_pulls_catalog_and_series(self):
        metrics, history = fake_documents()
        shard_key = 'repro_shard_busy_seconds_total{shard="0"}:rate'
        routes = {
            "/metrics/history?series=": (200, {"points": [[1.0, 2.0]]}),
            "/metrics/history": (200, {"series": [shard_key, "other"]}),
            "/metrics": (200, metrics),
            "/healthz": (200, {"status": "ok"}),
        }
        client = FakeClient(routes)
        got_metrics, got_history, status, health = gather_top(client)
        assert status == 200
        assert got_metrics is metrics
        # Catalog-discovered shard series was fetched; 'other' was not.
        assert any("shard" in path for path in client.requests)
        assert shard_key in got_history

    def test_run_top_once_emits_one_frame(self):
        metrics, _ = fake_documents()
        routes = {
            "/metrics/history?series=": (200, {"points": []}),
            "/metrics/history": (200, {"series": []}),
            "/metrics": (200, metrics),
            "/healthz": (200, {"status": "ok"}),
        }
        frames = []
        run_top(
            FakeClient(routes),
            iterations=1,
            out=frames.append,
            clear=False,
        )
        assert len(frames) == 1
        assert "repro-stream top" in frames[0]
        assert "\x1b" not in frames[0]  # --once never clears the screen

    def test_run_top_clear_prefixes_ansi(self):
        metrics, _ = fake_documents()
        routes = {
            "/metrics/history?series=": (200, {"points": []}),
            "/metrics/history": (200, {"series": []}),
            "/metrics": (200, metrics),
            "/healthz": (200, {"status": "ok"}),
        }
        frames = []
        run_top(
            FakeClient(routes), iterations=1, out=frames.append, clear=True
        )
        assert frames[0].startswith("\x1b[2J\x1b[H")
