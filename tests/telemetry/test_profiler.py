"""Unit tests for the continuous wall-clock sampling profiler.

Covers the satellite edge cases: start/stop idempotence, a zero-sample
window, a thread that dies mid-profile, and bounded stack memory.  The
overhead bound itself is recorded (non-gated) by ``scripts/bench_smoke``;
here we only check that sampling is cheap enough to run in tests at all.
"""

import threading
import time

import pytest

from repro.telemetry.profiler import (
    DEFAULT_THREAD_TAGS,
    SamplingProfiler,
    collapse_counts,
)


def wait_for(predicate, timeout=5.0):
    deadline = time.time() + timeout
    while not predicate() and time.time() < deadline:
        time.sleep(0.01)
    assert predicate()


class TestCollapsedFormat:
    def test_sorted_most_samples_first(self):
        text = collapse_counts({"a;f;g": 2, "b;h": 9, "a;f": 2})
        assert text.splitlines() == ["b;h 9", "a;f 2", "a;f;g 2"]
        assert text.endswith("\n")

    def test_empty_counts_render_empty(self):
        assert collapse_counts({}) == ""


class TestSampling:
    def test_sample_once_observes_named_threads(self):
        stop = threading.Event()
        thread = threading.Thread(
            target=stop.wait, name="repro-ingest_0", daemon=True
        )
        thread.start()
        try:
            profiler = SamplingProfiler(hz=100.0)
            folded = profiler.sample_once()
            assert folded >= 1
            ingest_stacks = [
                stack
                for stack in profiler.counts()
                if stack.startswith("ingest;")
            ]
            assert ingest_stacks, profiler.counts()
        finally:
            stop.set()
            thread.join()

    def test_shard_threads_keep_their_own_name(self):
        stop = threading.Event()
        thread = threading.Thread(
            target=stop.wait, name="repro-shard-3", daemon=True
        )
        thread.start()
        try:
            profiler = SamplingProfiler()
            profiler.sample_once()
            assert any(
                stack.startswith("repro-shard-3;")
                for stack in profiler.counts()
            )
        finally:
            stop.set()
            thread.join()

    def test_unmatched_threads_tag_as_other(self):
        stop = threading.Event()
        thread = threading.Thread(
            target=stop.wait, name="mystery-worker", daemon=True
        )
        thread.start()
        try:
            profiler = SamplingProfiler()
            profiler.sample_once()
            assert any(
                stack.startswith("other;") for stack in profiler.counts()
            )
        finally:
            stop.set()
            thread.join()

    def test_profiler_never_samples_itself(self):
        profiler = SamplingProfiler(hz=200.0)
        profiler.start()
        wait_for(lambda: profiler.samples >= 10)
        profiler.stop()
        assert not any(
            "repro-profiler" in stack for stack in profiler.counts()
        )

    def test_bounded_stacks_overflow_into_other_bucket(self):
        profiler = SamplingProfiler(max_stacks=1)
        stop = threading.Event()
        threads = [
            threading.Thread(target=stop.wait, name=f"t{i}", daemon=True)
            for i in range(3)
        ]
        for thread in threads:
            thread.start()
        try:
            profiler.sample_once()
            profiler.sample_once()
            counts = profiler.counts()
            assert len([k for k in counts if "<other>" not in k]) <= 1
            assert profiler.overflow_samples > 0
            assert any(k.endswith(";<other>") for k in counts)
        finally:
            stop.set()
            for thread in threads:
                thread.join()

    def test_max_depth_truncates(self):
        def recurse(n):
            if n == 0:
                barrier.wait()
                stop.wait()
                return
            recurse(n - 1)

        barrier = threading.Barrier(2)
        stop = threading.Event()
        thread = threading.Thread(
            target=recurse, args=(40,), name="deep", daemon=True
        )
        thread.start()
        try:
            barrier.wait(timeout=5.0)
            profiler = SamplingProfiler(max_depth=5)
            profiler.sample_once()
            deep = [s for s in profiler.counts() if s.startswith("other;")]
            assert any("<truncated>" in stack for stack in deep)
            assert all(stack.count(";") <= 7 for stack in deep)
        finally:
            stop.set()
            thread.join()


class TestLifecycleEdgeCases:
    def test_start_stop_idempotent(self):
        profiler = SamplingProfiler(hz=200.0)
        profiler.start()
        profiler.start()  # second start is a no-op
        assert profiler.running
        profiler.stop()
        profiler.stop()  # second stop is a no-op
        assert not profiler.running
        # restartable after stop
        profiler.start()
        wait_for(lambda: profiler.samples > 0)
        profiler.stop()

    def test_zero_sample_window_renders_empty(self):
        """A window in which no samples landed must render cleanly."""
        profiler = SamplingProfiler(hz=100.0)
        # Never started, no inline samples: lifetime output is empty text.
        assert profiler.collapsed() == ""
        assert profiler.stats()["samples"] == 0
        with pytest.raises(ValueError):
            profiler.window(0.0)

    def test_window_on_stopped_profiler_samples_inline(self):
        profiler = SamplingProfiler(hz=100.0)
        text = profiler.window(0.05)
        assert text  # this thread alone guarantees >= 1 stack
        assert profiler.samples > 0

    def test_thread_death_mid_profile_is_survived(self):
        """Threads dying between (and during) sweeps must not break
        sampling or leave phantom entries."""
        profiler = SamplingProfiler(hz=500.0)
        profiler.start()
        for i in range(20):
            thread = threading.Thread(
                target=time.sleep, args=(0.001,), name=f"ephemeral-{i}"
            )
            thread.start()
            thread.join()
        wait_for(lambda: profiler.samples >= 5)
        profiler.stop()
        # The profiler survived and still tagged this (live) main thread.
        assert any(s.startswith("main;") for s in profiler.counts())

    def test_window_diff_excludes_prior_samples(self):
        profiler = SamplingProfiler(hz=200.0)
        profiler.start()
        wait_for(lambda: profiler.samples >= 5)
        before_total = sum(profiler.counts().values())
        text = profiler.window(0.05)
        profiler.stop()
        windowed = sum(int(line.rsplit(" ", 1)[1]) for line in text.splitlines())
        assert windowed < before_total + sum(profiler.counts().values())
        assert windowed >= 1

    def test_stats_shape(self):
        profiler = SamplingProfiler(hz=50.0, max_stacks=7)
        profiler.sample_once()
        stats = profiler.stats()
        assert stats["samples"] == 1
        assert stats["max_stacks"] == 7
        assert stats["running"] is False
        assert stats["distinct_stacks"] >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)
        with pytest.raises(ValueError):
            SamplingProfiler(max_stacks=0)
        with pytest.raises(ValueError):
            SamplingProfiler(max_depth=0)

    def test_default_tags_cover_service_threads(self):
        prefixes = [prefix for prefix, _ in DEFAULT_THREAD_TAGS]
        assert "repro-ingest" in prefixes
        assert "repro-shard" in prefixes
