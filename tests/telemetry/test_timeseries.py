"""Unit tests for the metrics flight recorder (retained time-series)."""

import json

import pytest

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.timeseries import (
    DEFAULT_RESOLUTIONS,
    MetricsFlightRecorder,
    SeriesRing,
    _delta_percentile,
    resolutions_for,
)


class FakeClock:
    """A hand-cranked monotonic clock."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        self.now += seconds
        return self.now


def make_recorder(registry, clock, wall=None, **kwargs):
    kwargs.setdefault("interval", 1.0)
    kwargs.setdefault("resolutions", ((1.0, 8), (4.0, 8)))
    return MetricsFlightRecorder(
        registry,
        clock=clock,
        wall_clock=wall if wall is not None else (lambda: 5_000.0),
        **kwargs,
    )


class TestSeriesRing:
    def test_append_and_eviction(self):
        ring = SeriesRing(3)
        for i in range(5):
            ring.append(float(i), float(i * 10))
        assert ring.points() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
        assert ring.latest() == (4.0, 40.0)

    def test_since_filter_and_empty(self):
        ring = SeriesRing(4)
        assert ring.points() == []
        assert ring.latest() is None
        for i in range(4):
            ring.append(float(i), 1.0)
        assert [t for t, _ in ring.points(since=2.0)] == [2.0, 3.0]


class TestSampling:
    def test_counter_yields_raw_and_rate_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", "jobs")
        clock = FakeClock()
        recorder = make_recorder(registry, clock)
        counter.value = 10.0
        recorder.sample_once()
        clock.advance(1.0)
        counter.value = 30.0
        recorder.sample_once()
        assert recorder.latest("jobs_total") == 30.0
        assert recorder.latest("jobs_total:rate") == pytest.approx(20.0)

    def test_counter_reset_records_zero_rate_not_negative(self):
        """A restarted worker resets its counter; rate must not go negative."""
        registry = MetricsRegistry()
        counter = registry.counter("work_total", "w")
        clock = FakeClock()
        recorder = make_recorder(registry, clock)
        counter.value = 100.0
        recorder.sample_once()
        clock.advance(1.0)
        counter.value = 5.0  # reset
        recorder.sample_once()
        assert recorder.latest("work_total:rate") == 0.0
        clock.advance(1.0)
        counter.value = 15.0
        recorder.sample_once()
        assert recorder.latest("work_total:rate") == pytest.approx(10.0)

    def test_gauge_recorded_as_is(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "queue depth")
        clock = FakeClock()
        recorder = make_recorder(registry, clock)
        gauge.set(7.0)
        recorder.sample_once()
        assert recorder.latest("depth") == 7.0

    def test_histogram_yields_delta_quantiles_and_rate(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", "latency")
        clock = FakeClock()
        recorder = make_recorder(registry, clock)
        recorder.sample_once()
        clock.advance(1.0)
        for _ in range(100):
            hist.observe(0.010)
        recorder.sample_once()
        p99 = recorder.latest("lat_seconds:p99")
        assert p99 is not None and 0.005 < p99 <= 0.011
        assert recorder.latest("lat_seconds:rate") == pytest.approx(100.0)

    def test_idle_histogram_interval_records_zero_quantiles(self):
        """No observations in an interval → 0, so SLO burns can decay."""
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", "latency")
        clock = FakeClock()
        recorder = make_recorder(registry, clock)
        recorder.sample_once()
        clock.advance(1.0)
        hist.observe(5.0)
        recorder.sample_once()
        busy = recorder.latest("lat_seconds:p99")
        assert busy is not None and 4.0 < busy <= 5.0
        clock.advance(1.0)
        recorder.sample_once()  # idle interval
        assert recorder.latest("lat_seconds:p99") == 0.0

    def test_labeled_children_become_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("busy_total", "b", shard="0").value = 4.0
        registry.counter("busy_total", "b", shard="1").value = 9.0
        clock = FakeClock()
        recorder = make_recorder(registry, clock)
        recorder.sample_once()
        names = recorder.series_names()
        assert 'busy_total{shard="0"}' in names
        assert 'busy_total{shard="1"}' in names

    def test_pre_and_post_sample_hooks_fire_in_order(self):
        calls = []
        registry = MetricsRegistry()
        clock = FakeClock()
        recorder = MetricsFlightRecorder(
            registry,
            interval=1.0,
            resolutions=((1.0, 4),),
            pre_sample=lambda: calls.append("pre"),
            post_sample=lambda t: calls.append(("post", t)),
            clock=clock,
            wall_clock=lambda: 0.0,
        )
        recorder.sample_once()
        assert calls[0] == "pre"
        assert calls[1] == ("post", clock.now)


class TestDownsampling:
    def test_coarse_ring_means_fine_points(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", "g")
        clock = FakeClock(start=0.0)
        recorder = make_recorder(registry, clock)
        # 4 s coarse buckets: values 0..3 → mean 1.5 in the first bucket.
        for value in range(9):
            gauge.set(float(value))
            recorder.sample_once()
            clock.advance(1.0)
        coarse = recorder.history("g", resolution=4.0)
        assert coarse["resolution_seconds"] == 4.0
        values = [v for _, v in coarse["points"]]
        assert values[0] == pytest.approx(1.5)  # mean(0,1,2,3)

    def test_quantile_series_downsample_with_max(self):
        """A p99 spike must survive into the coarse ring (max, not mean)."""
        registry = MetricsRegistry()
        hist = registry.histogram("lat", "l")
        clock = FakeClock(start=0.0)
        recorder = make_recorder(registry, clock)
        for i in range(9):
            hist.observe(9.0 if i == 2 else 0.001)
            recorder.sample_once()
            clock.advance(1.0)
        coarse = recorder.history("lat:p99", resolution=4.0)
        assert coarse["agg"] == "max"
        values = [v for _, v in coarse["points"]]
        assert max(values) > 1.0  # the spike survived downsampling

    def test_window_picks_finest_spanning_level(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", "g")
        clock = FakeClock(start=0.0)
        recorder = make_recorder(registry, clock)  # 1s×8 and 4s×8 levels
        gauge.set(1.0)
        for _ in range(6):
            recorder.sample_once()
            clock.advance(1.0)
        assert recorder.history("g", window=5.0)["resolution_seconds"] == 1.0
        assert recorder.history("g", window=20.0)["resolution_seconds"] == 4.0

    def test_window_falls_back_to_finer_level_before_first_coarse_bucket(self):
        """A big window right after start must not serve an empty chart
        while base-resolution points exist (coarse buckets lag)."""
        registry = MetricsRegistry()
        gauge = registry.gauge("g", "g")
        clock = FakeClock(start=0.0)
        recorder = make_recorder(registry, clock)
        gauge.set(2.0)
        recorder.sample_once()  # one base point; no 4 s bucket complete
        out = recorder.history("g", window=20.0)
        assert out["resolution_seconds"] == 1.0  # fell back
        assert len(out["points"]) == 1
        # An explicitly pinned resolution never falls back.
        assert recorder.history("g", resolution=4.0)["points"] == []

    def test_unknown_series_and_resolution_raise(self):
        registry = MetricsRegistry()
        registry.gauge("g", "g").set(1.0)
        clock = FakeClock()
        recorder = make_recorder(registry, clock)
        recorder.sample_once()
        with pytest.raises(KeyError):
            recorder.history("nope")
        with pytest.raises(ValueError):
            recorder.history("g", resolution=7.0)


class TestClockAnchor:
    def test_exported_timestamps_survive_ntp_step(self):
        """Satellite: one wall anchor per recorder → an NTP step after
        construction shifts no retained point and never reorders them."""
        registry = MetricsRegistry()
        gauge = registry.gauge("g", "g")
        clock = FakeClock(start=100.0)
        wall = {"now": 1_000_000.0}
        recorder = make_recorder(registry, clock, wall=lambda: wall["now"])
        gauge.set(1.0)
        recorder.sample_once()
        clock.advance(1.0)
        wall["now"] -= 3600.0  # NTP steps wall time back one hour
        recorder.sample_once()
        clock.advance(1.0)
        wall["now"] += 7200.0  # ...then forward two
        recorder.sample_once()
        points = recorder.history("g")["points"]
        times = [t for t, _ in points]
        # Monotone, exactly 1 s apart, anchored at construction wall time.
        assert times == sorted(times)
        assert times[0] == pytest.approx(1_000_000.0)
        assert times[1] - times[0] == pytest.approx(1.0)
        assert times[2] - times[1] == pytest.approx(1.0)

    def test_to_wall_is_pure_offset(self):
        registry = MetricsRegistry()
        clock = FakeClock(start=50.0)
        recorder = make_recorder(registry, clock, wall=lambda: 500.0)
        assert recorder.to_wall(53.5) == pytest.approx(503.5)


class TestLifecycleAndExport:
    def test_start_stop_idempotent(self):
        registry = MetricsRegistry()
        registry.gauge("g", "g").set(1.0)
        recorder = MetricsFlightRecorder(
            registry, interval=0.01, resolutions=((0.01, 16),)
        )
        recorder.start()
        recorder.start()  # no-op
        assert recorder.running
        recorder.stop()
        recorder.stop()  # no-op
        assert not recorder.running
        assert recorder.samples_taken >= 0

    def test_background_sampler_takes_samples(self):
        import time as _time

        registry = MetricsRegistry()
        registry.gauge("g", "g").set(3.0)
        recorder = MetricsFlightRecorder(
            registry, interval=0.01, resolutions=((0.01, 64),)
        )
        recorder.start()
        deadline = _time.time() + 2.0
        while recorder.samples_taken < 3 and _time.time() < deadline:
            _time.sleep(0.01)
        recorder.stop()
        assert recorder.samples_taken >= 3
        assert recorder.latest("g") == 3.0

    def test_export_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.gauge("g", "g").set(2.0)
        clock = FakeClock()
        recorder = make_recorder(registry, clock)
        recorder.sample_once()
        document = json.loads(json.dumps(recorder.export()))
        assert document["series"]["g"]["points"][0][1] == 2.0
        assert document["samples_taken"] == 1

    def test_memory_bound_is_fixed(self):
        """Rings never grow past capacity, whatever the sample count."""
        registry = MetricsRegistry()
        gauge = registry.gauge("g", "g")
        clock = FakeClock(start=0.0)
        recorder = make_recorder(registry, clock)  # 1s×8, 4s×8
        for i in range(100):
            gauge.set(float(i))
            recorder.sample_once()
            clock.advance(1.0)
        assert len(recorder.history("g")["points"]) == 8
        assert len(recorder.history("g", resolution=4.0)["points"]) <= 8

    def test_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            MetricsFlightRecorder(registry, interval=0.0)
        with pytest.raises(ValueError):
            MetricsFlightRecorder(registry, resolutions=())
        with pytest.raises(ValueError):
            MetricsFlightRecorder(registry, resolutions=((1.0, 4), (1.0, 4)))

    def test_default_resolutions_ladder(self):
        assert DEFAULT_RESOLUTIONS[0][0] == 1.0
        spans = [interval * capacity for interval, capacity in DEFAULT_RESOLUTIONS]
        assert spans == sorted(spans)  # coarser levels retain longer

    def test_resolutions_for_scales_base_level(self):
        ladder = resolutions_for(0.05)
        assert ladder[0] == (0.05, DEFAULT_RESOLUTIONS[0][1])
        assert ladder[1:] == DEFAULT_RESOLUTIONS[1:]
        # A coarse sampling interval drops now-finer default levels.
        assert resolutions_for(30.0) == ((30.0, 120), (60.0, 720))
        assert resolutions_for(1.0) == DEFAULT_RESOLUTIONS
        # The result is always a valid ladder.
        MetricsFlightRecorder(
            MetricsRegistry(), interval=90.0, resolutions=resolutions_for(90.0)
        )


class TestDeltaPercentile:
    def test_empty_delta_is_zero(self):
        assert _delta_percentile([0.001, 0.01], [0, 0, 0], 0.0, 0.99) == 0.0

    def test_all_in_overflow_returns_max(self):
        assert _delta_percentile([0.001], [0, 5], 9.0, 0.99) == 9.0

    def test_interpolates_within_bucket(self):
        value = _delta_percentile([1.0, 2.0], [0, 10, 0], 2.0, 0.5)
        assert 1.0 <= value <= 2.0
