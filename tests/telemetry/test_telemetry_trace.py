"""Unit tests for slide traces, the ambient slot, and the recorder."""

import json
import threading

import pytest

from repro.telemetry import (
    STAGES,
    MetricsRegistry,
    SlideTrace,
    TraceLog,
    TraceRecorder,
    active_trace,
    record_stage,
)


class TestSlideTrace:
    def test_add_stage_accumulates(self):
        trace = SlideTrace(slide=3, actions=10)
        trace.add_stage("oracle", 0.1, items=5)
        trace.add_stage("oracle", 0.2, items=5)
        assert trace.stages["oracle"] == [pytest.approx(0.3), 10]

    def test_to_event_orders_stages_canonically(self):
        trace = SlideTrace(slide=1, actions=4)
        trace.add_stage("publish", 0.01)
        trace.add_stage("queue_wait", 0.02)
        trace.add_stage("oracle", 0.03)
        event = trace.to_event(threshold_ms=5.0)
        names = list(event["stages"])
        assert names == ["queue_wait", "oracle", "publish"]
        assert event["event"] == "slow_slide"
        assert event["threshold_ms"] == 5.0
        assert event["slide"] == 1 and event["actions"] == 4

    def test_unknown_stage_sorts_last_not_lost(self):
        trace = SlideTrace(slide=1, actions=1)
        trace.add_stage("custom_stage", 0.01)
        trace.add_stage("queue_wait", 0.01)
        assert list(trace.to_event()["stages"]) == [
            "queue_wait",
            "custom_stage",
        ]


class TestAmbientSlot:
    def test_record_stage_without_trace_is_noop(self):
        assert active_trace() is None
        record_stage("oracle", 1.0)  # must not raise

    def test_record_stage_hits_active_trace(self):
        recorder = TraceRecorder()
        trace = recorder.begin(slide=1, actions=2)
        try:
            record_stage("wal_fsync", 0.5, items=2)
            assert active_trace() is trace
            assert trace.stages["wal_fsync"] == [0.5, 2]
        finally:
            recorder.finish(trace)
        assert active_trace() is None

    def test_slot_is_per_thread(self):
        recorder = TraceRecorder()
        trace = recorder.begin(slide=1, actions=1)
        seen = []
        thread = threading.Thread(target=lambda: seen.append(active_trace()))
        thread.start()
        thread.join()
        recorder.finish(trace)
        assert seen == [None]


class TestTraceRecorder:
    def test_ring_buffer_keeps_last_n(self):
        recorder = TraceRecorder(capacity=3)
        for slide in range(6):
            recorder.finish(recorder.begin(slide, actions=1))
        events = recorder.recent()
        assert [e["slide"] for e in events] == [3, 4, 5]
        assert [e["slide"] for e in recorder.recent(limit=2)] == [4, 5]

    def test_abandon_clears_slot_without_recording(self):
        recorder = TraceRecorder()
        trace = recorder.begin(slide=1, actions=1)
        recorder.abandon(trace)
        assert active_trace() is None
        assert recorder.traced_slides == 0
        assert recorder.recent() == []

    def test_registry_feeds_total_and_stage_histograms(self):
        registry = MetricsRegistry()
        recorder = TraceRecorder(registry=registry)
        trace = recorder.begin(slide=1, actions=2)
        trace.add_stage("oracle", 0.01, items=2)
        recorder.finish(trace)
        snapshot = registry.snapshot()
        assert snapshot["repro_slide_seconds"]["count"] == 1
        assert snapshot["repro_slide_stage_seconds"]["stage=oracle"]["count"] == 1

    def test_slow_slide_threshold_semantics(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        log = TraceLog(str(path))
        # 1e9 ms: nothing real is that slow -> no emission.
        recorder = TraceRecorder(slow_slide_ms=1e9, trace_log=log)
        recorder.finish(recorder.begin(slide=1, actions=1))
        assert recorder.slow_slides == 0
        # 0 ms: every slide emits.
        recorder = TraceRecorder(slow_slide_ms=0.0, trace_log=log)
        recorder.finish(recorder.begin(slide=2, actions=1))
        assert recorder.slow_slides == 1
        assert log.events_written == 1
        log.close()
        event = json.loads(path.read_text().strip())
        assert event["event"] == "slow_slide"
        assert event["slide"] == 2

    def test_none_threshold_disables_emission(self, tmp_path):
        log = TraceLog(str(tmp_path / "trace.jsonl"))
        recorder = TraceRecorder(slow_slide_ms=None, trace_log=log)
        recorder.finish(recorder.begin(slide=1, actions=1))
        assert recorder.slow_slides == 0
        assert log.events_written == 0
        recorder.close()

    def test_stats_shape(self):
        recorder = TraceRecorder(capacity=8, slow_slide_ms=0.0)
        recorder.finish(recorder.begin(slide=1, actions=1))
        stats = recorder.stats()
        assert stats["traced_slides"] == 1
        assert stats["slow_slides"] == 1
        assert stats["ring_capacity"] == 8
        assert stats["trace_log_events"] == 0  # no sink attached

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)


class TestTraceLog:
    def test_appends_one_json_line_per_event(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        log = TraceLog(str(path))
        log.emit({"event": "slow_slide", "slide": 1})
        log.emit({"event": "slow_slide", "slide": 2})
        log.close()
        lines = path.read_text().strip().splitlines()
        assert [json.loads(line)["slide"] for line in lines] == [1, 2]

    def test_emit_after_close_is_noop(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        log = TraceLog(str(path))
        log.close()
        log.emit({"event": "slow_slide"})  # must not raise
        assert log.events_written == 0

    def test_reopen_appends(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for slide in (1, 2):
            log = TraceLog(str(path))
            log.emit({"slide": slide, "stages": {}})
            log.close()
        assert len(path.read_text().strip().splitlines()) == 2


def test_stage_names_cover_the_pipeline():
    """The canonical ladder names every stage the layers record."""
    expected = {
        "queue_wait",
        "coalesce",
        "forest_index",
        "oracle",
        "kernel_index",
        "kernel_pass",
        "shard_fanout",
        "shard_merge",
        "wal_fsync",
        "snapshot",
        "publish",
    }
    assert expected == set(STAGES)
