"""Unit tests for SLO burn-rate evaluation and alert lifecycle."""

import json

import pytest

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.slo import (
    SLO,
    AlertLog,
    SLOMonitor,
    default_slos,
    parse_slo_spec,
)
from repro.telemetry.timeseries import MetricsFlightRecorder


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        self.now += seconds
        return self.now


def build(clock, slo, alert_log=None, registry=None):
    """A recorder+monitor pair over one gauge series named ``lat``."""
    reg = registry if registry is not None else MetricsRegistry()
    gauge = reg.gauge("lat", "latency proxy")
    recorder = MetricsFlightRecorder(
        reg,
        interval=1.0,
        resolutions=((1.0, 64),),
        clock=clock,
        wall_clock=lambda: 7_000.0,
    )
    monitor = SLOMonitor(
        recorder,
        [slo],
        alert_log=alert_log,
        registry=registry,
        clock=clock,
        wall_clock=lambda: 7_000.0,
    )
    return gauge, recorder, monitor


TIGHT = SLO(
    name="lat",
    series="lat",
    threshold=1.0,
    objective=0.5,  # budget 0.5: burn = 2 x bad fraction
    fast_window=4.0,
    slow_window=10.0,
    burn=1.5,
    min_samples=2,
)


def feed(gauge, recorder, monitor, clock, values):
    for value in values:
        gauge.set(value)
        recorder.sample_once()
        monitor.evaluate()
        clock.advance(1.0)


class TestBurnMath:
    def test_burn_is_bad_fraction_over_budget(self):
        clock = FakeClock()
        gauge, recorder, monitor = build(clock, TIGHT)
        feed(gauge, recorder, monitor, clock, [2.0, 0.0, 2.0, 0.0])
        alert = monitor.alerts()[0]
        # fast window (4 s): 2 bad of 4 → 0.5 / budget 0.5 = 1.0
        assert alert.fast_burn == pytest.approx(1.0)

    def test_under_min_samples_burn_is_zero(self):
        clock = FakeClock()
        gauge, recorder, monitor = build(clock, TIGHT)
        gauge.set(100.0)
        recorder.sample_once()
        monitor.evaluate()
        alert = monitor.alerts()[0]
        assert alert.fast_burn == 0.0  # one sample < min_samples=2
        assert not alert.active


class TestAlertLifecycle:
    def test_raise_requires_both_windows(self):
        clock = FakeClock()
        gauge, recorder, monitor = build(clock, TIGHT)
        # Every sample bad: fast and slow both burn at 2.0 >= 1.5.
        feed(gauge, recorder, monitor, clock, [5.0] * 6)
        alert = monitor.alerts()[0]
        assert alert.active
        assert alert.raised_count == 1
        assert monitor.active_alerts() == [alert]
        assert monitor.page_active()  # default severity is page

    def test_clears_at_fast_window_latency(self):
        clock = FakeClock()
        gauge, recorder, monitor = build(clock, TIGHT)
        feed(gauge, recorder, monitor, clock, [5.0] * 6)
        assert monitor.alerts()[0].active
        # Recovery: fast window (4 samples) empties of violations.
        feed(gauge, recorder, monitor, clock, [0.0] * 5)
        alert = monitor.alerts()[0]
        assert not alert.active
        assert not monitor.page_active()

    def test_ticket_severity_never_pages(self):
        clock = FakeClock()
        slo = SLO(
            name="t",
            series="lat",
            threshold=1.0,
            objective=0.5,
            fast_window=4.0,
            slow_window=10.0,
            burn=1.0,
            severity="ticket",
        )
        gauge, recorder, monitor = build(clock, slo)
        feed(gauge, recorder, monitor, clock, [5.0] * 6)
        assert monitor.alerts()[0].active
        assert not monitor.page_active()

    def test_transitions_append_jsonl(self, tmp_path):
        log_path = tmp_path / "alerts.jsonl"
        log = AlertLog(str(log_path))
        clock = FakeClock()
        gauge, recorder, monitor = build(clock, TIGHT, alert_log=log)
        feed(gauge, recorder, monitor, clock, [5.0] * 6)
        feed(gauge, recorder, monitor, clock, [0.0] * 5)
        monitor.close()
        events = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
            if line
        ]
        kinds = [e["event"] for e in events]
        assert kinds == ["alert_raised", "alert_cleared"]
        raised, cleared = events
        assert raised["slo"] == "lat"
        assert raised["severity"] == "page"
        assert raised["fast_burn"] >= TIGHT.burn
        assert cleared["active_seconds"] > 0
        # emit after close is a no-op, not an error
        log.emit({"event": "late"})

    def test_registry_gauges_mirror_alert_state(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        gauge, recorder, monitor = build(clock, TIGHT, registry=registry)
        feed(gauge, recorder, monitor, clock, [5.0] * 6)
        snapshot = {
            (family.name, labels): metric
            for family in registry.families()
            for labels, metric in family.children.items()
        }
        active = snapshot[("repro_alert_active", (("slo", "lat"),))]
        assert active.value == 1.0
        fast = snapshot[
            ("repro_slo_burn_rate", (("slo", "lat"), ("window", "fast")))
        ]
        assert fast.value >= TIGHT.burn


class TestSnapshotAndConfig:
    def test_snapshot_shape(self):
        clock = FakeClock()
        gauge, recorder, monitor = build(clock, TIGHT)
        feed(gauge, recorder, monitor, clock, [5.0] * 6)
        document = json.loads(json.dumps(monitor.snapshot()))
        assert document["active"] == ["lat"]
        assert document["objectives"][0]["series"] == "lat"
        assert document["alerts"][0]["active"] is True
        assert document["evaluations"] == 6

    def test_duplicate_names_rejected(self):
        registry = MetricsRegistry()
        recorder = MetricsFlightRecorder(
            registry, interval=1.0, resolutions=((1.0, 4),)
        )
        with pytest.raises(ValueError, match="duplicate"):
            SLOMonitor(recorder, [TIGHT, TIGHT])

    def test_slo_validation(self):
        with pytest.raises(ValueError):
            SLO(name="", series="s", threshold=1.0)
        with pytest.raises(ValueError):
            SLO(name="x", series="s", threshold=1.0, objective=1.5)
        with pytest.raises(ValueError):
            SLO(name="x", series="s", threshold=1.0, fast_window=60, slow_window=10)
        with pytest.raises(ValueError):
            SLO(name="x", series="s", threshold=1.0, severity="email")

    def test_default_slos_cover_the_serving_plane(self):
        slos = default_slos()
        series = {s.series for s in slos}
        assert "repro_slide_seconds:p99" in series
        assert "repro_ingest_queue_wait_seconds:p99" in series
        assert any(s.severity == "page" for s in slos)
        assert any(s.severity == "ticket" for s in slos)


class TestParseSpec:
    def test_full_spec(self):
        slo = parse_slo_spec(
            "tight=repro_slide_seconds:p99,threshold=0.5,objective=0.9,"
            "fast=5,slow=30,burn=2,severity=ticket,min-samples=3"
        )
        assert slo.name == "tight"
        assert slo.series == "repro_slide_seconds:p99"
        assert slo.threshold == 0.5
        assert slo.objective == 0.9
        assert slo.fast_window == 5.0
        assert slo.slow_window == 30.0
        assert slo.burn == 2.0
        assert slo.severity == "ticket"
        assert slo.min_samples == 3

    def test_threshold_required(self):
        with pytest.raises(ValueError, match="threshold"):
            parse_slo_spec("a=series")

    def test_bad_shapes_rejected(self):
        for spec in ("noequals", "=series,threshold=1", "a=", "a=s,bogus=1"):
            with pytest.raises(ValueError):
                parse_slo_spec(spec)
