"""Smoke tests: every example script runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    args = [sys.executable, str(script)]
    if script.name == "framework_comparison.py":
        args.append("--quick")
    completed = subprocess.run(
        args, capture_output=True, text=True, timeout=600
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"
