"""Documentation coverage: every module and public item is documented."""

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

PACKAGE_ROOT = pathlib.Path(repro.__file__).parent


def all_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages([str(PACKAGE_ROOT)], prefix="repro."):
        names.append(info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", all_modules())
def test_module_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", all_modules())
def test_public_items_documented(module_name):
    """Everything in a module's __all__ carries a docstring."""
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        item = getattr(module, name)
        if inspect.isclass(item) or inspect.isfunction(item):
            assert item.__doc__ and item.__doc__.strip(), (
                f"{module_name}.{name} lacks a docstring"
            )


@pytest.mark.parametrize("module_name", all_modules())
def test_public_methods_documented(module_name):
    """Public methods and properties of exported classes are documented."""
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        item = getattr(module, name)
        if not inspect.isclass(item):
            continue
        for attr_name, attr in vars(item).items():
            if attr_name.startswith("_"):
                continue
            if not (isinstance(attr, property) or inspect.isfunction(attr)):
                continue
            # getdoc walks the MRO: overriding an already-documented ABC
            # method without restating its docstring is fine.
            documented = inspect.getdoc(getattr(item, attr_name))
            assert documented and documented.strip(), (
                f"{module_name}.{name}.{attr_name} lacks a docstring"
            )


def test_repository_documents_exist():
    repo = PACKAGE_ROOT.parent.parent
    for required in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        path = repo / required
        assert path.exists(), required
        assert len(path.read_text()) > 500, f"{required} looks empty"
