"""Unit and statistical tests for RR-set sampling and coverage greedy."""

import random

import pytest

from repro.diffusion.monte_carlo import estimate_spread
from repro.diffusion.rr_sets import (
    coverage_greedy,
    generate_rr_sets,
    random_rr_set,
)
from repro.graphs.graph import DiGraph
from repro.graphs.rmat import rmat_edges
from repro.graphs.wc_model import assign_weighted_cascade


def chain(length, probability=1.0):
    graph = DiGraph()
    for i in range(length - 1):
        graph.add_edge(i, i + 1, probability)
    return graph


class TestRandomRRSet:
    def test_deterministic_chain_collects_ancestors(self):
        graph = chain(5, probability=1.0)
        rr = random_rr_set(graph, 4, random.Random(0))
        assert rr == {0, 1, 2, 3, 4}

    def test_zero_probability_is_singleton(self):
        graph = chain(5, probability=0.0)
        assert random_rr_set(graph, 4, random.Random(0)) == {4}

    def test_root_always_included(self):
        graph = chain(3, probability=0.5)
        for seed in range(10):
            assert 2 in random_rr_set(graph, 2, random.Random(seed))


class TestGenerateRRSets:
    def test_count(self):
        graph = chain(4)
        rr_sets = generate_rr_sets(graph, 25, random.Random(1))
        assert len(rr_sets) == 25

    def test_empty_graph(self):
        assert generate_rr_sets(DiGraph(), 10, random.Random(1)) == []

    def test_negative_count(self):
        with pytest.raises(ValueError, match="non-negative"):
            generate_rr_sets(chain(3), -1)

    def test_explicit_roots(self):
        graph = chain(4, probability=0.0)
        rr_sets = generate_rr_sets(graph, 3, random.Random(1), roots=[0, 1, 2])
        assert rr_sets == [{0}, {1}, {2}]


class TestCoverageGreedy:
    def test_simple_cover(self):
        rr_sets = [{1, 2}, {2, 3}, {4}, {4, 5}]
        seeds, covered = coverage_greedy(rr_sets, 2)
        assert covered == 4  # {2 covers 2 sets} + {4 covers 2 sets}
        assert set(seeds) == {2, 4}

    def test_k_validation(self):
        with pytest.raises(ValueError, match="positive"):
            coverage_greedy([{1}], 0)

    def test_empty_rr_sets(self):
        seeds, covered = coverage_greedy([], 3)
        assert seeds == [] and covered == 0

    def test_stops_at_zero_gain(self):
        rr_sets = [{1}, {1}, {1}]
        seeds, covered = coverage_greedy(rr_sets, 3)
        assert seeds == [1] and covered == 3

    def test_respects_k(self):
        rr_sets = [{i} for i in range(10)]
        seeds, covered = coverage_greedy(rr_sets, 4)
        assert len(seeds) == 4 and covered == 4


class TestRISIdentity:
    def test_rr_estimate_matches_monte_carlo(self):
        """Borgs et al. identity: n * E[coverage fraction] == E[spread]."""
        graph = DiGraph.from_edges(
            (s, t, 1.0) for s, t in rmat_edges(40, 120, seed=9)
        )
        assign_weighted_cascade(graph)
        n = graph.node_count
        seeds = [0, 1]
        rng = random.Random(11)
        rr_sets = generate_rr_sets(graph, 8000, rng)
        hits = sum(1 for rr in rr_sets if rr & set(seeds))
        ris_estimate = n * hits / len(rr_sets)
        mc_estimate = estimate_spread(graph, seeds, rounds=8000, seed=13)
        assert ris_estimate == pytest.approx(mc_estimate, rel=0.15, abs=0.5)
