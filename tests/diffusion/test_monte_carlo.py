"""Unit and statistical tests for IC-model Monte-Carlo simulation."""

import random

import pytest

from repro.diffusion.monte_carlo import estimate_spread, simulate_spread
from repro.graphs.graph import DiGraph


def chain(length, probability=1.0):
    graph = DiGraph()
    for i in range(length - 1):
        graph.add_edge(i, i + 1, probability)
    return graph


class TestSimulateSpread:
    def test_deterministic_chain(self):
        graph = chain(5, probability=1.0)
        assert simulate_spread(graph, [0], random.Random(0)) == 5

    def test_zero_probability_spreads_nothing(self):
        graph = chain(5, probability=0.0)
        assert simulate_spread(graph, [0], random.Random(0)) == 1

    def test_seed_not_in_graph(self):
        graph = chain(3)
        assert simulate_spread(graph, [99], random.Random(0)) == 0

    def test_multiple_seeds_counted_once(self):
        graph = chain(4, probability=1.0)
        assert simulate_spread(graph, [0, 1], random.Random(0)) == 4


class TestEstimateSpread:
    def test_empty_seeds(self):
        assert estimate_spread(chain(3), [], rounds=10) == 0.0

    def test_rounds_validation(self):
        with pytest.raises(ValueError, match="positive"):
            estimate_spread(chain(3), [0], rounds=0)

    def test_deterministic_graph_exact(self):
        assert estimate_spread(chain(4, 1.0), [0], rounds=50, seed=1) == 4.0

    def test_reproducible_under_seed(self):
        graph = chain(10, probability=0.5)
        a = estimate_spread(graph, [0], rounds=200, seed=42)
        b = estimate_spread(graph, [0], rounds=200, seed=42)
        assert a == b

    def test_single_edge_expectation(self):
        """Spread of {0} on 0->1 with p: expectation is 1 + p."""
        graph = DiGraph()
        graph.add_edge(0, 1, 0.3)
        estimate = estimate_spread(graph, [0], rounds=20_000, seed=7)
        assert estimate == pytest.approx(1.3, abs=0.02)

    def test_monotone_in_seeds(self):
        graph = chain(8, probability=0.5)
        small = estimate_spread(graph, [0], rounds=3000, seed=3)
        large = estimate_spread(graph, [0, 4], rounds=3000, seed=3)
        assert large >= small
