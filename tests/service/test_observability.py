"""Integration tests for the retained-observability plane (flight
recorder, SLO alerting, sampling profiler, ops console) on a live server.

Covers the PR's acceptance criteria:

* ``GET /metrics/history`` serves downsampled series for ingest rate,
  slide p99, and per-shard busy-seconds;
* an induced latency spike trips the fast-burn SLO alert — visible as a
  ``/healthz`` 503 and structured JSONL — and clears after recovery;
* ``repro-stream profile`` against a live server emits non-empty
  collapsed stacks attributing samples to the ingest loop thread;
* ``repro-stream trace`` exits 0 with a friendly message on an
  empty/missing trace log (regression);
* the prometheus exposition carries the sampler-lag and alert-state
  gauges.
"""

import json
import threading
import time

import pytest

from repro.cli import main as cli_main
from repro.core.multi import MultiQueryEngine
from repro.core.sic import SparseInfluentialCheckpoints
from repro.persistence.engine import RecoverableEngine
from repro.service.client import ServiceClient
from repro.service.config import ServiceConfig
from repro.service.runner import ServiceRunner
from tests.conftest import parse_prometheus, random_stream


def board_factory(assignment=None):
    board = MultiQueryEngine()
    board.add(
        "main",
        SparseInfluentialCheckpoints(
            window_size=60, k=3, beta=0.3, shard=assignment
        ),
    )
    return board


def serve(**config_kwargs) -> ServiceRunner:
    """An in-process observable server on an OS-picked port."""
    config_kwargs.setdefault("port", 0)
    config_kwargs.setdefault("flush_interval", 60.0)
    config_kwargs.setdefault("sample_interval", 0.05)
    shards = config_kwargs.get("shards", 1)
    if shards > 1:
        from repro.sharding.engine import ShardedEngine

        engine = ShardedEngine.open(
            board_factory, shards, backend=config_kwargs.get("shard_backend", "thread")
        )
    else:
        engine = RecoverableEngine.open(None, board_factory)
    return ServiceRunner(engine, ServiceConfig(**config_kwargs))


def wait_until(predicate, timeout=15.0, interval=0.05):
    deadline = time.time() + timeout
    result = predicate()
    while not result and time.time() < deadline:
        time.sleep(interval)
        result = predicate()
    return result


class TestHistoryEndpoint:
    def test_serves_downsampled_core_series(self):
        """Ingest rate, slide p99, per-shard busy-seconds all retained."""
        actions = random_stream(300, 20, seed=21)
        with serve(shards=2, shard_backend="thread", slide=16) as runner:
            client = ServiceClient("127.0.0.1", runner.port)

            def samples_taken():
                return (
                    client.http_get("/metrics/history")[1]
                    .get("recorder", {})
                    .get("samples_taken", 0)
                )

            # A pre-ingest sample gives the rate derivation its baseline;
            # the post-ingest sweeps then see a positive delta.
            assert wait_until(lambda: samples_taken() >= 1)
            floor = samples_taken()
            client.ingest(actions)
            assert wait_until(lambda: samples_taken() >= floor + 2)
            status, catalog = client.http_get("/metrics/history")
            assert status == 200
            names = catalog["series"]
            assert "repro_ingest_accepted_total:rate" in names
            assert "repro_slide_seconds:p99" in names
            for shard in ("0", "1"):
                key = f'repro_shard_busy_seconds_total{{shard="{shard}"}}'
                assert key in names
                assert key + ":rate" in names

            def fetch(series, **params):
                query = "&".join(
                    [f"series={series}"]
                    + [f"{k}={v}" for k, v in params.items()]
                )
                return client.http_get(f"/metrics/history?{query}")

            status, rate = fetch("repro_ingest_accepted_total:rate")
            assert status == 200
            assert rate["resolution_seconds"] == 0.05
            assert len(rate["points"]) >= 2
            # Ingest happened, so some rate point is positive.
            assert any(v > 0 for _, v in rate["points"])

            status, p99 = fetch("repro_slide_seconds:p99")
            assert status == 200
            assert p99["agg"] == "max"
            assert any(v > 0 for _, v in p99["points"])

            status, busy = fetch(
                'repro_shard_busy_seconds_total{shard="0"}'
            )
            assert status == 200
            assert busy["points"][-1][1] >= 0.0

            # Wall-stamped timestamps are monotone (anchored export).
            times = [t for t, _ in rate["points"]]
            assert times == sorted(times)

    def test_unknown_series_404_and_bad_params_400(self):
        with serve() as runner:
            client = ServiceClient("127.0.0.1", runner.port)
            assert wait_until(
                lambda: client.http_get("/metrics/history")[1].get(
                    "recorder", {}
                ).get("samples_taken", 0)
                >= 1
            )
            status, payload = client.http_get(
                "/metrics/history?series=nonsense"
            )
            assert status == 404
            assert "unknown series" in payload["error"]
            status, payload = client.http_get(
                "/metrics/history?series=repro_uptime_seconds&window=abc"
            )
            assert status == 400

    def test_disabled_recorder_503s(self):
        with serve(flight_recorder=False) as runner:
            client = ServiceClient("127.0.0.1", runner.port)
            client.wait_healthy()
            status, payload = client.http_get("/metrics/history")
            assert status == 503
            assert "disabled" in payload["error"]
            # /metrics still works, minus the recorder block.
            _, metrics = client.http_get("/metrics")
            assert "flight_recorder" not in metrics["telemetry"]
            assert "slo" not in metrics["telemetry"]


class TestSLOAlerting:
    def test_latency_spike_raises_then_clears(self, tmp_path):
        """The acceptance spike: a deliberately tight SLO fires under
        load (healthz 503 "alerting" + JSONL) and clears at rest."""
        alert_log = tmp_path / "alerts.jsonl"
        tight = (
            "tight=repro_slide_seconds:p99,threshold=0.0,objective=0.5,"
            "fast=0.4,slow=0.8,burn=1.0,severity=page,min-samples=2"
        )
        with serve(
            slide=8,
            slo_specs=(tight,),
            slo_defaults=False,
            alert_log=str(alert_log),
        ) as runner:
            client = ServiceClient("127.0.0.1", runner.port)
            client.wait_healthy()

            # Induce the spike: keep slides flowing so every sampler
            # interval sees a positive p99 (> threshold 0.0).
            stream = random_stream(60_000, 15, seed=7)
            stop = threading.Event()

            def pump():
                for start in range(0, len(stream), 40):
                    if stop.is_set():
                        return
                    try:
                        client.ingest(stream[start : start + 40])
                    except (RuntimeError, OSError):
                        return

            pumper = threading.Thread(target=pump, daemon=True)
            pumper.start()
            try:
                raised = wait_until(
                    lambda: client.http_get("/healthz")[0] == 503
                )
                status, payload = client.http_get("/healthz")
                assert raised, payload
                assert payload["status"] == "alerting"
                assert payload["alerts"][0]["slo"] == "tight"
            finally:
                stop.set()
                pumper.join()

            # Recovery: no slides → idle intervals record p99 = 0, the
            # fast window empties of violations, the alert clears.
            assert wait_until(
                lambda: client.http_get("/healthz")[0] == 200
            ), client.http_get("/healthz")[1]

            _, metrics = client.http_get("/metrics")
            slo = metrics["telemetry"]["slo"]
            assert slo["active"] == []
            assert slo["alerts"][0]["raised_count"] >= 1

        events = [
            json.loads(line)
            for line in alert_log.read_text().splitlines()
            if line
        ]
        kinds = [e["event"] for e in events]
        assert "alert_raised" in kinds
        assert "alert_cleared" in kinds
        assert kinds.index("alert_raised") < kinds.index("alert_cleared")
        raised_event = events[kinds.index("alert_raised")]
        assert raised_event["slo"] == "tight"
        assert raised_event["severity"] == "page"
        assert raised_event["fast_burn"] >= 1.0

    def test_default_objectives_green_on_healthy_service(self):
        with serve() as runner:
            client = ServiceClient("127.0.0.1", runner.port)
            client.ingest(random_stream(100, 10, seed=3))
            assert wait_until(
                lambda: client.http_get("/metrics")[1]["telemetry"]
                .get("slo", {})
                .get("evaluations", 0)
                >= 2
            )
            _, metrics = client.http_get("/metrics")
            slo = metrics["telemetry"]["slo"]
            assert slo["active"] == []
            names = {o["name"] for o in slo["objectives"]}
            assert "slide_latency" in names
            status, _ = client.http_get("/healthz")
            assert status == 200


class TestPrometheusExposition:
    def test_sampler_lag_and_alert_state_gauges(self):
        """Satellite: the exposition carries recorder lag + alert gauges."""
        with serve() as runner:
            client = ServiceClient("127.0.0.1", runner.port)
            client.ingest(random_stream(50, 10, seed=5))
            assert wait_until(
                lambda: client.http_get("/metrics")[1]["telemetry"]
                .get("flight_recorder", {})
                .get("samples_taken", 0)
                >= 1
            )
            families = parse_prometheus(client.metrics_prometheus())
            assert "repro_flight_sampler_lag_seconds" in families
            assert "repro_flight_samples_total" in families
            samples = next(
                iter(families["repro_flight_samples_total"].values())
            )
            assert samples >= 1
            alert_children = families["repro_alert_active"]
            assert any('slo="slide_latency"' in k for k in alert_children)
            assert all(v == 0.0 for v in alert_children.values())
            burn_children = families["repro_slo_burn_rate"]
            assert any('window="fast"' in k for k in burn_children)


class TestProfileEndpoint:
    def test_profile_window_attributes_ingest_thread(self):
        with serve(slide=8) as runner:
            client = ServiceClient("127.0.0.1", runner.port, timeout=30.0)
            # One slide guarantees the named ingest executor thread exists
            # (and then parks in its worker loop, observable by sampling).
            client.ingest(random_stream(50, 10, seed=9))
            status, body, content_type = client.http_get_raw(
                "/debug/profile?seconds=0.5"
            )
            assert status == 200
            assert content_type.startswith("text/plain")
            assert body.strip()
            lines = body.strip().splitlines()
            assert all(" " in line for line in lines)  # "stack count"
            assert any(
                line.startswith("ingest;") for line in lines
            ), body[:2000]

    def test_bad_seconds_rejected(self):
        with serve() as runner:
            client = ServiceClient("127.0.0.1", runner.port)
            client.wait_healthy()
            status, _, _ = client.http_get_raw("/debug/profile?seconds=0")
            assert status == 400
            status, _, _ = client.http_get_raw("/debug/profile?seconds=abc")
            assert status == 400

    def test_continuous_profiler_config(self):
        """config.profile=True runs the sampler for the server's life."""
        with serve(profile=True, profile_hz=200.0) as runner:
            client = ServiceClient("127.0.0.1", runner.port)
            client.wait_healthy()
            assert wait_until(
                lambda: client.http_get("/metrics")[1]["telemetry"][
                    "profiler"
                ]["samples"]
                > 0
            )
            _, metrics = client.http_get("/metrics")
            profiler = metrics["telemetry"]["profiler"]
            assert profiler["running"] is True
            assert profiler["hz"] == 200.0


class TestCLI:
    def test_profile_cli_writes_collapsed_stacks(self, tmp_path, capsys):
        output = tmp_path / "profile.txt"
        with serve(slide=8) as runner:
            client = ServiceClient("127.0.0.1", runner.port)
            client.ingest(random_stream(50, 10, seed=10))
            rc = cli_main(
                [
                    "profile",
                    "--port",
                    str(runner.port),
                    "--seconds",
                    "0.4",
                    "-o",
                    str(output),
                ]
            )
        assert rc == 0
        text = output.read_text()
        assert text.strip()
        assert "ingest;" in text
        assert "collapsed stacks" in capsys.readouterr().err

    def test_top_once_renders_frame(self, capsys):
        with serve() as runner:
            client = ServiceClient("127.0.0.1", runner.port)
            client.ingest(random_stream(60, 10, seed=11))
            wait_until(
                lambda: client.http_get("/metrics/history")[1]
                .get("recorder", {})
                .get("samples_taken", 0)
                >= 2
            )
            rc = cli_main(["top", "--port", str(runner.port), "--once"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro-stream top" in out
        assert "ingest rate" in out
        assert "\x1b" not in out  # --once never clears the screen

    def test_trace_commands_survive_missing_log(self, tmp_path, capsys):
        """Satellite regression: friendly exit 0, no stack trace."""
        missing = tmp_path / "never-written.jsonl"
        for command in ("summarize", "tail"):
            rc = cli_main(["trace", command, str(missing)])
            assert rc == 0
            out = capsys.readouterr().out
            assert "no trace log" in out

    def test_trace_commands_survive_empty_log(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        for command in ("summarize", "tail"):
            rc = cli_main(["trace", command, str(empty)])
            assert rc == 0
            assert "no trace events" in capsys.readouterr().out

    def test_serve_parser_accepts_observability_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve",
                "--no-flight-recorder",
                "--sample-interval",
                "0.2",
                "--alert-log",
                "alerts.jsonl",
                "--slo",
                "a=series,threshold=1",
                "--no-slo-defaults",
                "--profile",
                "--profile-hz",
                "50",
            ]
        )
        assert args.flight_recorder is False
        assert args.sample_interval == 0.2
        assert args.alert_log == "alerts.jsonl"
        assert args.slo == ["a=series,threshold=1"]
        assert args.slo_defaults is False
        assert args.profile is True
        assert args.profile_hz == 50.0

    def test_bad_slo_spec_fails_at_config_time(self):
        with pytest.raises(ValueError, match="threshold"):
            ServiceConfig(slo_specs=("broken=series",))
