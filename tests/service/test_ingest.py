"""Unit tests for the single-writer coalescing ingest loop."""

import asyncio

import pytest

from repro.core.greedy import WindowedGreedy
from repro.core.multi import MultiQueryEngine
from repro.core.sic import SparseInfluentialCheckpoints
from repro.persistence.engine import RecoverableEngine
from repro.service.cache import AnswerCache
from repro.service.ingest import IngestLoop
from tests.conftest import random_stream


def make_engine(multi: bool = True) -> RecoverableEngine:
    if multi:
        factory = lambda: (
            MultiQueryEngine()
            .add("greedy", WindowedGreedy(window_size=20, k=2))
            .add("sic", SparseInfluentialCheckpoints(window_size=20, k=2, beta=0.3))
        )
    else:
        factory = lambda: WindowedGreedy(window_size=20, k=2)
    return RecoverableEngine.open(None, factory)


def run(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_count_flush(self):
        async def body():
            engine = make_engine()
            cache = AnswerCache()
            loop = IngestLoop(engine, cache, slide=4, flush_interval=60.0)
            loop.start()
            for action in random_stream(8, 5, seed=1):
                await loop.submit(action)
            await loop.sync()
            await loop.stop()
            return loop, cache, engine

        loop, cache, engine = run(body())
        assert loop.stats.slides == 2
        assert loop.stats.count_flushes == 2
        assert loop.stats.accepted == 8
        assert engine.slides_processed == 2
        assert cache.published == 2
        assert cache.board.time == 8
        assert set(cache.board.answers) == {"greedy", "sic"}

    def test_interval_flush_of_partial_slide(self):
        async def body():
            engine = make_engine()
            cache = AnswerCache()
            loop = IngestLoop(engine, cache, slide=100, flush_interval=0.05)
            loop.start()
            for action in random_stream(3, 5, seed=2):
                await loop.submit(action)
            for _ in range(100):
                await asyncio.sleep(0.02)
                if cache.published:
                    break
            await loop.stop()
            return loop, cache

        loop, cache = run(body())
        assert cache.published == 1
        assert loop.stats.interval_flushes == 1
        assert cache.board.time == 3

    def test_sync_forces_partial_flush_and_waits(self):
        async def body():
            engine = make_engine()
            cache = AnswerCache()
            loop = IngestLoop(engine, cache, slide=100, flush_interval=60.0)
            loop.start()
            for action in random_stream(5, 5, seed=3):
                await loop.submit(action)
            assert cache.published == 0
            await loop.sync()
            published_after_sync = cache.published
            await loop.stop()
            return loop, published_after_sync

        loop, published_after_sync = run(body())
        assert published_after_sync == 1
        assert loop.stats.forced_flushes == 1

    def test_stop_flushes_pending(self):
        async def body():
            engine = make_engine()
            cache = AnswerCache()
            loop = IngestLoop(engine, cache, slide=100, flush_interval=60.0)
            loop.start()
            for action in random_stream(7, 5, seed=4):
                await loop.submit(action)
            await loop.stop()
            return engine, cache

        engine, cache = run(body())
        assert engine.now == 7
        assert cache.published == 1


class TestStaleDrop:
    def test_replayed_actions_are_dropped_idempotently(self):
        actions = random_stream(20, 6, seed=5)

        async def body():
            engine = make_engine()
            cache = AnswerCache()
            loop = IngestLoop(engine, cache, slide=5, flush_interval=60.0)
            loop.start()
            for action in actions[:10]:
                await loop.submit(action)
            await loop.sync()
            # At-least-once redelivery: the full stream again.
            for action in actions:
                await loop.submit(action)
            await loop.sync()
            await loop.stop()
            return loop, engine

        loop, engine = run(body())
        assert loop.stats.dropped_stale == 10
        assert loop.stats.accepted == 20
        assert engine.now == 20
        # Equivalent single-shot run.
        reference = make_engine()
        for start in range(0, 20, 5):
            reference.process(actions[start : start + 5])
        assert engine.algorithm.query_all() == reference.algorithm.query_all()

    def test_floor_covers_pending_unflushed_actions(self):
        actions = random_stream(3, 5, seed=6)

        async def body():
            engine = make_engine()
            cache = AnswerCache()
            loop = IngestLoop(engine, cache, slide=100, flush_interval=60.0)
            loop.start()
            for action in actions:
                await loop.submit(action)
            for action in actions:  # duplicates while still pending
                await loop.submit(action)
            await loop.sync()
            await loop.stop()
            return loop

        loop = run(body())
        assert loop.stats.accepted == 3
        assert loop.stats.dropped_stale == 3


class TestBackpressure:
    def test_submit_blocks_when_queue_full(self):
        async def body():
            engine = make_engine()
            cache = AnswerCache()
            loop = IngestLoop(
                engine, cache, slide=4, flush_interval=60.0, queue_capacity=2
            )
            actions = random_stream(3, 5, seed=7)
            # Writer not started: the queue can only drain via capacity.
            await loop.submit(actions[0])
            await loop.submit(actions[1])
            with pytest.raises(TimeoutError):
                await asyncio.wait_for(loop.submit(actions[2]), timeout=0.05)
            assert loop.queue_depth == 2
            # Once the writer runs, the blocked producer proceeds.
            loop.start()
            await loop.submit(actions[2])
            await loop.sync()
            await loop.stop()
            return loop

        loop = run(body())
        assert loop.stats.accepted == 3


class TestWriterFailure:
    def test_sync_in_flight_when_flush_fails_wakes_with_error(self):
        """A sync whose own flush fails must re-raise, not hang."""

        async def body():
            engine = make_engine()
            cache = AnswerCache()

            def boom(batch):
                raise RuntimeError("disk on fire")

            engine.process = boom
            # slide large: the failure happens inside the sync's forced
            # flush, after the _Sync item was already dequeued.
            loop = IngestLoop(engine, cache, slide=100, flush_interval=60.0)
            loop.start()
            await loop.submit(random_stream(1, 5, seed=8)[0])
            with pytest.raises(RuntimeError, match="disk on fire"):
                await asyncio.wait_for(loop.sync(), timeout=5)
            with pytest.raises(RuntimeError, match="ingest loop failed"):
                await loop.request_flush()
            await loop.stop()

        run(body())

    def test_engine_error_fails_fast_not_hangs(self):
        async def body():
            engine = make_engine()
            cache = AnswerCache()

            def boom(batch):
                raise RuntimeError("disk on fire")

            engine.process = boom
            loop = IngestLoop(engine, cache, slide=1, flush_interval=60.0)
            loop.start()
            await loop.submit(random_stream(1, 5, seed=8)[0])
            with pytest.raises(RuntimeError, match="disk on fire"):
                await loop.sync()
            assert loop.error is not None
            with pytest.raises(RuntimeError, match="ingest loop failed"):
                await loop.submit(random_stream(2, 5, seed=8)[1])
            await loop.stop()  # joins cleanly even after a writer failure
            return loop

        run(body())


class TestValidation:
    def test_bad_knobs(self):
        engine = make_engine()
        cache = AnswerCache()
        with pytest.raises(ValueError, match="slide"):
            IngestLoop(engine, cache, slide=0)
        with pytest.raises(ValueError, match="flush_interval"):
            IngestLoop(engine, cache, flush_interval=0)

    def test_single_algorithm_publishes_as_main(self):
        async def body():
            engine = make_engine(multi=False)
            cache = AnswerCache()
            loop = IngestLoop(engine, cache, slide=2, flush_interval=60.0)
            loop.start()
            for action in random_stream(4, 5, seed=9):
                await loop.submit(action)
            await loop.sync()
            await loop.stop()
            return cache

        cache = run(body())
        assert set(cache.board.answers) == {"main"}
        assert cache.published == 2
