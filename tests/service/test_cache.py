"""Unit tests for the published-answer cache and the service config."""

import pytest

from repro.core.base import SIMResult
from repro.service.cache import AnswerBoard, AnswerCache, PublishedAnswer
from repro.service.config import ServiceConfig


def board(slide: int, value: float = 1.0, names=("q",)) -> AnswerBoard:
    return AnswerBoard.from_results(
        {
            name: SIMResult(time=slide * 10, seeds=frozenset({3, 1}), value=value)
            for name in names
        },
        slide=slide,
        time=slide * 10,
        published_at=100.0 + slide,
    )


class TestPublishedAnswer:
    def test_from_result_sorts_seeds(self):
        answer = PublishedAnswer.from_result(
            "q", SIMResult(time=5, seeds=frozenset({9, 2, 4}), value=3.0),
            slide=2, published_at=1.0,
        )
        assert answer.seeds == (2, 4, 9)
        assert answer.to_json() == {
            "query": "q",
            "time": 5,
            "seeds": [2, 4, 9],
            "value": 3.0,
            "slide": 2,
            "published_at": 1.0,
        }

    def test_frozen(self):
        answer = PublishedAnswer.from_result(
            "q", SIMResult(time=5, seeds=frozenset(), value=0.0),
            slide=1, published_at=1.0,
        )
        with pytest.raises(AttributeError):
            answer.value = 9.0


class TestAnswerCache:
    def test_empty_cache(self):
        cache = AnswerCache()
        assert cache.board is None
        assert cache.published == 0
        with pytest.raises(LookupError, match="no answers published"):
            cache.answer("q")
        assert cache.history_for("q") == []

    def test_publish_swaps_current_board(self):
        cache = AnswerCache()
        cache.publish(board(1, value=1.0))
        cache.publish(board(2, value=2.0))
        assert cache.published == 2
        assert cache.board.slide == 2
        assert cache.answer("q").value == 2.0

    def test_unknown_query_names_offender(self):
        cache = AnswerCache()
        cache.publish(board(1))
        with pytest.raises(LookupError, match="'nope'"):
            cache.answer("nope")

    def test_history_is_bounded_and_ordered(self):
        cache = AnswerCache(history=3)
        for slide in range(1, 6):
            cache.publish(board(slide))
        answers = cache.history_for("q")
        assert [a.slide for a in answers] == [3, 4, 5]

    def test_history_limit(self):
        cache = AnswerCache(history=10)
        for slide in range(1, 6):
            cache.publish(board(slide))
        assert [a.slide for a in cache.history_for("q", limit=2)] == [4, 5]
        assert [a.slide for a in cache.history_for("q", limit=99)] == [
            1, 2, 3, 4, 5,
        ]

    def test_history_skips_boards_missing_the_query(self):
        cache = AnswerCache()
        cache.publish(board(1, names=("a",)))
        cache.publish(board(2, names=("a", "b")))
        assert [a.slide for a in cache.history_for("b")] == [2]

    def test_history_validation(self):
        with pytest.raises(ValueError, match="history"):
            AnswerCache(history=0)


class TestServiceConfig:
    def test_defaults_valid(self):
        config = ServiceConfig()
        assert config.slide == 32
        assert config.port == 7077

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"slide": 0},
            {"flush_interval": 0.0},
            {"queue_capacity": 0},
            {"ack_every": 0},
            {"history": 0},
            {"port": -1},
            {"port": 70000},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)
