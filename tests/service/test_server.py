"""Integration tests for the serving plane.

Covers the PR's acceptance criteria:

* **Round-trip equivalence** — actions ingested over the socket yield the
  same per-checkpoint (per-slide) answers as offline processing of the
  identical stream, for IC and SIC at L ∈ {1, 5};
* **Filtered queries under coalescing** — TopicAwareSIM/LocationAwareSIM
  running inside a MultiQueryEngine behind the ingest loop answer exactly
  like a per-action offline feed (sub-stream re-timing survives slide
  coalescing);
* **Crash-recoverable serving** — ``kill -9`` of a ``--state-dir`` server
  then restart + client replay converges to the uninterrupted answers;
* **Graceful SIGTERM** — the CI smoke: ingest over the socket, answer
  top-k, exit 0 on SIGTERM with a sealed final snapshot.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.core.greedy import WindowedGreedy
from repro.core.ic import InfluentialCheckpoints
from repro.core.multi import MultiQueryEngine
from repro.core.sic import SparseInfluentialCheckpoints
from repro.core.stream import batched
from repro.influence.filters import Region
from repro.influence.queries import LocationAwareSIM, TopicAwareSIM
from repro.persistence.engine import RecoverableEngine
from repro.service.client import ServiceClient
from repro.service.config import ServiceConfig
from repro.service.runner import ServiceRunner
from tests.conftest import parse_prometheus, random_stream


def serve(engine_factory, **config_kwargs) -> ServiceRunner:
    """An in-process server on an OS-picked port."""
    config_kwargs.setdefault("port", 0)
    config_kwargs.setdefault("flush_interval", 60.0)  # deterministic slides
    engine = RecoverableEngine.open(None, engine_factory)
    return ServiceRunner(engine, ServiceConfig(**config_kwargs))


class TestRoundTripEquivalence:
    @pytest.mark.parametrize("slide", [1, 5])
    def test_socket_ingest_matches_offline_per_slide(self, slide):
        """Socket answers ≡ offline answers at every slide (IC + SIC)."""
        actions = random_stream(150, 15, seed=11)
        makers = {
            "ic": lambda: InfluentialCheckpoints(window_size=40, k=3, beta=0.3),
            "sic": lambda: SparseInfluentialCheckpoints(
                window_size=40, k=3, beta=0.3
            ),
        }

        offline = {}
        for name, make in makers.items():
            framework = make()
            answers = []
            for batch in batched(actions, slide):
                framework.process(batch)
                answers.append(framework.query())
            offline[name] = answers

        def factory():
            engine = MultiQueryEngine()
            for name, make in makers.items():
                engine.add(name, make())
            return engine

        with serve(factory, slide=slide, history=400) as runner:
            client = ServiceClient("127.0.0.1", runner.port)
            summary = client.ingest(actions)
            assert summary["accepted"] == len(actions)
            assert summary["slide"] == len(offline["ic"])
            for name, answers in offline.items():
                history = client.history(name)
                assert len(history) == len(answers)
                for served, expected in zip(history, answers):
                    assert served["time"] == expected.time
                    assert served["value"] == expected.value
                    assert served["seeds"] == sorted(expected.seeds)

    def test_interleaved_connections_continue_one_stream(self):
        """Many short-lived ingest connections feed the same board."""
        actions = random_stream(60, 10, seed=12)
        reference = WindowedGreedy(window_size=20, k=2)
        for batch in batched(actions, 6):
            reference.process(batch)

        with serve(
            lambda: WindowedGreedy(window_size=20, k=2), slide=6
        ) as runner:
            client = ServiceClient("127.0.0.1", runner.port)
            for start in range(0, 60, 20):
                client.ingest(actions[start : start + 20])
            answer = client.topk("main")
        expected = reference.query()
        assert answer["time"] == expected.time
        assert answer["value"] == expected.value
        assert answer["seeds"] == sorted(expected.seeds)


class TestFilteredQueriesUnderIngestLoop:
    @pytest.mark.parametrize("slide", [3, 7])
    def test_topic_and_location_survive_slide_coalescing(self, slide):
        """Sub-stream re-timing is preserved through coalesced slides."""
        actions = random_stream(140, 12, seed=13)
        topics_of = {
            a.time: {"deals" if a.user % 3 else "support"} for a in actions
        }
        position_of = {a.time: (a.user % 7, a.user % 5) for a in actions}
        region = Region(0, 0, 3, 3)

        def make_queries():
            return {
                "deals": TopicAwareSIM(
                    {"deals"}, topics_of, window_size=30, k=2
                ),
                "nearby": LocationAwareSIM(
                    region, position_of, window_size=30, k=2
                ),
                "global": SparseInfluentialCheckpoints(
                    window_size=30, k=2, beta=0.3
                ),
            }

        offline = make_queries()
        for action in actions:  # per-action feed: the re-timing reference
            offline["deals"].observe(action)
            offline["nearby"].observe(action)
            offline["global"].process([action])

        def factory():
            engine = MultiQueryEngine()
            for name, query in make_queries().items():
                engine.add(name, query)
            return engine

        with serve(factory, slide=slide) as runner:
            client = ServiceClient("127.0.0.1", runner.port)
            client.ingest(actions)
            for name in ("deals", "nearby"):
                served = client.topk(name)
                expected = offline[name].query()
                assert served["time"] == expected.time
                assert served["value"] == expected.value
                assert served["seeds"] == sorted(expected.seeds)
            # Metrics carry the sub-stream selectivity.
            _, metrics = client.http_get("/metrics")
            deals = metrics["queries"]["deals"]
            assert deals["kind"] == "filtered"
            assert deals["observed"] == len(actions)
            assert deals["matched"] == offline["deals"].matched


class TestFailureShutdown:
    def test_failed_writer_does_not_seal_contaminated_state(self, tmp_path):
        """stop() after a writer death skips the final snapshot."""
        import asyncio

        from repro.service.server import ReproService

        state = tmp_path / "state"
        actions = random_stream(12, 5, seed=18)
        engine = RecoverableEngine.open(
            state,
            lambda: WindowedGreedy(window_size=10, k=2),
            snapshot_every=0,  # only a close-time seal could write one
        )

        async def body():
            service = ReproService(
                engine, ServiceConfig(port=0, slide=3, flush_interval=60.0)
            )
            await service.start()
            for action in actions[:6]:
                await service.ingest.submit(action)
            await service.ingest.sync()  # two clean WAL-logged slides

            def boom(batch):
                raise RuntimeError("mid-slide failure")

            engine.algorithm.process = boom
            for action in actions[6:9]:
                await service.ingest.submit(action)
            with pytest.raises(RuntimeError, match="mid-slide failure"):
                await service.ingest.sync()
            await service.stop()  # must not seal the poisoned state

        asyncio.run(body())
        assert list((state / "snapshots").glob("*.json")) == []
        # Recovery replays the WAL cleanly (slide 3 was logged ahead).
        reopened = RecoverableEngine.open(
            state, lambda: WindowedGreedy(window_size=10, k=2)
        )
        try:
            assert reopened.replayed_slides == 3
            assert reopened.now == 9
        finally:
            reopened.close(snapshot=False)


class TestWarmStart:
    def test_restarted_server_answers_before_any_new_slide(self, tmp_path):
        """Recovered state warms the answer cache: no 503 after restart."""
        actions = random_stream(60, 10, seed=17)
        state = tmp_path / "state"

        def factory():
            return MultiQueryEngine().add(
                "board", SparseInfluentialCheckpoints(window_size=20, k=2, beta=0.3)
            )

        first = RecoverableEngine.open(state, factory)
        for batch in batched(actions, 6):
            first.process(batch)
        expected = first.algorithm.query("board")
        first.close()

        engine = RecoverableEngine.open(state, factory)
        with ServiceRunner(
            engine, ServiceConfig(port=0, flush_interval=60.0, slide=6)
        ) as runner:
            client = ServiceClient("127.0.0.1", runner.port)
            answer = client.topk("board")  # no ingest has happened yet
            assert answer["time"] == expected.time
            assert answer["value"] == expected.value
            assert answer["seeds"] == sorted(expected.seeds)
            assert answer["slide"] == 10
            # Full-stream replay is dropped entirely and stays answerable.
            summary = client.ingest(actions)
            assert summary["dropped_stale"] == 60
            assert client.topk("board")["time"] == expected.time


class TestHttpReadPath:
    def test_endpoints(self):
        actions = random_stream(40, 8, seed=14)
        with serve(
            lambda: (
                MultiQueryEngine()
                .add("a", WindowedGreedy(window_size=20, k=2))
                .add("b", WindowedGreedy(window_size=20, k=1))
            ),
            slide=4,
        ) as runner:
            client = ServiceClient("127.0.0.1", runner.port)

            health = client.wait_healthy()
            assert health["queries"] == ["a", "b"]
            assert health["durable"] is False

            status, payload = client.http_get("/queries")
            assert (status, payload) == (200, {"queries": ["a", "b"]})

            # Nothing published yet.
            status, payload = client.http_get("/queries/a/topk")
            assert status == 503

            client.ingest(actions)
            status, payload = client.http_get("/queries/a/topk")
            assert status == 200
            assert payload["time"] == 40

            status, payload = client.http_get("/queries/a/history?limit=3")
            assert status == 200
            assert len(payload["answers"]) == 3

            assert client.http_get("/queries/zzz/topk")[0] == 404
            assert client.http_get("/queries/zzz/history")[0] == 404
            assert client.http_get("/nope")[0] == 404
            assert client.http_get("/queries/a/history?limit=x")[0] == 400

            status, metrics = client.http_get("/metrics")
            assert status == 200
            assert metrics["ingest"]["accepted"] == 40
            assert metrics["ingest"]["slides"] == 10
            assert metrics["engine"]["slides"] == 10
            assert metrics["queries"]["a"]["answer_lag_slides"] == 0
            assert metrics["queries"]["a"]["answer_age_seconds"] >= 0

    def test_rejected_lines_are_reported_not_fatal(self):
        import socket as socket_module

        with serve(
            lambda: WindowedGreedy(window_size=10, k=1), slide=2
        ) as runner:
            with socket_module.create_connection(
                ("127.0.0.1", runner.port), timeout=10
            ) as sock:
                sock.sendall(b'{"nonsense": true}\n')
                sock.sendall(b"[1]\n")
                sock.sendall(b'{"time":1,"user":0}\n{"time":2,"user":1,"parent":1}\n')
                sock.sendall(b'{"cmd":"sync"}\n')
                reader = sock.makefile("rb")
                lines = [json.loads(reader.readline()) for _ in range(3)]
            errors = [l for l in lines if "error" in l]
            synced = [l for l in lines if l.get("synced")]
            assert len(errors) == 2
            assert len(synced) == 1
            assert synced[0]["accepted"] == 2
            assert synced[0]["rejected"] == 2
            client = ServiceClient("127.0.0.1", runner.port)
            assert client.topk("main")["time"] == 2


class TestHttpErrorPaths:
    """Negative-path contracts of the read plane (one server, many probes)."""

    def test_unknown_query_bad_limit_and_bad_format(self):
        with serve(
            lambda: WindowedGreedy(window_size=10, k=1), slide=2
        ) as runner:
            client = ServiceClient("127.0.0.1", runner.port)
            client.wait_healthy()

            status, payload = client.http_get("/queries/ghost/topk")
            assert status == 404
            assert "ghost" in payload["error"]
            assert payload["queries"] == ["main"]  # helpful: what exists

            status, payload = client.http_get("/queries/ghost/history")
            assert status == 404
            assert payload["queries"] == ["main"]

            status, payload = client.http_get(
                "/queries/main/history?limit=five"
            )
            assert status == 400
            assert "five" in payload["error"]

            status, payload = client.http_get("/metrics?format=xml")
            assert status == 400
            assert payload["formats"] == ["json", "prometheus"]
            assert "prometheus" in payload["hint"]

            # Content negotiation errors must not poison later requests.
            assert client.http_get("/metrics")[0] == 200


class TestTelemetryPlane:
    def test_prometheus_exposition_covers_the_pipeline(self):
        actions = random_stream(40, 8, seed=14)
        with serve(
            lambda: SparseInfluentialCheckpoints(window_size=20, k=2, beta=0.3),
            slide=4,
        ) as runner:
            client = ServiceClient("127.0.0.1", runner.port)
            client.ingest(actions)

            status, body, content_type = client.http_get_raw(
                "/metrics?format=prometheus"
            )
            assert status == 200
            assert content_type.startswith("text/plain")
            assert "version=0.0.4" in content_type
            samples = parse_prometheus(body)

            assert samples["repro_ingest_accepted_total"][""] == 40
            assert samples["repro_ingest_slides_total"][""] == 10
            assert samples["repro_ingest_queue_depth"][""] == 0
            assert samples["repro_ingest_queue_capacity"][""] > 0
            assert samples["repro_slide_seconds_count"][""] == 10
            assert samples["repro_ingest_queue_wait_seconds_count"][""] == 40
            stage_counts = samples["repro_slide_stage_seconds_count"]
            for stage in ("queue_wait", "coalesce", "forest_index", "oracle"):
                assert stage_counts[f'{{stage="{stage}"}}'] == 10, stage
            assert samples["repro_answer_age_seconds"]['{query="main"}'] >= 0

            # The path alias renders the identical families.
            status, alias_body, _ = client.http_get_raw("/metrics/prometheus")
            assert status == 200
            assert set(parse_prometheus(alias_body)) == set(samples)

    def test_json_metrics_has_histogram_summaries_and_rates(self):
        actions = random_stream(30, 6, seed=3)
        with serve(
            lambda: WindowedGreedy(window_size=15, k=2), slide=3
        ) as runner:
            client = ServiceClient("127.0.0.1", runner.port)
            client.ingest(actions)
            status, metrics = client.http_get("/metrics")
            assert status == 200
            assert metrics["ingest"]["lifetime_rate_actions_per_sec"] > 0
            assert "ingest_rate_actions_per_sec" in metrics["ingest"]
            telemetry = metrics["telemetry"]
            slide_summary = telemetry["metrics"]["repro_slide_seconds"]
            assert slide_summary["count"] == 10
            assert {"p50", "p95", "p99", "max"} <= set(slide_summary)
            stage_summaries = telemetry["metrics"]["repro_slide_stage_seconds"]
            assert stage_summaries["stage=oracle"]["count"] == 10
            assert telemetry["traces"]["traced_slides"] == 10
            assert metrics["queries"]["main"]["answer_age_seconds"] >= 0

    def test_slow_slide_trace_lands_in_jsonl_and_summarizes(self, tmp_path):
        """slow_slide_ms=0 forces every slide into --trace-log; the trace
        covers the whole durable pipeline and `trace summarize` renders it."""
        from repro.cli import main as cli_main

        trace_path = tmp_path / "trace.jsonl"
        engine = RecoverableEngine.open(
            str(tmp_path / "state"),
            lambda: SparseInfluentialCheckpoints(
                window_size=20, k=2, beta=0.3
            ),
            snapshot_every=5,
        )
        runner = ServiceRunner(
            engine,
            ServiceConfig(
                port=0,
                flush_interval=60.0,
                slide=4,
                trace_log=str(trace_path),
                slow_slide_ms=0.0,
            ),
        )
        runner.start()
        try:
            client = ServiceClient("127.0.0.1", runner.port)
            client.ingest(random_stream(40, 8, seed=14))
            status, metrics = client.http_get("/metrics")
            assert metrics["telemetry"]["traces"]["slow_slides"] == 10
            assert metrics["telemetry"]["traces"]["trace_log_events"] == 10
        finally:
            runner.stop()

        events = [
            json.loads(line)
            for line in trace_path.read_text().strip().splitlines()
        ]
        assert len(events) == 10
        required = {
            "queue_wait", "coalesce", "forest_index", "oracle",
            "wal_fsync", "publish",
        }
        for event in events:
            assert event["event"] == "slow_slide"
            assert event["threshold_ms"] == 0.0
            assert required <= set(event["stages"]), event["stages"]
            for doc in event["stages"].values():
                assert doc["seconds"] >= 0
        # Cadence snapshots (every 5 slides) appear as a snapshot stage.
        assert any("snapshot" in event["stages"] for event in events)

        import io
        from contextlib import redirect_stdout

        for command in ("tail", "summarize"):
            out = io.StringIO()
            with redirect_stdout(out):
                assert cli_main(["trace", command, str(trace_path)]) == 0
            rendered = out.getvalue()
            assert "oracle" in rendered
        assert "10 traced slides" in rendered
        assert "share" in rendered  # the breakdown table header


def _spawn_server(args, cwd):
    """Start ``repro.cli serve`` and return (process, host, port)."""
    env = dict(os.environ)
    src = str(pathlib.Path(cwd) / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        cwd=cwd,
        env=env,
    )
    line = process.stdout.readline().decode()
    assert line.startswith("listening on "), line
    address = line.split()[2]
    host, _, port = address.partition(":")
    return process, host, int(port)


REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent


class TestServeSubprocess:
    def test_smoke_ingest_topk_sigterm_seal(self, tmp_path):
        """The CI smoke: 2k actions over the socket, top-k, SIGTERM seal."""
        state_dir = tmp_path / "state"
        process, host, port = _spawn_server(
            [
                "--algorithm", "sic", "--window", "500", "--slide", "25",
                "-k", "5", "--beta", "0.3", "--state-dir", str(state_dir),
                "--snapshot-every", "0", "--flush-interval", "60",
            ],
            cwd=REPO_ROOT,
        )
        try:
            client = ServiceClient(host, port)
            actions = random_stream(2000, 200, seed=15)
            summary = client.ingest(actions)
            assert summary["accepted"] == 2000
            assert summary["slide"] == 80
            answer = client.topk("main")
            assert answer["time"] == 2000
            assert len(answer["seeds"]) == 5
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        # The SIGTERM seal: a snapshot at the final slide, zero WAL tail.
        engine = RecoverableEngine.open(state_dir, factory=None)
        try:
            assert engine.slides_processed == 80
            assert engine.replayed_slides == 0
            assert engine.now == 2000
        finally:
            engine.close(snapshot=False)

    def test_sigkill_restart_replay_converges(self, tmp_path):
        """kill -9 + restart + client replay ≡ the uninterrupted run."""
        state_dir = tmp_path / "state"
        actions = random_stream(900, 40, seed=16)
        server_args = [
            "--algorithm", "ic", "--window", "120", "--slide", "5",
            "-k", "3", "--beta", "0.3", "--state-dir", str(state_dir),
            "--snapshot-every", "7", "--flush-interval", "60",
        ]

        # Uninterrupted reference (same slide semantics: L=5 batches).
        reference = InfluentialCheckpoints(window_size=120, k=3, beta=0.3)
        for batch in batched(actions, 5):
            reference.process(batch)
        expected = reference.query()

        process, host, port = _spawn_server(server_args, cwd=REPO_ROOT)
        try:
            client = ServiceClient(host, port)
            summary = client.ingest(actions[:600])
            assert summary["slide"] == 120
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

        process, host, port = _spawn_server(server_args, cwd=REPO_ROOT)
        try:
            client = ServiceClient(host, port)
            # At-least-once redelivery: replay the whole stream.
            summary = client.ingest(actions)
            assert summary["slide"] == 180
            assert summary["dropped_stale"] == 600
            assert summary["time"] == 900
            answer = client.topk("main")
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

        assert answer["time"] == expected.time
        assert answer["value"] == expected.value
        assert answer["seeds"] == sorted(expected.seeds)


class TestBatchedWire:
    """The batched ingest wire format: one JSON array of actions per line."""

    def test_send_batch_matches_unbatched_ingest(self):
        """Batched and line-per-action clients produce identical boards."""
        actions = random_stream(150, 15, seed=41)
        offline = SparseInfluentialCheckpoints(window_size=40, k=3, beta=0.3)
        answers = []
        for batch in batched(actions, 5):
            offline.process(batch)
            answers.append(offline.query())

        make = lambda: SparseInfluentialCheckpoints(
            window_size=40, k=3, beta=0.3
        )
        with serve(make, slide=5, history=400) as runner:
            client = ServiceClient("127.0.0.1", runner.port)
            summary = client.send_batch(actions, batch=32)
            assert summary["accepted"] == len(actions)
            assert summary["slide"] == len(answers)
            history = client.history("main")
            assert len(history) == len(answers)
            for served, expected in zip(history, answers):
                assert served["time"] == expected.time
                assert served["value"] == expected.value
                assert served["seeds"] == sorted(expected.seeds)

    def test_acks_count_actions_not_lines(self):
        """A 25-action line crosses ack_every=10: the ack reports 25
        actions received, not 1 line."""
        import socket as socket_module

        from repro.service.client import encode_action

        actions = random_stream(25, 6, seed=42)
        with serve(
            lambda: WindowedGreedy(window_size=20, k=2),
            slide=5,
            ack_every=10,
        ) as runner:
            with socket_module.create_connection(
                ("127.0.0.1", runner.port), timeout=10
            ) as sock:
                payload = json.dumps(
                    [encode_action(a) for a in actions],
                    separators=(",", ":"),
                )
                sock.sendall(payload.encode("utf-8") + b"\n")
                sock.sendall(b'{"cmd":"sync"}\n')
                reader = sock.makefile("rb")
                lines = [json.loads(reader.readline()) for _ in range(2)]
            acks = [l for l in lines if "acked" in l]
            assert [a["acked"] for a in acks] == [25]
            synced = [l for l in lines if l.get("synced")]
            assert synced and synced[0]["accepted"] == 25

    def test_batch_rejection_is_atomic(self):
        """A batch with one bad action is refused whole: no prefix lands."""
        import socket as socket_module

        with serve(
            lambda: WindowedGreedy(window_size=20, k=2), slide=2
        ) as runner:
            with socket_module.create_connection(
                ("127.0.0.1", runner.port), timeout=10
            ) as sock:
                # Third element is malformed: not a triple, not an object.
                sock.sendall(b'[[1,0,-1],[2,1,1],"bogus"]\n')
                sock.sendall(b'[[1,0,-1],[2,1,1]]\n')
                sock.sendall(b'{"cmd":"sync"}\n')
                reader = sock.makefile("rb")
                lines = [json.loads(reader.readline()) for _ in range(2)]
            errors = [l for l in lines if "error" in l]
            synced = [l for l in lines if l.get("synced")]
            assert len(errors) == 1
            assert synced[0]["accepted"] == 2  # only the clean batch
            assert synced[0]["rejected"] == 1  # one rejected *line*
            client = ServiceClient("127.0.0.1", runner.port)
            assert client.topk("main")["time"] == 2

    def test_send_batch_surfaces_server_errors(self):
        actions = random_stream(10, 4, seed=43)
        stale = list(actions) + [actions[0]]  # out of order at the tail
        with serve(
            lambda: WindowedGreedy(window_size=20, k=2), slide=100
        ) as runner:
            client = ServiceClient("127.0.0.1", runner.port)
            summary = client.send_batch(stale, batch=4)
            # The stale tail batch is dropped, the clean prefix lands.
            assert summary["accepted"] == 10
