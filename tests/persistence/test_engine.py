"""RecoverableEngine mechanics: cadence, clean shutdown, failure hygiene."""

import pytest

from repro.core.actions import Action
from repro.core.ic import InfluentialCheckpoints
from repro.core.stream import batched
from repro.persistence.engine import RecoverableEngine, StateStore
from repro.persistence.serialize import PersistenceError
from tests.conftest import random_stream


def make_ic():
    return InfluentialCheckpoints(window_size=30, k=3, beta=0.25)


def slides(n_actions=60, slide=4, seed=1):
    return list(batched(random_stream(n_actions, 8, seed=seed), slide))


class TestPassthrough:
    def test_no_state_dir_is_a_passthrough(self):
        engine = RecoverableEngine.open(None, make_ic)
        for batch in slides():
            engine.process(batch)
        assert engine.store is None
        assert engine.replayed_slides == 0
        reference = make_ic()
        for batch in slides():
            reference.process(batch)
        assert engine.query() == reference.query()

    def test_passthrough_requires_factory(self):
        with pytest.raises(PersistenceError):
            RecoverableEngine.open(None, None)

    def test_passthrough_cannot_snapshot(self):
        engine = RecoverableEngine.open(None, make_ic)
        with pytest.raises(PersistenceError):
            engine.snapshot()


class TestDurability:
    def test_snapshot_cadence(self, tmp_path):
        engine = RecoverableEngine.open(
            tmp_path, make_ic, snapshot_every=5, fsync=False
        )
        for batch in slides(48, 4):
            engine.process(batch)
        assert engine.slides_processed == 12
        assert engine.snapshots_written == 2  # slides 5 and 10
        assert engine.store.snapshots.sequences() == [5, 10]
        engine.close(snapshot=False)

    def test_snapshot_every_zero_disables_auto_snapshots(self, tmp_path):
        engine = RecoverableEngine.open(
            tmp_path, make_ic, snapshot_every=0, fsync=False
        )
        for batch in slides():
            engine.process(batch)
        assert engine.snapshots_written == 0
        engine.close()  # the final close still seals state
        assert engine.store.snapshots.sequences() == [engine.slides_processed]

    def test_clean_close_makes_reopen_replay_free(self, tmp_path):
        engine = RecoverableEngine.open(
            tmp_path, make_ic, snapshot_every=4, fsync=False
        )
        for batch in slides():
            engine.process(batch)
        answer = engine.query()
        engine.close()
        reopened = RecoverableEngine.open(tmp_path, make_ic, fsync=False)
        assert reopened.replayed_slides == 0
        assert reopened.query() == answer
        reopened.close(snapshot=False)

    def test_context_manager_seals_on_success_only(self, tmp_path):
        with RecoverableEngine.open(
            tmp_path / "ok", make_ic, snapshot_every=0, fsync=False
        ) as engine:
            for batch in slides():
                engine.process(batch)
        assert engine.store.snapshots.sequences() == [engine.slides_processed]

        with pytest.raises(RuntimeError):
            with RecoverableEngine.open(
                tmp_path / "boom", make_ic, snapshot_every=0, fsync=False
            ) as engine:
                for batch in slides():
                    engine.process(batch)
                raise RuntimeError("simulated failure")
        # No snapshot of possibly-suspect state; WAL alone recovers it.
        assert engine.store.snapshots.sequences() == []
        recovered = RecoverableEngine.open(tmp_path / "boom", make_ic, fsync=False)
        assert recovered.replayed_slides == recovered.slides_processed > 0
        recovered.close(snapshot=False)

    def test_open_empty_dir_without_factory_raises(self, tmp_path):
        with pytest.raises(PersistenceError):
            RecoverableEngine.open(tmp_path, None)

    def test_wal_gap_after_snapshot_raises(self, tmp_path):
        engine = RecoverableEngine.open(
            tmp_path, make_ic, snapshot_every=6, segment_records=2, fsync=False
        )
        for batch in slides(48, 4):
            engine.process(batch)
        engine.close(snapshot=False)
        # Drop the WAL segment right after the last snapshot (slides 7-8).
        store = StateStore(tmp_path, fsync=False)
        assert store.snapshots.sequences()[-1] == 12
        # remove the snapshot at 12 so recovery needs the tail after 6
        store.snapshots.path_for(12).unlink()
        [segment] = [
            p for p in store.wal.segments() if p.name == "wal-0000000007.jsonl"
        ]
        store.close()
        segment.unlink()
        with pytest.raises(PersistenceError):
            RecoverableEngine.open(tmp_path, make_ic, fsync=False)


class TestFailureHygiene:
    def test_rejected_batch_never_reaches_the_wal(self, tmp_path):
        engine = RecoverableEngine.open(tmp_path, make_ic, fsync=False)
        engine.process([Action.root(1, 0), Action.root(2, 1)])
        logged = engine.store.wal.last_seq
        with pytest.raises(ValueError):
            engine.process([Action.root(2, 5)])  # duplicate timestamp
        with pytest.raises(ValueError):
            engine.process([Action.root(5, 0), Action.root(4, 1)])  # unordered
        assert engine.store.wal.last_seq == logged
        # The engine (and a recovery) continue cleanly past the rejection.
        engine.process([Action.root(3, 2)])
        engine.close()
        recovered = RecoverableEngine.open(tmp_path, make_ic, fsync=False)
        assert recovered.slides_processed == 2
        assert recovered.query() == engine.query()
        recovered.close(snapshot=False)

    def test_empty_batch_is_a_noop(self, tmp_path):
        engine = RecoverableEngine.open(tmp_path, make_ic, fsync=False)
        engine.process([])
        assert engine.slides_processed == 0
        assert engine.store.wal.last_seq == 0
        engine.close(snapshot=False)

    def test_negative_snapshot_every_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            RecoverableEngine.open(tmp_path, make_ic, snapshot_every=-1)
