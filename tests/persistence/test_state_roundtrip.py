"""to_state()/from_state() roundtrips: explicit schemas, versioning, fidelity.

Every framework state must survive a JSON dump/load cycle (the snapshot
medium) and rebuild an engine whose observable state — query answers,
counters, checkpoint populations — matches the original exactly.
"""

import json

import pytest

from repro.core.base import STATE_FORMAT_VERSION
from repro.core.greedy import WindowedGreedy
from repro.core.ic import InfluentialCheckpoints
from repro.core.influence_index import VersionedInfluenceIndex
from repro.core.sic import SparseInfluentialCheckpoints
from repro.core.stream import batched
from repro.influence.functions import (
    ConformityAwareInfluence,
    InfluenceFunction,
    WeightedCardinalityInfluence,
    function_from_state,
)
from repro.persistence.serialize import (
    PersistenceError,
    algorithm_from_state,
    algorithm_to_state,
)
from tests.conftest import random_stream


def json_roundtrip(state):
    """The snapshot medium: a serialize/parse cycle."""
    return json.loads(json.dumps(state))


def drive(algorithm, actions, slide):
    for batch in batched(actions, slide):
        algorithm.process(batch)
    return algorithm


FRAMEWORKS = {
    "ic": lambda **kw: InfluentialCheckpoints(
        window_size=40, k=3, beta=0.25, **kw
    ),
    "sic": lambda **kw: SparseInfluentialCheckpoints(
        window_size=40, k=3, beta=0.25, **kw
    ),
}


class TestFrameworkRoundtrip:
    @pytest.mark.parametrize("framework", ["ic", "sic"])
    @pytest.mark.parametrize(
        "oracle", ["sieve", "threshold", "blog_watch", "mkc", "greedy"]
    )
    def test_restored_state_is_observably_identical(self, framework, oracle):
        original = drive(
            FRAMEWORKS[framework](oracle=oracle), random_stream(90, 8, seed=1), 3
        )
        restored = algorithm_from_state(json_roundtrip(original.to_state()))
        assert restored.query() == original.query()
        assert restored.actions_processed == original.actions_processed
        assert restored.checkpoint_count == original.checkpoint_count
        assert [c.start for c in restored.checkpoints] == [
            c.start for c in original.checkpoints
        ]
        assert [c.actions_processed for c in restored.checkpoints] == [
            c.actions_processed for c in original.checkpoints
        ]
        assert [(c.value, c.seeds) for c in restored.checkpoints] == [
            (c.value, c.seeds) for c in original.checkpoints
        ]

    @pytest.mark.parametrize("framework", ["ic", "sic"])
    def test_serialization_is_stable(self, framework):
        """to_state -> from_state -> to_state is a fixed point."""
        original = drive(
            FRAMEWORKS[framework](), random_stream(90, 8, seed=2), 1
        )
        state = json_roundtrip(original.to_state())
        again = json_roundtrip(algorithm_from_state(state).to_state())
        assert again == state

    def test_reference_mode_roundtrip(self):
        original = drive(
            FRAMEWORKS["ic"](shared_index=False),
            random_stream(90, 8, seed=3),
            3,
        )
        restored = algorithm_from_state(json_roundtrip(original.to_state()))
        assert restored.shared_index is None
        assert restored.query() == original.query()
        for ours, theirs in zip(restored.checkpoints, original.checkpoints):
            users = set(theirs.index._influence)
            for user in users:
                assert ours.index.influence_set(user) == set(
                    theirs.index.influence_set(user)
                )

    def test_checkpoint_interval_roundtrip(self):
        original = drive(
            FRAMEWORKS["ic"](checkpoint_interval=3),
            random_stream(90, 8, seed=4),
            2,
        )
        restored = algorithm_from_state(json_roundtrip(original.to_state()))
        assert restored.checkpoint_interval == 3
        assert restored.checkpoint_count == original.checkpoint_count
        assert restored.query() == original.query()

    def test_sic_counters_roundtrip(self):
        original = drive(FRAMEWORKS["sic"](), random_stream(120, 8, seed=5), 1)
        assert original.pruned_total > 0
        restored = algorithm_from_state(json_roundtrip(original.to_state()))
        assert restored.pruned_total == original.pruned_total
        assert restored.beta == original.beta

    def test_sic_oracle_beta_roundtrip(self):
        original = drive(
            SparseInfluentialCheckpoints(
                window_size=40, k=3, beta=0.25, oracle_beta=0.4
            ),
            random_stream(60, 8, seed=6),
            2,
        )
        restored = algorithm_from_state(json_roundtrip(original.to_state()))
        assert restored._spec.params == {"beta": 0.4}
        assert restored.beta == 0.25
        assert restored.query() == original.query()

    @pytest.mark.parametrize("lazy", [True, False])
    def test_windowed_greedy_roundtrip(self, lazy):
        original = drive(
            WindowedGreedy(window_size=40, k=3, lazy=lazy),
            random_stream(90, 8, seed=7),
            3,
        )
        restored = algorithm_from_state(json_roundtrip(original.to_state()))
        assert restored.query() == original.query()
        # The candidate iteration order (greedy's tie-breaker) survives.
        assert list(restored.index.influencers()) == list(
            original.index.influencers()
        )


class TestInfluenceFunctionStates:
    def test_weighted_function_roundtrip(self):
        func = WeightedCardinalityInfluence({1: 2.0, 4: 0.5}, default=1.5)
        original = drive(
            InfluentialCheckpoints(window_size=40, k=3, func=func),
            random_stream(80, 8, seed=8),
            2,
        )
        restored = algorithm_from_state(json_roundtrip(original.to_state()))
        assert restored.query() == original.query()

    def test_conformity_function_roundtrip(self):
        func = ConformityAwareInfluence({1: 0.9, 2: 0.3}, {3: 0.8, 4: 0.2})
        original = drive(
            InfluentialCheckpoints(window_size=40, k=3, func=func),
            random_stream(80, 8, seed=9),
            2,
        )
        restored = algorithm_from_state(json_roundtrip(original.to_state()))
        assert restored.query() == original.query()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            function_from_state({"kind": "no-such-function"})

    def test_unserializable_function_fails_loudly(self):
        class Custom(InfluenceFunction):
            def evaluate(self, seeds, index):
                return 0.0

        algorithm = InfluentialCheckpoints(window_size=10, k=2, func=Custom())
        with pytest.raises(NotImplementedError):
            algorithm.to_state()


class TestVersioning:
    def test_format_version_mismatch_rejected(self):
        state = drive(
            FRAMEWORKS["ic"](), random_stream(30, 6, seed=0), 1
        ).to_state()
        state["format"] = STATE_FORMAT_VERSION + 1
        with pytest.raises(ValueError):
            InfluentialCheckpoints.from_state(state)

    def test_wrong_algorithm_tag_rejected(self):
        state = drive(
            FRAMEWORKS["ic"](), random_stream(30, 6, seed=0), 1
        ).to_state()
        with pytest.raises(ValueError):
            SparseInfluentialCheckpoints.from_state(state)

    def test_unknown_algorithm_kind_rejected(self):
        with pytest.raises(PersistenceError):
            algorithm_from_state({"algorithm": "martian", "format": 1})

    def test_algorithm_without_hook_rejected(self):
        class Opaque:
            pass

        with pytest.raises(PersistenceError):
            algorithm_to_state(Opaque())


class TestIndexRoundtrip:
    def test_versioned_index_preserves_iteration_order_and_floor(self):
        index = VersionedInfluenceIndex()
        original = drive(
            FRAMEWORKS["ic"](), random_stream(120, 8, seed=11), 1
        ).shared_index
        del index
        state = json_roundtrip(original.to_state())
        restored = VersionedInfluenceIndex.from_state(state)
        assert restored.floor == original.floor
        assert restored.pair_count == original.pair_count
        assert restored._latest == original._latest
        # Iteration order is part of the state (float-sum determinism).
        assert list(restored._latest) == list(original._latest)
        for user in original._latest:
            assert list(restored._latest[user]) == list(original._latest[user])
