"""ActionWAL: append/replay roundtrips, rotation, torn tails, retention."""

import json

import pytest

from repro.core.actions import Action
from repro.persistence.serialize import PersistenceError
from repro.persistence.wal import ActionWAL


def slides(n, per_slide=2):
    """``n`` consecutive slides of ``per_slide`` root actions each."""
    out = []
    time = 1
    for _ in range(n):
        batch = []
        for _ in range(per_slide):
            batch.append(Action.root(time, time % 5))
            time += 1
        out.append(batch)
    return out


class TestAppendReplay:
    def test_roundtrip(self, tmp_path):
        wal = ActionWAL(tmp_path, fsync=False)
        batches = slides(5)
        for seq, batch in enumerate(batches, start=1):
            wal.append(seq, batch)
        wal.close()
        replayed = list(ActionWAL(tmp_path, fsync=False).replay())
        assert [seq for seq, _ in replayed] == [1, 2, 3, 4, 5]
        assert [actions for _, actions in replayed] == batches

    def test_replay_after_skips_prefix(self, tmp_path):
        wal = ActionWAL(tmp_path, fsync=False)
        for seq, batch in enumerate(slides(6), start=1):
            wal.append(seq, batch)
        assert [seq for seq, _ in wal.replay(after=4)] == [5, 6]

    def test_empty_wal(self, tmp_path):
        wal = ActionWAL(tmp_path, fsync=False)
        assert wal.last_seq == 0
        assert list(wal.replay()) == []

    def test_append_continues_after_reopen(self, tmp_path):
        wal = ActionWAL(tmp_path, fsync=False)
        batches = slides(6)
        for seq in (1, 2, 3):
            wal.append(seq, batches[seq - 1])
        wal.close()
        reopened = ActionWAL(tmp_path, fsync=False)
        assert reopened.last_seq == 3
        for seq in (4, 5, 6):
            reopened.append(seq, batches[seq - 1])
        assert [seq for seq, _ in reopened.replay()] == [1, 2, 3, 4, 5, 6]

    def test_out_of_order_append_rejected(self, tmp_path):
        wal = ActionWAL(tmp_path, fsync=False)
        wal.append(1, slides(1)[0])
        with pytest.raises(PersistenceError):
            wal.append(3, slides(1)[0])
        with pytest.raises(PersistenceError):
            wal.append(1, slides(1)[0])

    def test_fresh_wal_accepts_any_start(self, tmp_path):
        """After pruning, the log legitimately starts past slide 1."""
        wal = ActionWAL(tmp_path, fsync=False)
        wal.append(17, slides(1)[0])
        assert [seq for seq, _ in wal.replay()] == [17]


class TestRotation:
    def test_segments_rotate_at_capacity(self, tmp_path):
        wal = ActionWAL(tmp_path, segment_records=3, fsync=False)
        for seq, batch in enumerate(slides(8), start=1):
            wal.append(seq, batch)
        names = [p.name for p in wal.segments()]
        assert names == [
            "wal-0000000001.jsonl",
            "wal-0000000004.jsonl",
            "wal-0000000007.jsonl",
        ]
        assert [seq for seq, _ in wal.replay()] == list(range(1, 9))

    def test_reopen_respects_partial_tail_segment(self, tmp_path):
        wal = ActionWAL(tmp_path, segment_records=3, fsync=False)
        for seq, batch in enumerate(slides(4), start=1):
            wal.append(seq, batch)
        wal.close()
        reopened = ActionWAL(tmp_path, segment_records=3, fsync=False)
        reopened.append(5, slides(5)[4])
        # Slides 4 and 5 share the second segment; no spurious third one.
        assert len(reopened.segments()) == 2
        assert [seq for seq, _ in reopened.replay()] == [1, 2, 3, 4, 5]

    def test_prune_through_drops_covered_segments(self, tmp_path):
        wal = ActionWAL(tmp_path, segment_records=2, fsync=False)
        for seq, batch in enumerate(slides(7), start=1):
            wal.append(seq, batch)
        removed = wal.prune_through(4)
        assert removed == 2  # segments [1,2] and [3,4]
        assert [seq for seq, _ in wal.replay(after=4)] == [5, 6, 7]

    def test_prune_never_removes_active_segment(self, tmp_path):
        wal = ActionWAL(tmp_path, segment_records=2, fsync=False)
        for seq, batch in enumerate(slides(2), start=1):
            wal.append(seq, batch)
        assert wal.prune_through(2) == 0
        assert len(wal.segments()) == 1


class TestCorruption:
    def test_torn_tail_ends_replay_cleanly(self, tmp_path):
        wal = ActionWAL(tmp_path, fsync=False)
        for seq, batch in enumerate(slides(4), start=1):
            wal.append(seq, batch)
        wal.close()
        segment = wal.segments()[-1]
        segment.write_bytes(segment.read_bytes()[:-9])
        assert [seq for seq, _ in ActionWAL(tmp_path, fsync=False).replay()] == [
            1,
            2,
            3,
        ]

    def test_reopen_truncates_torn_tail_then_appends(self, tmp_path):
        wal = ActionWAL(tmp_path, fsync=False)
        batches = slides(5)
        for seq in (1, 2, 3):
            wal.append(seq, batches[seq - 1])
        wal.close()
        segment = wal.segments()[-1]
        segment.write_bytes(segment.read_bytes()[:-5])
        reopened = ActionWAL(tmp_path, fsync=False)
        assert reopened.last_seq == 2  # the torn third record is discarded
        reopened.append(3, batches[2])
        replayed = list(reopened.replay())
        assert [seq for seq, _ in replayed] == [1, 2, 3]
        assert replayed[-1][1] == batches[2]

    def test_mid_log_corruption_raises(self, tmp_path):
        wal = ActionWAL(tmp_path, segment_records=2, fsync=False)
        for seq, batch in enumerate(slides(6), start=1):
            wal.append(seq, batch)
        wal.close()
        first = wal.segments()[0]
        first.write_text("not json\n" + first.read_text().split("\n", 1)[1])
        with pytest.raises(PersistenceError):
            list(ActionWAL(tmp_path, fsync=False).replay())

    def test_sequence_gap_raises(self, tmp_path):
        wal = ActionWAL(tmp_path, segment_records=2, fsync=False)
        for seq, batch in enumerate(slides(6), start=1):
            wal.append(seq, batch)
        wal.close()
        wal.segments()[1].unlink()  # drop slides 3-4
        with pytest.raises(PersistenceError):
            list(ActionWAL(tmp_path, fsync=False).replay())

    def test_record_preserves_action_fields(self, tmp_path):
        wal = ActionWAL(tmp_path, fsync=False)
        batch = [Action.root(1, 7), Action.response(2, 3, 1)]
        wal.append(1, batch)
        wal.close()
        raw = json.loads(wal.segments()[0].read_text().strip())
        assert raw["seq"] == 1
        assert raw["actions"] == [[1, 7, -1], [2, 3, 1]]
        assert isinstance(raw["crc"], int)  # per-record checksum
        [(_, actions)] = list(ActionWAL(tmp_path, fsync=False).replay())
        assert actions == batch


class TestChecksums:
    """Per-record CRC32: bit rot that still parses must not replay."""

    def _flip_payload_byte(self, segment, line_index):
        """Corrupt one digit inside record ``line_index`` without breaking
        the JSON structure (the checksum must do the catching)."""
        lines = segment.read_bytes().split(b"\n")
        line = bytearray(lines[line_index])
        # Flip a user id digit inside "actions":[[t,u,p],...]
        anchor = line.find(b'"actions":[[')
        assert anchor != -1
        digit = line.index(b",", anchor) + 1
        line[digit] = ord("9") if line[digit] != ord("9") else ord("8")
        lines[line_index] = bytes(line)
        segment.write_bytes(b"\n".join(lines))

    def test_mid_segment_bit_rot_raises_with_segment_and_seq(self, tmp_path):
        wal = ActionWAL(tmp_path, fsync=False)
        for seq, batch in enumerate(slides(4), start=1):
            wal.append(seq, batch)
        wal.close()
        opened = ActionWAL(tmp_path, fsync=False)  # clean before corruption
        segment = wal.segments()[0]
        self._flip_payload_byte(segment, line_index=1)  # record seq 2
        with pytest.raises(
            PersistenceError,
            match=f"checksum mismatch in segment {segment.name} at record seq 2",
        ):
            list(opened.replay())
        with pytest.raises(
            PersistenceError,
            match=f"checksum mismatch in segment {segment.name} at record seq 2",
        ):
            ActionWAL(tmp_path, fsync=False)
        opened.close()

    def test_final_record_bit_rot_is_a_torn_tail(self, tmp_path):
        wal = ActionWAL(tmp_path, fsync=False)
        batches = slides(4)
        for seq in (1, 2, 3):
            wal.append(seq, batches[seq - 1])
        wal.close()
        self._flip_payload_byte(wal.segments()[-1], line_index=2)
        reopened = ActionWAL(tmp_path, fsync=False)
        assert reopened.last_seq == 2  # damaged record 3 truncated away
        reopened.append(3, batches[2])  # redelivery heals the lost slide
        assert [seq for seq, _ in reopened.replay()] == [1, 2, 3]

    def test_records_without_crc_still_replay(self, tmp_path):
        """Backward compatibility: segments from before checksums."""
        wal = ActionWAL(tmp_path, fsync=False)
        wal.append(1, slides(1)[0])
        wal.close()
        segment = wal.segments()[0]
        record = json.loads(segment.read_text().strip())
        del record["crc"]
        old_style = json.dumps(
            {"seq": 2, "actions": [[2, 1, -1]]}, separators=(",", ":")
        )
        segment.write_text(
            json.dumps(record, separators=(",", ":")) + "\n" + old_style + "\n"
        )
        reopened = ActionWAL(tmp_path, fsync=False)
        assert reopened.last_seq == 2
        assert [seq for seq, _ in reopened.replay()] == [1, 2]


class TestRoutedRecords:
    """Routed-slide WAL records: the format behind routed sharded ingest."""

    def _resolved(self, n=6, start_seed=61):
        from repro.core.resolve import SlideResolver

        from tests.conftest import random_stream

        resolver = SlideResolver()
        return [
            resolver.resolve(batch)
            for batch in (
                random_stream(n * 3, 5, seed=start_seed)[i : i + 3]
                for i in range(0, n * 3, 3)
            )
        ]

    def test_append_resolved_roundtrip(self, tmp_path):
        from repro.core.resolve import ResolvedSlide

        wal = ActionWAL(tmp_path, fsync=False)
        resolved = self._resolved()
        for seq, slide in enumerate(resolved, start=1):
            wal.append_resolved(seq, slide)
        wal.close()
        replayed = list(ActionWAL(tmp_path, fsync=False).replay())
        assert [seq for seq, _ in replayed] == list(range(1, len(resolved) + 1))
        for _, payload in replayed:
            assert isinstance(payload, ResolvedSlide)
        assert [payload for _, payload in replayed] == resolved

    def test_action_and_routed_records_interleave(self, tmp_path):
        """A migrated shard log: broadcast-era prefix, routed suffix."""
        from repro.core.resolve import ResolvedSlide

        wal = ActionWAL(tmp_path, fsync=False)
        batches = slides(2)
        wal.append(1, batches[0])
        wal.append(2, batches[1])
        routed = self._resolved(n=2, start_seed=62)
        # Shift routed slides past the action prefix's clock.
        wal.append_resolved(3, routed[0])
        wal.append_resolved(4, routed[1])
        wal.close()
        replayed = list(ActionWAL(tmp_path, fsync=False).replay())
        kinds = [type(payload).__name__ for _, payload in replayed]
        assert kinds == ["list", "list", "ResolvedSlide", "ResolvedSlide"]
        assert replayed[0][1] == batches[0]
        assert replayed[2][1] == routed[0]

    def test_newer_wire_version_raises_even_at_tail(self, tmp_path):
        """A checksum-valid routed record this build cannot decode is a
        format problem, never a torn tail — replay must refuse, not
        silently truncate the shard's history."""
        from repro.persistence.wal import _record_crc, _record_payload

        wal = ActionWAL(tmp_path, fsync=False)
        for seq, slide in enumerate(self._resolved(n=3), start=1):
            wal.append_resolved(seq, slide)
        wal.close()
        segment = wal.segments()[-1]
        lines = segment.read_text().strip().split("\n")
        record = json.loads(lines[-1])
        record["slide"]["v"] += 1  # a future wire format
        record["crc"] = _record_crc(_record_payload(record))
        lines[-1] = json.dumps(record, separators=(",", ":"))
        segment.write_text("\n".join(lines) + "\n")
        with pytest.raises(PersistenceError, match="unreadable WAL record"):
            list(ActionWAL(tmp_path, fsync=False).replay())

    def test_unchecksummed_routed_tail_stays_torn_ok(self, tmp_path):
        """Only legacy records without a CRC keep torn-tail forgiveness."""
        wal = ActionWAL(tmp_path, fsync=False)
        for seq, slide in enumerate(self._resolved(n=2), start=1):
            wal.append_resolved(seq, slide)
        wal.close()
        segment = wal.segments()[-1]
        lines = segment.read_text().strip().split("\n")
        record = json.loads(lines[-1])
        del record["crc"]
        record["slide"]["v"] += 1  # undecodable, but no checksum: torn-ok
        lines[-1] = json.dumps(record, separators=(",", ":"))
        # No trailing newline: the damaged record is a genuine torn append.
        segment.write_text("\n".join(lines))
        replayed = list(ActionWAL(tmp_path, fsync=False).replay())
        assert [seq for seq, _ in replayed] == [1]

    def test_recoverable_engine_routed_crash_reopen(self, tmp_path):
        """apply_resolved is write-ahead: a crash between snapshots replays
        routed records and answers exactly like the unbroken run."""
        from repro.core.ic import InfluentialCheckpoints
        from repro.core.resolve import SlideResolver
        from repro.core.stream import batched
        from repro.persistence.engine import RecoverableEngine

        from tests.conftest import random_stream

        actions = random_stream(80, 10, seed=63)
        make = lambda: InfluentialCheckpoints(window_size=30, k=3, beta=0.3)

        oracle = make()
        resolver = SlideResolver()
        resolved = [resolver.resolve(list(b)) for b in batched(actions, 4)]
        for slide in resolved:
            oracle.apply_resolved(slide)

        engine = RecoverableEngine.open(
            tmp_path, make, snapshot_every=5, fsync=False
        )
        for slide in resolved[:13]:
            engine.apply_resolved(slide)
        engine._store.close()  # crash: snapshot at 10, WAL tail 11-13

        recovered = RecoverableEngine.open(tmp_path, make, fsync=False)
        assert recovered.slides_processed == 13
        assert recovered.replayed_slides == 3
        for slide in resolved[13:]:
            recovered.apply_resolved(slide)
        assert recovered.query() == oracle.query()
        recovered.close()
