"""ActionWAL: append/replay roundtrips, rotation, torn tails, retention."""

import json

import pytest

from repro.core.actions import Action
from repro.persistence.serialize import PersistenceError
from repro.persistence.wal import ActionWAL


def slides(n, per_slide=2):
    """``n`` consecutive slides of ``per_slide`` root actions each."""
    out = []
    time = 1
    for _ in range(n):
        batch = []
        for _ in range(per_slide):
            batch.append(Action.root(time, time % 5))
            time += 1
        out.append(batch)
    return out


class TestAppendReplay:
    def test_roundtrip(self, tmp_path):
        wal = ActionWAL(tmp_path, fsync=False)
        batches = slides(5)
        for seq, batch in enumerate(batches, start=1):
            wal.append(seq, batch)
        wal.close()
        replayed = list(ActionWAL(tmp_path, fsync=False).replay())
        assert [seq for seq, _ in replayed] == [1, 2, 3, 4, 5]
        assert [actions for _, actions in replayed] == batches

    def test_replay_after_skips_prefix(self, tmp_path):
        wal = ActionWAL(tmp_path, fsync=False)
        for seq, batch in enumerate(slides(6), start=1):
            wal.append(seq, batch)
        assert [seq for seq, _ in wal.replay(after=4)] == [5, 6]

    def test_empty_wal(self, tmp_path):
        wal = ActionWAL(tmp_path, fsync=False)
        assert wal.last_seq == 0
        assert list(wal.replay()) == []

    def test_append_continues_after_reopen(self, tmp_path):
        wal = ActionWAL(tmp_path, fsync=False)
        batches = slides(6)
        for seq in (1, 2, 3):
            wal.append(seq, batches[seq - 1])
        wal.close()
        reopened = ActionWAL(tmp_path, fsync=False)
        assert reopened.last_seq == 3
        for seq in (4, 5, 6):
            reopened.append(seq, batches[seq - 1])
        assert [seq for seq, _ in reopened.replay()] == [1, 2, 3, 4, 5, 6]

    def test_out_of_order_append_rejected(self, tmp_path):
        wal = ActionWAL(tmp_path, fsync=False)
        wal.append(1, slides(1)[0])
        with pytest.raises(PersistenceError):
            wal.append(3, slides(1)[0])
        with pytest.raises(PersistenceError):
            wal.append(1, slides(1)[0])

    def test_fresh_wal_accepts_any_start(self, tmp_path):
        """After pruning, the log legitimately starts past slide 1."""
        wal = ActionWAL(tmp_path, fsync=False)
        wal.append(17, slides(1)[0])
        assert [seq for seq, _ in wal.replay()] == [17]


class TestRotation:
    def test_segments_rotate_at_capacity(self, tmp_path):
        wal = ActionWAL(tmp_path, segment_records=3, fsync=False)
        for seq, batch in enumerate(slides(8), start=1):
            wal.append(seq, batch)
        names = [p.name for p in wal.segments()]
        assert names == [
            "wal-0000000001.jsonl",
            "wal-0000000004.jsonl",
            "wal-0000000007.jsonl",
        ]
        assert [seq for seq, _ in wal.replay()] == list(range(1, 9))

    def test_reopen_respects_partial_tail_segment(self, tmp_path):
        wal = ActionWAL(tmp_path, segment_records=3, fsync=False)
        for seq, batch in enumerate(slides(4), start=1):
            wal.append(seq, batch)
        wal.close()
        reopened = ActionWAL(tmp_path, segment_records=3, fsync=False)
        reopened.append(5, slides(5)[4])
        # Slides 4 and 5 share the second segment; no spurious third one.
        assert len(reopened.segments()) == 2
        assert [seq for seq, _ in reopened.replay()] == [1, 2, 3, 4, 5]

    def test_prune_through_drops_covered_segments(self, tmp_path):
        wal = ActionWAL(tmp_path, segment_records=2, fsync=False)
        for seq, batch in enumerate(slides(7), start=1):
            wal.append(seq, batch)
        removed = wal.prune_through(4)
        assert removed == 2  # segments [1,2] and [3,4]
        assert [seq for seq, _ in wal.replay(after=4)] == [5, 6, 7]

    def test_prune_never_removes_active_segment(self, tmp_path):
        wal = ActionWAL(tmp_path, segment_records=2, fsync=False)
        for seq, batch in enumerate(slides(2), start=1):
            wal.append(seq, batch)
        assert wal.prune_through(2) == 0
        assert len(wal.segments()) == 1


class TestCorruption:
    def test_torn_tail_ends_replay_cleanly(self, tmp_path):
        wal = ActionWAL(tmp_path, fsync=False)
        for seq, batch in enumerate(slides(4), start=1):
            wal.append(seq, batch)
        wal.close()
        segment = wal.segments()[-1]
        segment.write_bytes(segment.read_bytes()[:-9])
        assert [seq for seq, _ in ActionWAL(tmp_path, fsync=False).replay()] == [
            1,
            2,
            3,
        ]

    def test_reopen_truncates_torn_tail_then_appends(self, tmp_path):
        wal = ActionWAL(tmp_path, fsync=False)
        batches = slides(5)
        for seq in (1, 2, 3):
            wal.append(seq, batches[seq - 1])
        wal.close()
        segment = wal.segments()[-1]
        segment.write_bytes(segment.read_bytes()[:-5])
        reopened = ActionWAL(tmp_path, fsync=False)
        assert reopened.last_seq == 2  # the torn third record is discarded
        reopened.append(3, batches[2])
        replayed = list(reopened.replay())
        assert [seq for seq, _ in replayed] == [1, 2, 3]
        assert replayed[-1][1] == batches[2]

    def test_mid_log_corruption_raises(self, tmp_path):
        wal = ActionWAL(tmp_path, segment_records=2, fsync=False)
        for seq, batch in enumerate(slides(6), start=1):
            wal.append(seq, batch)
        wal.close()
        first = wal.segments()[0]
        first.write_text("not json\n" + first.read_text().split("\n", 1)[1])
        with pytest.raises(PersistenceError):
            list(ActionWAL(tmp_path, fsync=False).replay())

    def test_sequence_gap_raises(self, tmp_path):
        wal = ActionWAL(tmp_path, segment_records=2, fsync=False)
        for seq, batch in enumerate(slides(6), start=1):
            wal.append(seq, batch)
        wal.close()
        wal.segments()[1].unlink()  # drop slides 3-4
        with pytest.raises(PersistenceError):
            list(ActionWAL(tmp_path, fsync=False).replay())

    def test_record_preserves_action_fields(self, tmp_path):
        wal = ActionWAL(tmp_path, fsync=False)
        batch = [Action.root(1, 7), Action.response(2, 3, 1)]
        wal.append(1, batch)
        wal.close()
        raw = json.loads(wal.segments()[0].read_text().strip())
        assert raw["seq"] == 1
        assert raw["actions"] == [[1, 7, -1], [2, 3, 1]]
        assert isinstance(raw["crc"], int)  # per-record checksum
        [(_, actions)] = list(ActionWAL(tmp_path, fsync=False).replay())
        assert actions == batch


class TestChecksums:
    """Per-record CRC32: bit rot that still parses must not replay."""

    def _flip_payload_byte(self, segment, line_index):
        """Corrupt one digit inside record ``line_index`` without breaking
        the JSON structure (the checksum must do the catching)."""
        lines = segment.read_bytes().split(b"\n")
        line = bytearray(lines[line_index])
        # Flip a user id digit inside "actions":[[t,u,p],...]
        anchor = line.find(b'"actions":[[')
        assert anchor != -1
        digit = line.index(b",", anchor) + 1
        line[digit] = ord("9") if line[digit] != ord("9") else ord("8")
        lines[line_index] = bytes(line)
        segment.write_bytes(b"\n".join(lines))

    def test_mid_segment_bit_rot_raises_with_segment_and_seq(self, tmp_path):
        wal = ActionWAL(tmp_path, fsync=False)
        for seq, batch in enumerate(slides(4), start=1):
            wal.append(seq, batch)
        wal.close()
        opened = ActionWAL(tmp_path, fsync=False)  # clean before corruption
        segment = wal.segments()[0]
        self._flip_payload_byte(segment, line_index=1)  # record seq 2
        with pytest.raises(
            PersistenceError,
            match=f"checksum mismatch in segment {segment.name} at record seq 2",
        ):
            list(opened.replay())
        with pytest.raises(
            PersistenceError,
            match=f"checksum mismatch in segment {segment.name} at record seq 2",
        ):
            ActionWAL(tmp_path, fsync=False)
        opened.close()

    def test_final_record_bit_rot_is_a_torn_tail(self, tmp_path):
        wal = ActionWAL(tmp_path, fsync=False)
        batches = slides(4)
        for seq in (1, 2, 3):
            wal.append(seq, batches[seq - 1])
        wal.close()
        self._flip_payload_byte(wal.segments()[-1], line_index=2)
        reopened = ActionWAL(tmp_path, fsync=False)
        assert reopened.last_seq == 2  # damaged record 3 truncated away
        reopened.append(3, batches[2])  # redelivery heals the lost slide
        assert [seq for seq, _ in reopened.replay()] == [1, 2, 3]

    def test_records_without_crc_still_replay(self, tmp_path):
        """Backward compatibility: segments from before checksums."""
        wal = ActionWAL(tmp_path, fsync=False)
        wal.append(1, slides(1)[0])
        wal.close()
        segment = wal.segments()[0]
        record = json.loads(segment.read_text().strip())
        del record["crc"]
        old_style = json.dumps(
            {"seq": 2, "actions": [[2, 1, -1]]}, separators=(",", ":")
        )
        segment.write_text(
            json.dumps(record, separators=(",", ":")) + "\n" + old_style + "\n"
        )
        reopened = ActionWAL(tmp_path, fsync=False)
        assert reopened.last_seq == 2
        assert [seq for seq, _ in reopened.replay()] == [1, 2]
