"""Restore-equivalence proof: kill → restore → finish ≡ uninterrupted.

Mirrors ``tests/core/test_shared_index_equivalence.py``: drive each
framework over identical random streams, kill the engine at slide ``i``
(dropping all in-memory state — only the per-slide WAL appends and past
snapshots survive, as after SIGKILL), restore from the state directory,
finish the stream, and require the remaining per-slide ``query()``
answers — times, seeds, *and* exact float values — to match an
uninterrupted run.  The replay counter must equal the WAL tail length
(slides since the last snapshot), pinning the O(tail) recovery claim.
"""

from __future__ import annotations

import pytest

from repro.core.greedy import WindowedGreedy
from repro.core.ic import InfluentialCheckpoints
from repro.core.sic import SparseInfluentialCheckpoints
from repro.core.stream import batched
from repro.persistence.engine import RecoverableEngine
from tests.conftest import random_stream

ORACLES = ["sieve", "threshold", "blog_watch", "mkc", "greedy"]

#: (snapshot cadence, kill slide): mid-tail kills plus one exactly on a
#: snapshot boundary (zero-replay recovery).
SCENARIOS = [(3, 7), (4, 12), (5, 11)]


def make_factory(framework, oracle):
    if framework == "ic":
        return lambda: InfluentialCheckpoints(
            window_size=40, k=3, beta=0.25, oracle=oracle
        )
    return lambda: SparseInfluentialCheckpoints(
        window_size=40, k=3, beta=0.25, oracle=oracle
    )


def run_uninterrupted(factory, batches):
    algorithm = factory()
    answers = []
    for batch in batches:
        algorithm.process(batch)
        answers.append(algorithm.query())
    return answers


def kill_and_restore(factory, batches, kill_at, cadence, state_dir):
    """Crash at slide ``kill_at``, reopen, finish; return (answers, engine)."""
    doomed = RecoverableEngine.open(
        state_dir, factory, snapshot_every=cadence, fsync=False
    )
    for batch in batches[:kill_at]:
        doomed.process(batch)
    # Simulated SIGKILL: no final snapshot, no orderly handoff — recovery
    # sees exactly what the per-slide WAL appends left on disk.
    doomed.close(snapshot=False)
    restored = RecoverableEngine.open(
        state_dir, factory, snapshot_every=cadence, fsync=False
    )
    answers = []
    for batch in batches[kill_at:]:
        restored.process(batch)
        answers.append(restored.query())
    restored.close(snapshot=False)
    return answers, restored


@pytest.mark.parametrize("framework", ["ic", "sic"])
@pytest.mark.parametrize("oracle", ORACLES)
@pytest.mark.parametrize("slide", [1, 5])
def test_kill_restore_equivalence(framework, oracle, slide, tmp_path):
    actions = random_stream(120, 8, seed=0)
    batches = list(batched(actions, slide))
    factory = make_factory(framework, oracle)
    expected = run_uninterrupted(factory, batches)
    for cadence, kill_at in SCENARIOS:
        state_dir = tmp_path / f"s{cadence}-k{kill_at}"
        answers, restored = kill_and_restore(
            factory, batches, kill_at, cadence, state_dir
        )
        key = (framework, oracle, slide, cadence, kill_at)
        # Recovery replays only the WAL tail behind the last snapshot.
        last_snapshot = (kill_at // cadence) * cadence
        assert restored.replayed_slides == kill_at - last_snapshot, key
        assert restored.slides_processed == len(batches), key
        # Byte-identical continuation: times, exact values, seed sets.
        assert answers == expected[kill_at:], key


@pytest.mark.parametrize("plane", ["reference", "unbatched", "interval"])
def test_kill_restore_equivalence_across_planes(plane, tmp_path):
    """The non-default data planes restore just as exactly."""
    kwargs = {
        "reference": {"shared_index": False},
        "unbatched": {"batch_feeds": False},
        "interval": {"checkpoint_interval": 2},
    }[plane]

    def factory():
        return InfluentialCheckpoints(window_size=40, k=3, beta=0.25, **kwargs)

    batches = list(batched(random_stream(120, 8, seed=3), 5))
    expected = run_uninterrupted(factory, batches)
    answers, restored = kill_and_restore(factory, batches, 13, 4, tmp_path)
    assert restored.replayed_slides == 1
    assert answers == expected[13:]


@pytest.mark.parametrize("lazy", [True, False])
def test_kill_restore_equivalence_windowed_greedy(lazy, tmp_path):
    def factory():
        return WindowedGreedy(window_size=40, k=3, lazy=lazy)

    batches = list(batched(random_stream(120, 8, seed=4), 4))
    expected = run_uninterrupted(factory, batches)
    answers, restored = kill_and_restore(factory, batches, 17, 6, tmp_path)
    assert restored.replayed_slides == 5
    assert answers == expected[17:]


def test_double_crash_recovery(tmp_path):
    """Crash, recover, crash again, recover again — still identical."""
    factory = make_factory("sic", "sieve")
    batches = list(batched(random_stream(120, 8, seed=5), 3))
    expected = run_uninterrupted(factory, batches)
    first = RecoverableEngine.open(
        tmp_path, factory, snapshot_every=4, fsync=False
    )
    for batch in batches[:9]:
        first.process(batch)
    first.close(snapshot=False)
    second = RecoverableEngine.open(
        tmp_path, factory, snapshot_every=4, fsync=False
    )
    assert second.replayed_slides == 1  # snapshot at 8, WAL slide 9
    for batch in batches[9:23]:
        second.process(batch)
    second.close(snapshot=False)
    third = RecoverableEngine.open(
        tmp_path, factory, snapshot_every=4, fsync=False
    )
    assert third.replayed_slides == 3  # snapshot at 20, WAL 21-23
    answers = []
    for batch in batches[23:]:
        third.process(batch)
        answers.append(third.query())
    third.close(snapshot=False)
    assert answers == expected[23:]
