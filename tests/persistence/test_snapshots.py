"""SnapshotStore: atomic writes, retention, corruption fallback."""

import json

import pytest

from repro.persistence.serialize import (
    SNAPSHOT_FORMAT_VERSION,
    PersistenceError,
)
from repro.persistence.snapshots import SnapshotStore


def document(seq):
    return {"format": SNAPSHOT_FORMAT_VERSION, "slide_seq": seq, "algorithm": {}}


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(4, document(4))
        assert store.load(4) == document(4)
        assert store.load_latest() == (4, document(4))

    def test_no_tmp_files_left_behind(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(1, document(1))
        assert [p.name for p in tmp_path.iterdir()] == ["snapshot-0000000001.json"]

    def test_sequences_sorted(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=10)
        for seq in (8, 2, 5):
            store.save(seq, document(seq))
        assert store.sequences() == [2, 5, 8]

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(PersistenceError):
            SnapshotStore(tmp_path).load(9)

    def test_empty_store_has_no_latest(self, tmp_path):
        assert SnapshotStore(tmp_path).load_latest() is None


class TestRetention:
    def test_keeps_newest_m(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        for seq in (1, 2, 3, 4):
            store.save(seq, document(seq))
        assert store.sequences() == [3, 4]

    def test_keep_validated(self, tmp_path):
        with pytest.raises(ValueError):
            SnapshotStore(tmp_path, keep=0)

    def test_prune_drops_all_but_newest(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=10)
        for seq in (1, 2, 3, 4):
            store.save(seq, document(seq))
        assert store.prune(keep=2) == [1, 2]
        assert store.sequences() == [3, 4]

    def test_prune_with_fewer_than_keep_is_noop(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=10)
        store.save(1, document(1))
        assert store.prune(keep=3) == []
        assert store.sequences() == [1]

    def test_prune_keep_validated(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(1, document(1))
        with pytest.raises(ValueError, match="keep"):
            store.prune(keep=0)
        assert store.sequences() == [1]


class TestCorruption:
    def test_corrupt_latest_falls_back_to_previous(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(1, document(1))
        store.save(2, document(2))
        store.path_for(2).write_text("{ damaged")
        assert store.load_latest() == (1, document(1))

    def test_all_corrupt_yields_none(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(1, document(1))
        store.path_for(1).write_text("junk")
        assert store.load_latest() is None

    def test_format_version_mismatch_raises(self, tmp_path):
        store = SnapshotStore(tmp_path)
        bad = document(3)
        bad["format"] = SNAPSHOT_FORMAT_VERSION + 1
        store.path_for(3).write_text(json.dumps(bad))
        with pytest.raises(PersistenceError):
            store.load(3)
        with pytest.raises(PersistenceError):
            store.load_latest()
