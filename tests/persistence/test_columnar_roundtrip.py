"""Persistence proofs for the columnar oracle kernel.

Three contracts:

* **Round-trip:** serializing a columnar engine mid-stream and restoring
  it yields a framework that continues bit-identically — answers *and*
  the canonicalized per-checkpoint oracle state agree with an
  uninterrupted run, and the restored engine is still on the columnar
  plane.
* **Crash recovery:** the WAL/snapshot engine restores a columnar
  framework exactly (same harness as ``test_restore_equivalence``).
* **Plane portability:** snapshots carry the plane as a runtime choice,
  not config.  An object-plane snapshot *without* the ``columnar`` key —
  i.e. one written before the kernel existed — opens straight into the
  columnar kernel and still continues identically, while an explicit
  ``columnar: false`` snapshot stays on the object plane.
"""

from __future__ import annotations

import pytest

from repro.core.ic import InfluentialCheckpoints
from repro.core.sic import SparseInfluentialCheckpoints
from repro.core.stream import batched
from repro.persistence.engine import RecoverableEngine
from repro.persistence.serialize import algorithm_from_state, algorithm_to_state
from tests.conftest import random_stream
from tests.core.test_columnar_equivalence import canon

FRAMEWORKS = {"ic": InfluentialCheckpoints, "sic": SparseInfluentialCheckpoints}


def drive(algorithm, batches):
    answers = []
    for batch in batches:
        algorithm.process(batch)
        answers.append(algorithm.query())
    return answers


def oracle_states(algorithm):
    return [
        (c.start, canon(c.oracle.state_dict())) for c in algorithm.checkpoints
    ]


@pytest.mark.parametrize("framework", ["ic", "sic"])
@pytest.mark.parametrize("oracle", ["sieve", "threshold"])
def test_columnar_state_roundtrip_continues_identically(framework, oracle):
    cls = FRAMEWORKS[framework]

    def factory():
        return cls(
            window_size=40, k=3, beta=0.25, oracle=oracle, columnar=True
        )

    batches = list(batched(random_stream(120, 8, seed=1), 5))
    reference = factory()
    expected = drive(reference, batches)

    half = factory()
    drive(half, batches[:12])
    document = algorithm_to_state(half)
    restored = algorithm_from_state(document)
    assert restored.columnar, (framework, oracle)
    assert restored.columnar_kernel is not None
    # The restored kernel columns describe the same oracle state.
    assert oracle_states(restored) == oracle_states(half)
    # Continuation is bit-identical: times, seeds, exact float values.
    assert drive(restored, batches[12:]) == expected[12:]
    assert oracle_states(restored) == oracle_states(reference)


def test_columnar_crash_recovery(tmp_path):
    def factory():
        return InfluentialCheckpoints(
            window_size=40, k=3, beta=0.25, columnar=True
        )

    batches = list(batched(random_stream(120, 8, seed=2), 5))
    expected = drive(factory(), batches)
    doomed = RecoverableEngine.open(
        tmp_path, factory, snapshot_every=4, fsync=False
    )
    for batch in batches[:10]:
        doomed.process(batch)
    doomed.close(snapshot=False)  # simulated SIGKILL: WAL tail only
    restored = RecoverableEngine.open(
        tmp_path, factory, snapshot_every=4, fsync=False
    )
    assert restored.replayed_slides == 2  # snapshot at 8, WAL 9-10
    assert restored.algorithm.columnar
    answers = []
    for batch in batches[10:]:
        restored.process(batch)
        answers.append(restored.query())
    restored.close(snapshot=False)
    assert answers == expected[10:]


def test_pre_columnar_snapshot_opens_into_columnar_kernel():
    """A snapshot written before the kernel existed (no ``columnar`` key)
    auto-selects the columnar plane on restore — and the kernel continues
    the object plane's stream bit-identically."""
    batches = list(batched(random_stream(120, 8, seed=3), 5))
    reference = InfluentialCheckpoints(
        window_size=40, k=3, beta=0.25, columnar=False
    )
    expected = drive(reference, batches)

    old = InfluentialCheckpoints(window_size=40, k=3, beta=0.25, columnar=False)
    drive(old, batches[:12])
    assert not old.columnar
    document = algorithm_to_state(old)
    assert document["columnar"] is False
    del document["columnar"]  # simulate the pre-kernel document schema
    restored = algorithm_from_state(document)
    assert restored.columnar
    assert restored.columnar_kernel is not None
    assert drive(restored, batches[12:]) == expected[12:]
    assert oracle_states(restored) == oracle_states(reference)


def test_explicit_object_plane_choice_survives_roundtrip():
    engine = InfluentialCheckpoints(
        window_size=40, k=3, beta=0.25, columnar=False
    )
    drive(engine, list(batched(random_stream(60, 6, seed=4), 5)))
    restored = algorithm_from_state(algorithm_to_state(engine))
    assert not restored.columnar
    assert restored.columnar_kernel is None


def test_columnar_snapshot_opens_on_numpy_event_path():
    """A snapshot from a C-kernel run restores fine when the compiled
    kernel is unavailable (the numpy path produces identical columns)."""
    batches = list(batched(random_stream(120, 8, seed=5), 5))
    reference = InfluentialCheckpoints(
        window_size=40, k=3, beta=0.25, columnar=True
    )
    expected = drive(reference, batches)
    half = InfluentialCheckpoints(
        window_size=40, k=3, beta=0.25, columnar=True
    )
    drive(half, batches[:12])
    restored = algorithm_from_state(algorithm_to_state(half))
    restored.columnar_kernel._cfast = None
    assert drive(restored, batches[12:]) == expected[12:]
