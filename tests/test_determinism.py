"""Determinism: identical seeds must yield identical end-to-end results.

Reproducibility is a design requirement (DESIGN.md §6): every stochastic
component takes an explicit seed, and nothing in the frameworks themselves
may depend on hash ordering or wall-clock.
"""

import pytest

from repro.baselines.adapters import IMMAlgorithm, UBIAlgorithm
from repro.core.greedy import WindowedGreedy
from repro.core.ic import InfluentialCheckpoints
from repro.core.sic import SparseInfluentialCheckpoints
from repro.core.stream import batched
from repro.datasets.surrogates import reddit_like, twitter_like
from repro.datasets.synthetic import syn_n, syn_o


def run_twice(make_algorithm, make_stream, slide=25):
    answers = []
    for _ in range(2):
        algorithm = make_algorithm()
        trace = []
        for batch in batched(make_stream(), slide):
            algorithm.process(batch)
            answer = algorithm.query()
            trace.append((answer.time, answer.seeds, answer.value))
        answers.append(trace)
    return answers


@pytest.mark.parametrize("maker", [syn_o, syn_n, reddit_like, twitter_like])
def test_generators_are_deterministic(maker):
    a = list(maker(n_users=200, n_actions=800, seed=11))
    b = list(maker(n_users=200, n_actions=800, seed=11))
    assert a == b
    c = list(maker(n_users=200, n_actions=800, seed=12))
    assert a != c


@pytest.mark.parametrize("make_algorithm", [
    lambda: SparseInfluentialCheckpoints(window_size=200, k=3, beta=0.3),
    lambda: InfluentialCheckpoints(window_size=200, k=3, beta=0.3),
    lambda: WindowedGreedy(window_size=200, k=3),
])
def test_frameworks_are_deterministic(make_algorithm):
    make_stream = lambda: twitter_like(n_users=150, n_actions=800, seed=9)
    first, second = run_twice(make_algorithm, make_stream)
    assert first == second


def test_seeded_baselines_are_deterministic():
    make_stream = lambda: twitter_like(n_users=120, n_actions=600, seed=4)
    for make_algorithm in (
        lambda: IMMAlgorithm(window_size=200, k=3, seed=5, max_rr_sets=400),
        lambda: UBIAlgorithm(window_size=200, k=3, seed=5, rr_samples=200),
    ):
        first, second = run_twice(make_algorithm, make_stream, slide=50)
        assert first == second


def test_quality_metric_is_deterministic():
    from repro.experiments.metrics import StreamEvaluator

    actions = list(syn_n(150, 600, seed=2))
    values = []
    for _ in range(2):
        evaluator = StreamEvaluator(window_size=200)
        evaluator.feed(actions)
        values.append(evaluator.quality({1, 2, 3}, mc_rounds=150, seed=8))
    assert values[0] == values[1]
