"""Unit tests for the IC framework (Algorithm 1)."""

import pytest

from repro.core.actions import Action
from repro.core.ic import InfluentialCheckpoints
from repro.core.stream import batched
from tests.conftest import random_stream


def drive(algorithm, actions, slide=1):
    for batch in batched(actions, slide):
        algorithm.process(batch)
    return algorithm


class TestCheckpointPopulation:
    def test_one_checkpoint_per_action_while_filling(self):
        ic = InfluentialCheckpoints(window_size=5, k=2)
        for i, action in enumerate(random_stream(5, 4, seed=1), start=1):
            ic.process([action])
            assert ic.checkpoint_count == i

    def test_steady_state_keeps_n_checkpoints(self):
        ic = InfluentialCheckpoints(window_size=5, k=2)
        drive(ic, random_stream(30, 4, seed=1))
        assert ic.checkpoint_count == 5

    def test_batch_slides_keep_n_over_l_checkpoints(self):
        ic = InfluentialCheckpoints(window_size=20, k=2)
        drive(ic, random_stream(100, 6, seed=2), slide=5)
        assert ic.checkpoint_count == 4  # ceil(N/L) = 20/5

    def test_oldest_checkpoint_covers_window_exactly(self):
        ic = InfluentialCheckpoints(window_size=6, k=2)
        drive(ic, random_stream(25, 5, seed=3))
        oldest = ic.checkpoints[0]
        assert oldest.start == ic.now - ic.window_size + 1

    def test_checkpoint_starts_are_increasing(self):
        ic = InfluentialCheckpoints(window_size=8, k=2)
        drive(ic, random_stream(40, 5, seed=4), slide=2)
        starts = [c.start for c in ic.checkpoints]
        assert starts == sorted(starts)


class TestQuery:
    def test_query_before_any_action(self):
        ic = InfluentialCheckpoints(window_size=4, k=2)
        result = ic.query()
        assert result.seeds == frozenset()
        assert result.value == 0.0
        assert result.time == 0

    def test_query_returns_oldest_checkpoint_solution(self):
        ic = InfluentialCheckpoints(window_size=6, k=2)
        drive(ic, random_stream(30, 5, seed=5))
        result = ic.query()
        oldest = ic.checkpoints[0]
        assert result.seeds == oldest.seeds
        assert result.value == oldest.value
        assert result.time == ic.now

    def test_seed_count_respects_k(self):
        ic = InfluentialCheckpoints(window_size=10, k=3)
        drive(ic, random_stream(50, 8, seed=6))
        assert len(ic.query().seeds) <= 3


class TestOracleSelection:
    @pytest.mark.parametrize("oracle", ["sieve", "threshold", "blog_watch", "mkc"])
    def test_all_oracles_usable(self, oracle):
        ic = InfluentialCheckpoints(window_size=8, k=2, oracle=oracle)
        drive(ic, random_stream(30, 6, seed=7))
        assert ic.query().value > 0

    def test_unknown_oracle_raises_on_first_checkpoint(self):
        ic = InfluentialCheckpoints(window_size=4, k=2, oracle="bogus")
        with pytest.raises(KeyError):
            ic.process([Action.root(1, 0)])


class TestConstructorValidation:
    """Degenerate parameters fail fast with the offending value (uniform
    with SIC, instead of silently misbehaving)."""

    @pytest.mark.parametrize("window_size", [0, -1, -100])
    def test_rejects_non_positive_window(self, window_size):
        with pytest.raises(ValueError, match=str(window_size)):
            InfluentialCheckpoints(window_size=window_size, k=2)

    @pytest.mark.parametrize("k", [0, -3])
    def test_rejects_non_positive_k(self, k):
        with pytest.raises(ValueError, match=str(k)):
            InfluentialCheckpoints(window_size=4, k=k)

    @pytest.mark.parametrize("interval", [0, -2])
    def test_rejects_non_positive_checkpoint_interval(self, interval):
        with pytest.raises(ValueError, match=str(interval)):
            InfluentialCheckpoints(
                window_size=4, k=2, checkpoint_interval=interval
            )


class TestCheckpointInterval:
    def test_interval_thins_the_population(self):
        dense = drive(
            InfluentialCheckpoints(window_size=20, k=2),
            random_stream(100, 6, seed=2),
        )
        sparse = drive(
            InfluentialCheckpoints(window_size=20, k=2, checkpoint_interval=4),
            random_stream(100, 6, seed=2),
        )
        assert sparse.checkpoint_interval == 4
        assert sparse.checkpoint_count * 3 <= dense.checkpoint_count

    def test_interval_answer_covers_a_window_superset(self):
        ic = drive(
            InfluentialCheckpoints(window_size=12, k=2, checkpoint_interval=3),
            random_stream(60, 6, seed=3),
        )
        oldest = ic.checkpoints[0]
        # Like a misaligned slide: the answering suffix may start earlier
        # than the window, never later.
        assert oldest.start <= ic.now - ic.window_size + 1
        assert ic.query().value > 0

    def test_interval_one_matches_default_exactly(self):
        actions = random_stream(80, 6, seed=4)
        default = drive(InfluentialCheckpoints(window_size=16, k=2), actions)
        explicit = drive(
            InfluentialCheckpoints(window_size=16, k=2, checkpoint_interval=1),
            actions,
        )
        assert default.query() == explicit.query()
        assert [c.start for c in default.checkpoints] == [
            c.start for c in explicit.checkpoints
        ]


class TestMisalignedSlides:
    def test_slide_not_dividing_window_keeps_superset_checkpoint(self):
        # N=8, L=3: starts at 1,4,7,10,...; the answering checkpoint covers
        # a superset of the window rather than a strict subset.
        ic = InfluentialCheckpoints(window_size=8, k=2)
        drive(ic, random_stream(30, 5, seed=8), slide=3)
        oldest = ic.checkpoints[0]
        assert oldest.start <= ic.now - ic.window_size + 1

    def test_empty_batch_is_noop(self):
        ic = InfluentialCheckpoints(window_size=4, k=2)
        ic.process([])
        assert ic.checkpoint_count == 0
