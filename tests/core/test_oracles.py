"""Unit tests for the four checkpoint oracles and the registry."""

import itertools

import pytest

from repro.core.actions import Action
from repro.core.diffusion import DiffusionForest
from repro.core.influence_index import AppendOnlyInfluenceIndex
from repro.core.oracles import (
    BlogWatchOracle,
    MkCOracle,
    SieveStreamingOracle,
    ThresholdStreamOracle,
    make_oracle,
    oracle_names,
)
from repro.influence.functions import (
    CardinalityInfluence,
    ConformityAwareInfluence,
    WeightedCardinalityInfluence,
)
from tests.conftest import random_stream

ALL_ORACLES = ["sieve", "threshold", "blog_watch", "mkc"]
GENERAL_ORACLES = ["sieve", "threshold"]


def drive(oracle_name, actions, k=2, func=None, **params):
    """Feed a stream through one oracle via the SSM steps."""
    func = func if func is not None else CardinalityInfluence()
    index = AppendOnlyInfluenceIndex()
    oracle = make_oracle(oracle_name, k=k, func=func, index=index, **params)
    forest = DiffusionForest()
    for action in actions:
        record = forest.add(action)
        for user in index.add(record):
            oracle.process(user, record.user)
    return oracle, index


def brute_force_optimum(index, k, func=None):
    """Exact OPT over the append-only index by exhaustive search."""
    func = func if func is not None else CardinalityInfluence()
    users = [u for u in range(50) if u in index]
    best = 0.0
    for size in range(1, min(k, len(users)) + 1):
        for combo in itertools.combinations(users, size):
            best = max(best, func.evaluate(combo, index))
    return best


class TestRegistry:
    def test_all_four_registered(self):
        assert set(ALL_ORACLES) <= set(oracle_names())

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown oracle"):
            make_oracle("nope", k=1, func=CardinalityInfluence(),
                        index=AppendOnlyInfluenceIndex())

    def test_classes_match_names(self):
        index = AppendOnlyInfluenceIndex()
        func = CardinalityInfluence()
        assert isinstance(
            make_oracle("sieve", k=1, func=func, index=index),
            SieveStreamingOracle,
        )
        assert isinstance(
            make_oracle("threshold", k=1, func=func, index=index),
            ThresholdStreamOracle,
        )
        assert isinstance(
            make_oracle("blog_watch", k=1, func=func, index=index),
            BlogWatchOracle,
        )
        assert isinstance(
            make_oracle("mkc", k=1, func=func, index=index), MkCOracle
        )


class TestCommonBehaviour:
    @pytest.mark.parametrize("name", ALL_ORACLES)
    def test_fresh_oracle_is_empty(self, name):
        oracle = make_oracle(
            name, k=2, func=CardinalityInfluence(),
            index=AppendOnlyInfluenceIndex(),
        )
        assert oracle.value == 0.0
        assert oracle.seeds == frozenset()

    @pytest.mark.parametrize("name", ALL_ORACLES)
    def test_rejects_non_positive_k(self, name):
        with pytest.raises(ValueError, match="positive"):
            make_oracle(
                name, k=0, func=CardinalityInfluence(),
                index=AppendOnlyInfluenceIndex(),
            )

    @pytest.mark.parametrize("name", ALL_ORACLES)
    def test_cardinality_constraint_respected(self, name):
        actions = random_stream(120, 10, seed=3)
        oracle, _ = drive(name, actions, k=3)
        assert len(oracle.seeds) <= 3

    @pytest.mark.parametrize("name", ALL_ORACLES)
    def test_value_is_monotone_over_time(self, name):
        func = CardinalityInfluence()
        index = AppendOnlyInfluenceIndex()
        oracle = make_oracle(name, k=2, func=func, index=index)
        forest = DiffusionForest()
        last = 0.0
        for action in random_stream(150, 9, seed=5):
            record = forest.add(action)
            for user in index.add(record):
                oracle.process(user, record.user)
            assert oracle.value >= last
            last = oracle.value

    @pytest.mark.parametrize("name", ALL_ORACLES)
    def test_reported_value_is_achievable(self, name):
        """The snapshot value never overstates f of the snapshot seeds."""
        actions = random_stream(150, 9, seed=8)
        oracle, index = drive(name, actions, k=3)
        func = CardinalityInfluence()
        assert func.evaluate(oracle.seeds, index) >= oracle.value - 1e-9

    @pytest.mark.parametrize("name", ALL_ORACLES)
    def test_single_user_stream(self, name):
        actions = [Action.root(t, 0) for t in range(1, 8)]
        oracle, _ = drive(name, actions, k=2)
        assert oracle.seeds == frozenset({0})
        assert oracle.value == 1.0


class TestApproximationQuality:
    @pytest.mark.parametrize("name,ratio", [
        ("sieve", 0.5 - 0.2),
        ("threshold", 0.5 - 0.2),
        ("blog_watch", 0.25),
        ("mkc", 0.25),
    ])
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_ratio_on_random_streams(self, name, ratio, seed):
        actions = random_stream(80, 8, seed=seed)
        params = {"beta": 0.2} if name in GENERAL_ORACLES else {}
        oracle, index = drive(name, actions, k=2, **params)
        opt = brute_force_optimum(index, k=2)
        assert oracle.value >= ratio * opt - 1e-9

    @pytest.mark.parametrize("name", GENERAL_ORACLES)
    def test_invalid_beta_rejected(self, name):
        for beta in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError, match="beta"):
                make_oracle(
                    name, k=1, func=CardinalityInfluence(),
                    index=AppendOnlyInfluenceIndex(), beta=beta,
                )


class TestWeightedFunction:
    @pytest.mark.parametrize("name", ALL_ORACLES)
    def test_weighted_cardinality_supported(self, name):
        weights = {u: float(u + 1) for u in range(10)}
        func = WeightedCardinalityInfluence(weights)
        actions = random_stream(100, 10, seed=11)
        oracle, index = drive(name, actions, k=2, func=func)
        assert oracle.value > 0
        assert func.evaluate(oracle.seeds, index) >= oracle.value - 1e-9


class TestGeneralFunctionSupport:
    @pytest.mark.parametrize("name", GENERAL_ORACLES)
    def test_non_modular_function_works(self, name):
        func = ConformityAwareInfluence({}, {}, 0.6, 0.7)
        actions = random_stream(60, 6, seed=21)
        oracle, index = drive(name, actions, k=2, func=func)
        assert oracle.value > 0
        assert func.evaluate(oracle.seeds, index) >= oracle.value - 1e-9

    @pytest.mark.parametrize("name", ["blog_watch", "mkc"])
    def test_swap_oracles_reject_non_modular(self, name):
        func = ConformityAwareInfluence({}, {}, 0.5, 0.5)
        with pytest.raises(ValueError, match="modular"):
            make_oracle(
                name, k=1, func=func, index=AppendOnlyInfluenceIndex()
            )


class TestSieveInternals:
    def test_instances_track_opt_range(self):
        actions = random_stream(120, 10, seed=2)
        oracle, _ = drive("sieve", actions, k=3, beta=0.2)
        assert oracle.instance_count > 0
        # |Omega| = O(log k / beta): generous upper bound check.
        assert oracle.instance_count <= 60
        assert oracle.max_singleton >= 1.0

    def test_threshold_instances(self):
        actions = random_stream(120, 10, seed=2)
        oracle, _ = drive("threshold", actions, k=3, beta=0.2)
        assert 0 < oracle.instance_count <= 60


class TestSwapInternals:
    @pytest.mark.parametrize("name", ["blog_watch", "mkc"])
    def test_cover_counts_consistent(self, name):
        func = CardinalityInfluence()
        index = AppendOnlyInfluenceIndex()
        oracle = make_oracle(name, k=3, func=func, index=index)
        forest = DiffusionForest()
        for action in random_stream(200, 8, seed=31):
            record = forest.add(action)
            for user in index.add(record):
                oracle.process(user, record.user)
            expected = {}
            for seed_user in oracle.current_seeds:
                for member in oracle._counted[seed_user]:
                    expected[member] = expected.get(member, 0) + 1
            assert expected == oracle._cover_counts
