"""Adversarial and property-based stress tests for the checkpoint oracles.

The ratio tests in test_oracles.py use benign random streams; these
construct orderings known to stress threshold/swap algorithms — big
elements arriving first, last, or sandwiched between noise — plus
hypothesis-driven random instances with weighted functions.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.actions import Action
from repro.core.diffusion import DiffusionForest
from repro.core.influence_index import AppendOnlyInfluenceIndex
from repro.core.oracles import make_oracle
from repro.influence.functions import (
    CardinalityInfluence,
    WeightedCardinalityInfluence,
)
from tests.conftest import random_stream

ALL = ["sieve", "threshold", "blog_watch", "mkc", "greedy"]
RATIO = {
    "sieve": 0.5 - 0.2,
    "threshold": 0.5 - 0.2,
    "blog_watch": 0.25,
    "mkc": 0.25,
    "greedy": 1 - 1 / 2.718281828,
}


def drive_actions(name, actions, k=2, func=None):
    func = func if func is not None else CardinalityInfluence()
    index = AppendOnlyInfluenceIndex()
    params = {"beta": 0.2} if name in ("sieve", "threshold") else {}
    if name == "greedy":
        params = {"refresh_factor": 1.0}
    oracle = make_oracle(name, k=k, func=func, index=index, **params)
    forest = DiffusionForest()
    for action in actions:
        record = forest.add(action)
        for user in index.add(record):
            oracle.process(user, record.user)
    return oracle, index


def optimum(index, k, func=None, universe=range(30)):
    func = func if func is not None else CardinalityInfluence()
    users = [u for u in universe if u in index]
    best = 0.0
    for combo in itertools.combinations(users, min(k, len(users))):
        best = max(best, func.evaluate(combo, index))
    return best


def star_burst(hub: int, leaves, start: int):
    """One root by ``hub`` answered by each of ``leaves`` in order."""
    actions = [Action.root(start, hub)]
    for offset, leaf in enumerate(leaves, start=1):
        actions.append(Action.response(start + offset, leaf, start))
    return actions


class TestAdversarialOrderings:
    @pytest.mark.parametrize("name", ALL)
    def test_giant_first_then_noise(self, name):
        """A dominant influencer arrives before anything else."""
        actions = star_burst(0, range(10, 22), start=1)
        t = actions[-1].time
        for i in range(1, 9):
            actions.extend(star_burst(i, [22 + i], start=t + 1))
            t = actions[-1].time
        oracle, index = drive_actions(name, actions, k=2)
        assert oracle.value >= RATIO[name] * optimum(index, 2) - 1e-9

    @pytest.mark.parametrize("name", ALL)
    def test_giant_last_after_noise(self, name):
        """Swap oracles must displace early mediocre picks."""
        actions = []
        t = 0
        for i in range(1, 9):
            actions.extend(star_burst(i, [22 + i], start=t + 1))
            t = actions[-1].time
        actions.extend(star_burst(0, range(10, 22), start=t + 1))
        oracle, index = drive_actions(name, actions, k=2)
        assert oracle.value >= RATIO[name] * optimum(index, 2) - 1e-9

    @pytest.mark.parametrize("name", ALL)
    def test_two_giants_between_noise(self, name):
        actions = []
        t = 0
        actions.extend(star_burst(1, [10], start=t + 1)); t = actions[-1].time
        actions.extend(star_burst(8, range(11, 19), start=t + 1)); t = actions[-1].time
        actions.extend(star_burst(2, [19], start=t + 1)); t = actions[-1].time
        actions.extend(star_burst(9, range(20, 28), start=t + 1)); t = actions[-1].time
        oracle, index = drive_actions(name, actions, k=2)
        assert oracle.value >= RATIO[name] * optimum(index, 2) - 1e-9
        # The two hubs together cover everything: good oracles find both.
        if name in ("sieve", "threshold", "greedy"):
            assert oracle.value >= 0.5 * optimum(index, 2)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    name=st.sampled_from(ALL),
    k=st.integers(1, 3),
)
def test_ratio_with_weighted_function(seed, name, k):
    """The guarantees hold for weighted (still modular) objectives."""
    weights = {u: ((u * 7) % 5) + 0.5 for u in range(8)}
    func = WeightedCardinalityInfluence(weights)
    actions = random_stream(60, 8, seed=seed)
    oracle, index = drive_actions(name, actions, k=k, func=func)
    best = optimum(index, k, func=func, universe=range(8))
    assert oracle.value >= RATIO[name] * best - 1e-9


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_oracles_agree_on_trivial_instances(seed):
    """With one user, every oracle returns exactly that user."""
    actions = [Action.root(t, 0) for t in range(1, 12)]
    for name in ALL:
        oracle, _ = drive_actions(name, actions, k=3)
        assert oracle.seeds == frozenset({0})
        assert oracle.value == 1.0
