"""Unit tests for the multi-query engine."""

import pytest

from repro.core.greedy import WindowedGreedy
from repro.core.multi import MultiQueryEngine
from repro.core.sic import SparseInfluentialCheckpoints
from repro.core.stream import batched
from repro.influence.queries import FilteredSIM
from tests.conftest import make_paper_stream, random_stream


class TestRegistration:
    def test_add_and_names(self):
        engine = MultiQueryEngine()
        engine.add("a", WindowedGreedy(window_size=8, k=2))
        engine.add("b", FilteredSIM(lambda a: True, window_size=8, k=2))
        assert engine.names() == ["a", "b"]
        assert "a" in engine and "b" in engine and "c" not in engine
        assert len(engine) == 2

    def test_duplicate_name_rejected(self):
        engine = MultiQueryEngine().add("a", WindowedGreedy(window_size=8, k=2))
        with pytest.raises(ValueError, match="'a' already registered"):
            engine.add("a", WindowedGreedy(window_size=8, k=2))
        # A filtered query under an algorithm's name collides too (and
        # vice versa): the two namespaces are one board.
        with pytest.raises(ValueError, match="'a' already registered"):
            engine.add("a", FilteredSIM(lambda a: True, window_size=8, k=2))

    def test_remove_returns_live_query(self):
        greedy = WindowedGreedy(window_size=8, k=2)
        engine = MultiQueryEngine().add("a", greedy)
        assert engine.remove("a") is greedy
        assert engine.names() == []
        # The name is free again after removal.
        engine.add("a", WindowedGreedy(window_size=8, k=1))
        assert engine.names() == ["a"]

    def test_remove_filtered(self):
        query = FilteredSIM(lambda a: True, window_size=8, k=2)
        engine = MultiQueryEngine().add("f", query)
        assert engine.remove("f") is query
        assert "f" not in engine

    def test_remove_unknown_names_offender(self):
        engine = MultiQueryEngine().add("a", WindowedGreedy(window_size=8, k=2))
        with pytest.raises(KeyError, match="'missing'"):
            engine.remove("missing")

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError, match="expected"):
            MultiQueryEngine().add("a", object())

    def test_chaining(self):
        engine = (
            MultiQueryEngine()
            .add("a", WindowedGreedy(window_size=8, k=2))
            .add("b", WindowedGreedy(window_size=8, k=1))
        )
        assert len(engine.names()) == 2


class TestProcessing:
    def test_all_queries_advance_together(self):
        engine = (
            MultiQueryEngine()
            .add("greedy", WindowedGreedy(window_size=8, k=2))
            .add("sic", SparseInfluentialCheckpoints(window_size=8, k=2, beta=0.3))
            .add("filtered", FilteredSIM(lambda a: True, window_size=8, k=2))
        )
        for batch in batched(make_paper_stream(), 2):
            engine.process(batch)
        assert engine.actions_processed == 10
        answers = engine.query_all()
        assert set(answers) == {"greedy", "sic", "filtered"}
        assert answers["greedy"].seeds == {2, 3}
        assert answers["greedy"].value == 6.0

    def test_engine_matches_standalone(self):
        actions = random_stream(80, 8, seed=2)
        standalone = WindowedGreedy(window_size=20, k=2)
        engine = MultiQueryEngine().add("q", WindowedGreedy(window_size=20, k=2))
        for batch in batched(actions, 5):
            standalone.process(batch)
            engine.process(batch)
        assert engine.query("q") == standalone.query()

    def test_empty_batch_is_noop(self):
        engine = MultiQueryEngine().add("a", WindowedGreedy(window_size=4, k=1))
        engine.process([])
        assert engine.actions_processed == 0

    def test_unknown_query(self):
        engine = MultiQueryEngine()
        with pytest.raises(KeyError, match="unknown query"):
            engine.query("missing")

    def test_filtered_query_sees_substream(self):
        engine = MultiQueryEngine().add(
            "evens",
            FilteredSIM(
                lambda a: a.user % 2 == 0,
                window_size=20,
                k=2,
                algorithm=WindowedGreedy(window_size=20, k=2),
            ),
        )
        for batch in batched(random_stream(40, 6, seed=3), 4):
            engine.process(batch)
        answer = engine.query("evens")
        assert all(u % 2 == 0 for u in answer.seeds)

    def test_now_tracks_stream_clock(self):
        engine = MultiQueryEngine().add("a", WindowedGreedy(window_size=8, k=2))
        assert engine.now == 0
        for batch in batched(make_paper_stream(), 3):
            engine.process(batch)
        assert engine.now == 10


class TestStatsAndPublication:
    def test_query_stats_shapes(self):
        engine = (
            MultiQueryEngine()
            .add("plain", WindowedGreedy(window_size=8, k=2))
            .add(
                "evens",
                FilteredSIM(lambda a: a.user % 2 == 0, window_size=8, k=2),
            )
        )
        engine.process(make_paper_stream())
        stats = engine.query_stats()
        assert set(stats) == {"plain", "evens"}
        assert stats["plain"]["kind"] == "algorithm"
        assert stats["plain"]["actions_processed"] == 10
        assert stats["plain"]["time"] == 10
        assert stats["evens"]["kind"] == "filtered"
        assert stats["evens"]["observed"] == 10
        assert 0 < stats["evens"]["matched"] < 10

    def test_publish_hook_fires_per_slide_with_full_board(self):
        engine = (
            MultiQueryEngine()
            .add("a", WindowedGreedy(window_size=8, k=2))
            .add("b", WindowedGreedy(window_size=8, k=1))
        )
        published = []
        engine.add_publish_hook(lambda answers: published.append(answers))
        batches = list(batched(make_paper_stream(), 2))
        for batch in batches:
            engine.process(batch)
        assert len(published) == len(batches)
        assert all(set(board) == {"a", "b"} for board in published)
        # The last published board is the live answer.
        assert published[-1] == engine.query_all()

    def test_publish_hook_skipped_on_empty_batch(self):
        engine = MultiQueryEngine().add("a", WindowedGreedy(window_size=8, k=2))
        published = []
        engine.add_publish_hook(lambda answers: published.append(answers))
        engine.process([])
        assert published == []


class TestState:
    def test_state_roundtrip_continues_identically(self):
        from repro.persistence.serialize import (
            algorithm_from_state,
            algorithm_to_state,
        )

        actions = random_stream(120, 10, seed=5)

        def build():
            return (
                MultiQueryEngine()
                .add("greedy", WindowedGreedy(window_size=30, k=2))
                .add(
                    "sic",
                    SparseInfluentialCheckpoints(window_size=30, k=2, beta=0.3),
                )
            )

        reference = build()
        subject = build()
        for batch in batched(actions[:60], 5):
            reference.process(batch)
            subject.process(batch)
        restored = algorithm_from_state(algorithm_to_state(subject))
        assert restored.names() == subject.names()
        assert restored.now == subject.now
        assert restored.actions_processed == subject.actions_processed
        for batch in batched(actions[60:], 5):
            reference.process(batch)
            restored.process(batch)
        assert restored.query_all() == reference.query_all()

    def test_filtered_queries_refuse_serialization(self):
        engine = MultiQueryEngine().add(
            "f", FilteredSIM(lambda a: True, window_size=8, k=2)
        )
        with pytest.raises(ValueError, match="not serializable.*'f'"):
            engine.to_state()
