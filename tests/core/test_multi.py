"""Unit tests for the multi-query engine."""

import pytest

from repro.core.greedy import WindowedGreedy
from repro.core.multi import MultiQueryEngine
from repro.core.sic import SparseInfluentialCheckpoints
from repro.core.stream import batched
from repro.influence.queries import FilteredSIM
from tests.conftest import make_paper_stream, random_stream


class TestRegistration:
    def test_add_and_names(self):
        engine = MultiQueryEngine()
        engine.add("a", WindowedGreedy(window_size=8, k=2))
        engine.add("b", FilteredSIM(lambda a: True, window_size=8, k=2))
        assert engine.names == ["a", "b"]

    def test_duplicate_name_rejected(self):
        engine = MultiQueryEngine().add("a", WindowedGreedy(window_size=8, k=2))
        with pytest.raises(ValueError, match="already registered"):
            engine.add("a", WindowedGreedy(window_size=8, k=2))

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError, match="expected"):
            MultiQueryEngine().add("a", object())

    def test_chaining(self):
        engine = (
            MultiQueryEngine()
            .add("a", WindowedGreedy(window_size=8, k=2))
            .add("b", WindowedGreedy(window_size=8, k=1))
        )
        assert len(engine.names) == 2


class TestProcessing:
    def test_all_queries_advance_together(self):
        engine = (
            MultiQueryEngine()
            .add("greedy", WindowedGreedy(window_size=8, k=2))
            .add("sic", SparseInfluentialCheckpoints(window_size=8, k=2, beta=0.3))
            .add("filtered", FilteredSIM(lambda a: True, window_size=8, k=2))
        )
        for batch in batched(make_paper_stream(), 2):
            engine.process(batch)
        assert engine.actions_processed == 10
        answers = engine.query_all()
        assert set(answers) == {"greedy", "sic", "filtered"}
        assert answers["greedy"].seeds == {2, 3}
        assert answers["greedy"].value == 6.0

    def test_engine_matches_standalone(self):
        actions = random_stream(80, 8, seed=2)
        standalone = WindowedGreedy(window_size=20, k=2)
        engine = MultiQueryEngine().add("q", WindowedGreedy(window_size=20, k=2))
        for batch in batched(actions, 5):
            standalone.process(batch)
            engine.process(batch)
        assert engine.query("q") == standalone.query()

    def test_empty_batch_is_noop(self):
        engine = MultiQueryEngine().add("a", WindowedGreedy(window_size=4, k=1))
        engine.process([])
        assert engine.actions_processed == 0

    def test_unknown_query(self):
        engine = MultiQueryEngine()
        with pytest.raises(KeyError, match="unknown query"):
            engine.query("missing")

    def test_filtered_query_sees_substream(self):
        engine = MultiQueryEngine().add(
            "evens",
            FilteredSIM(
                lambda a: a.user % 2 == 0,
                window_size=20,
                k=2,
                algorithm=WindowedGreedy(window_size=20, k=2),
            ),
        )
        for batch in batched(random_stream(40, 6, seed=3), 4):
            engine.process(batch)
        answer = engine.query("evens")
        assert all(u % 2 == 0 for u in answer.seeds)
