"""Unit tests for stream helpers (validation, renumbering, batching)."""

import pytest

from repro.core.actions import Action
from repro.core.stream import ListStream, batched, renumber, validate_stream


class TestValidateStream:
    def test_passes_valid_stream(self, paper_stream):
        assert list(validate_stream(paper_stream)) == paper_stream

    def test_rejects_non_increasing_timestamps(self):
        actions = [Action.root(1, 0), Action.root(1, 1)]
        with pytest.raises(ValueError, match="strictly increasing"):
            list(validate_stream(actions))

    def test_rejects_decreasing_timestamps(self):
        actions = [Action.root(5, 0), Action.root(2, 1)]
        with pytest.raises(ValueError, match="strictly increasing"):
            list(validate_stream(actions))

    def test_rejects_unseen_parent(self):
        actions = [Action.root(1, 0), Action.response(5, 1, 3)]
        with pytest.raises(ValueError, match="unseen action"):
            list(validate_stream(actions))

    def test_allows_timestamp_gaps(self):
        actions = [Action.root(1, 0), Action.response(10, 1, 1)]
        assert len(list(validate_stream(actions))) == 2

    def test_is_lazy(self):
        # The generator validates element by element.
        iterator = validate_stream([Action.root(1, 0), Action.root(1, 1)])
        assert next(iterator).time == 1
        with pytest.raises(ValueError):
            next(iterator)


class TestListStream:
    def test_len_iter_getitem(self, paper_stream):
        stream = ListStream(paper_stream)
        assert len(stream) == 10
        assert stream[0].time == 1
        assert [a.time for a in stream] == list(range(1, 11))

    def test_users(self, paper_stream):
        assert ListStream(paper_stream).users == {1, 2, 3, 4, 5, 6}

    def test_validates_eagerly(self):
        with pytest.raises(ValueError):
            ListStream([Action.root(2, 0), Action.root(2, 1)])


class TestRenumber:
    def test_assigns_contiguous_times(self):
        actions = renumber([(7, None), (9, 0), (7, 1)])
        assert [a.time for a in actions] == [1, 2, 3]
        assert [a.user for a in actions] == [7, 9, 7]

    def test_links_parents_by_position(self):
        actions = renumber([(1, None), (2, 0), (3, 1)])
        assert actions[1].parent == 1
        assert actions[2].parent == 2

    def test_rejects_forward_reference(self):
        with pytest.raises(ValueError, match="earlier event"):
            renumber([(1, 1), (2, None)])

    def test_rejects_self_reference(self):
        with pytest.raises(ValueError, match="earlier event"):
            renumber([(1, None), (2, 1)])

    def test_empty(self):
        assert renumber([]) == []


class TestBatched:
    def test_exact_batches(self, paper_stream):
        batches = list(batched(paper_stream, 5))
        assert [len(b) for b in batches] == [5, 5]
        assert batches[0][0].time == 1
        assert batches[1][-1].time == 10

    def test_ragged_final_batch(self, paper_stream):
        batches = list(batched(paper_stream, 4))
        assert [len(b) for b in batches] == [4, 4, 2]

    def test_batch_of_one(self, paper_stream):
        assert len(list(batched(paper_stream, 1))) == 10

    def test_oversized_batch(self, paper_stream):
        batches = list(batched(paper_stream, 100))
        assert len(batches) == 1 and len(batches[0]) == 10

    def test_rejects_non_positive_size(self, paper_stream):
        with pytest.raises(ValueError, match="positive"):
            list(batched(paper_stream, 0))

    def test_consumes_generators(self):
        gen = (Action.root(t, 0) for t in range(1, 8))
        assert [len(b) for b in batched(gen, 3)] == [3, 3, 1]
