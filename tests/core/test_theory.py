"""Property-based validation of the paper's theoretical claims.

* Theorem 2 — IC preserves the oracle's approximation ratio on windows.
* Theorem 3/4 — SIC maintains an ε(1−β)/2 approximation (= 1/4 − β with
  SieveStreaming).
* Theorem 5 — SIC keeps O(log N / β) checkpoints.
* Lemma 1 — the optimal oracle is monotone and subadditive.
* Checkpoint monotonicity (required by Lemma 2).
"""

import itertools
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diffusion import DiffusionForest
from repro.core.ic import InfluentialCheckpoints
from repro.core.influence_index import AppendOnlyInfluenceIndex, WindowInfluenceIndex
from repro.core.sic import SparseInfluentialCheckpoints
from tests.conftest import random_stream

N_USERS = 6


def window_optimum(actions, window_size, k):
    """Brute-force OPT_t for the final window."""
    forest = DiffusionForest()
    index = WindowInfluenceIndex()
    records = []
    for action in actions:
        record = forest.add(action)
        records.append(record)
        index.add(record)
        if len(records) > window_size:
            index.remove(records.pop(0))
    users = list(index.influencers())
    best = 0
    for size in range(1, min(k, len(users)) + 1):
        for combo in itertools.combinations(users, size):
            best = max(best, len(index.coverage(combo)))
    return best, index


def segment_optimum(actions, start, end, k):
    """Brute-force OPT over the contiguous actions [start, end] (1-based)."""
    forest = DiffusionForest()
    for action in actions:  # resolve chains against the full history
        forest.add(action)
    index = AppendOnlyInfluenceIndex()
    for t in range(start, end + 1):
        index.add(forest.record(t))
    users = [u for u in range(N_USERS) if u in index]
    best = 0
    for size in range(1, min(k, len(users)) + 1):
        for combo in itertools.combinations(users, size):
            best = max(best, len(index.coverage(combo)))
    return best


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), window=st.integers(4, 20))
def test_theorem2_ic_ratio(seed, window):
    """IC with SieveStreaming is (1/2 − β)-approximate on every window."""
    beta = 0.2
    actions = random_stream(45, N_USERS, seed=seed)
    ic = InfluentialCheckpoints(window_size=window, k=2, beta=beta)
    for action in actions:
        ic.process([action])
    opt, index = window_optimum(actions, window, k=2)
    answer = ic.query()
    achieved = len(index.coverage(answer.seeds))
    assert achieved >= (0.5 - beta) * opt - 1e-9


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), window=st.integers(4, 20))
def test_theorem3_sic_ratio(seed, window):
    """SIC with SieveStreaming is (1/4 − β)-approximate on every window."""
    beta = 0.2
    actions = random_stream(45, N_USERS, seed=seed)
    sic = SparseInfluentialCheckpoints(window_size=window, k=2, beta=beta)
    for action in actions:
        sic.process([action])
    opt, index = window_optimum(actions, window, k=2)
    answer = sic.query()
    achieved = len(index.coverage(answer.seeds))
    assert achieved >= (0.25 - beta) * opt - 1e-9


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_theorem5_checkpoint_bound(seed):
    """SIC never exceeds 2·log N / log(1/(1−β)) + O(1) checkpoints."""
    beta = 0.3
    window = 64
    sic = SparseInfluentialCheckpoints(window_size=window, k=2, beta=beta)
    bound = 2 * math.log(window) / math.log(1.0 / (1.0 - beta)) + 3
    for action in random_stream(200, N_USERS, seed=seed):
        sic.process([action])
        assert sic.checkpoint_count <= bound


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    boundaries=st.tuples(st.integers(1, 12), st.integers(1, 12), st.integers(1, 12)),
)
def test_lemma1_monotone_and_subadditive(seed, boundaries):
    """OPT over segments: monotone in extension, subadditive in splits."""
    actions = random_stream(36, N_USERS, seed=seed)
    a, b, c = sorted(boundaries)
    t1, t2, t3 = a, a + b, min(36, a + b + c)
    k = 2
    opt_13 = segment_optimum(actions, t1, t3, k)
    opt_12 = segment_optimum(actions, t1, t2, k)
    opt_23 = segment_optimum(actions, t2, t3, k)
    assert opt_13 >= opt_12  # monotone
    assert opt_13 >= opt_23  # monotone (prefix extension)
    assert opt_13 <= opt_12 + opt_23  # subadditive


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_checkpoint_values_are_monotone(seed):
    """Every live checkpoint's Λ value is non-decreasing over time."""
    sic = SparseInfluentialCheckpoints(window_size=30, k=2, beta=0.3)
    previous = {}
    for action in random_stream(90, N_USERS, seed=seed):
        sic.process([action])
        for checkpoint in sic.checkpoints:
            if checkpoint.start in previous:
                assert checkpoint.value >= previous[checkpoint.start]
            previous[checkpoint.start] = checkpoint.value
