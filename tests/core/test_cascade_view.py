"""Tests for the cascade ASCII renderer."""

import pytest

from repro.core.actions import Action
from repro.core.cascade_view import cascade_roots, render_cascade
from tests.conftest import random_stream


class TestCascadeRoots:
    def test_paper_stream_cascades(self, paper_stream):
        cascades = cascade_roots(paper_stream)
        assert set(cascades) == {1, 3, 9}
        assert sorted(cascades[1]) == [1, 2, 4]
        assert sorted(cascades[3]) == [3, 5, 6, 7, 8]
        assert sorted(cascades[9]) == [9, 10]

    def test_orphan_becomes_root(self):
        actions = [Action.response(5, 1, 2)]  # parent never seen
        cascades = cascade_roots(actions)
        assert cascades == {5: [5]}

    def test_every_action_in_exactly_one_cascade(self):
        actions = random_stream(80, 6, seed=1)
        cascades = cascade_roots(actions)
        all_members = [t for members in cascades.values() for t in members]
        assert sorted(all_members) == [a.time for a in actions]


class TestRenderCascade:
    def test_paper_cascade_3(self, paper_stream):
        art = render_cascade(paper_stream, 3)
        lines = art.splitlines()
        assert lines[0] == "a3 u3*"
        assert any("a5 u4" in line for line in lines)
        assert any("a8 u4" in line for line in lines)
        # a8 responds to a7, so it must be indented deeper than a7.
        a7_line = next(line for line in lines if "a7" in line)
        a8_line = next(line for line in lines if "a8" in line)
        assert len(a8_line) - len(a8_line.lstrip("│ ")) > len(a7_line) - len(
            a7_line.lstrip("│ ")
        )

    def test_single_root(self):
        art = render_cascade([Action.root(1, 9)], 1)
        assert art == "a1 u9*"

    def test_unknown_root_raises(self, paper_stream):
        with pytest.raises(KeyError, match="no action at time 99"):
            render_cascade(paper_stream, 99)

    def test_connectors(self):
        actions = [
            Action.root(1, 0),
            Action.response(2, 1, 1),
            Action.response(3, 2, 1),
        ]
        art = render_cascade(actions, 1)
        assert "├── a2 u1" in art
        assert "└── a3 u2" in art

    def test_renders_every_descendant(self, paper_stream):
        art = render_cascade(paper_stream, 3)
        for time in (3, 5, 6, 7, 8):
            assert f"a{time} " in art
