"""The two-phase ingest API: resolve once, apply anywhere.

Covers the PR's core acceptance criteria:

* **Split ≡ composed** — ``resolve_slide`` + ``apply_resolved`` gives the
  same per-slide answers as the composed ``process`` path, for IC and SIC
  at L ∈ {1, 5} (including applying a slide resolved by a *different*
  engine's resolver, the routed topology);
* **ResolvedSlide semantics** — projection keeps the global slide
  boundaries, partitioning covers every influence pair exactly once,
  ``slice_after`` implements catch-up redelivery, and the wire codec
  round-trips and refuses unknown versions;
* **SlideResolver** — strict stream-order validation, idempotent
  re-resolution of redelivered actions, and state round-trip;
* **Refusals** — algorithms that need raw actions (windowed greedy)
  refuse pre-resolved slides loudly, and so does a board holding
  filtered queries.
"""

import pytest

from repro.core.actions import Action
from repro.core.greedy import WindowedGreedy
from repro.core.ic import InfluentialCheckpoints
from repro.core.multi import MultiQueryEngine
from repro.core.resolve import (
    RESOLVED_WIRE_VERSION,
    ResolvedSlide,
    SlideResolver,
    partition_slide,
)
from repro.core.sic import SparseInfluentialCheckpoints
from repro.core.stream import batched
from repro.influence.queries import TopicAwareSIM
from repro.sharding.partition import HashPartitioner
from tests.conftest import random_stream

MAKERS = {
    "ic": lambda: InfluentialCheckpoints(window_size=40, k=3, beta=0.3),
    "sic": lambda: SparseInfluentialCheckpoints(window_size=40, k=3, beta=0.3),
}


class TestSplitEqualsComposed:
    @pytest.mark.parametrize("algorithm", ["ic", "sic"])
    @pytest.mark.parametrize("slide", [1, 5])
    def test_resolve_then_apply_matches_process(self, algorithm, slide):
        """One engine split against another composed: identical answers."""
        actions = random_stream(150, 15, seed=51)
        composed = MAKERS[algorithm]()
        split = MAKERS[algorithm]()
        for batch in batched(actions, slide):
            composed.process(batch)
            split.apply_resolved(split.resolve_slide(batch))
            assert split.query() == composed.query()
        assert split.actions_processed == composed.actions_processed
        assert split.now == composed.now

    @pytest.mark.parametrize("algorithm", ["ic", "sic"])
    def test_apply_from_external_resolver_matches_process(self, algorithm):
        """The routed topology: a standalone resolver feeds the engine."""
        actions = random_stream(150, 15, seed=52)
        composed = MAKERS[algorithm]()
        applied = MAKERS[algorithm]()
        resolver = SlideResolver()
        for batch in batched(actions, 5):
            composed.process(batch)
            applied.apply_resolved(resolver.resolve(batch))
            assert applied.query() == composed.query()

    def test_wire_round_trip_preserves_answers(self):
        """apply(from_wire(to_wire(resolved))) ≡ process — the IPC path."""
        actions = random_stream(100, 10, seed=53)
        composed = MAKERS["sic"]()
        applied = MAKERS["sic"]()
        resolver = SlideResolver()
        for batch in batched(actions, 4):
            composed.process(batch)
            wire = resolver.resolve(batch).to_wire()
            applied.apply_resolved(ResolvedSlide.from_wire(wire))
        assert applied.query() == composed.query()

    def test_apply_resolved_rejects_out_of_order_slides(self):
        engine = MAKERS["ic"]()
        resolver = SlideResolver()
        first = resolver.resolve([Action(time=t, user=t % 3) for t in (1, 2, 3)])
        engine.apply_resolved(first)
        with pytest.raises(ValueError, match="out-of-order"):
            engine.apply_resolved(first)

    def test_empty_slide_is_a_no_op(self):
        engine = MAKERS["ic"]()
        engine.apply_resolved(ResolvedSlide.empty())
        assert engine.now == 0
        assert engine.actions_processed == 0


class TestResolvedSlide:
    def _resolved(self, n=12, users=5, seed=54):
        resolver = SlideResolver()
        return resolver.resolve(random_stream(n, users, seed=seed))

    def test_wire_codec_round_trips(self):
        resolved = self._resolved()
        assert ResolvedSlide.from_wire(resolved.to_wire()) == resolved

    def test_wire_version_refusal(self):
        document = self._resolved().to_wire()
        document["v"] = RESOLVED_WIRE_VERSION + 1
        with pytest.raises(ValueError, match="wire version"):
            ResolvedSlide.from_wire(document)
        with pytest.raises(ValueError, match="wire version"):
            ResolvedSlide.from_wire({"start": 1, "last": 2, "count": 1})

    def test_projection_keeps_global_boundaries(self):
        resolved = self._resolved()
        projected = resolved.project(lambda user: user == 0)
        assert projected.start == resolved.start
        assert projected.last == resolved.last
        assert projected.count == resolved.count
        assert all(
            set(r.influencers) <= {0} for r in projected.records
        )
        # Projection is idempotent.
        assert projected.project(lambda user: user == 0) == projected

    def test_partition_covers_every_pair_exactly_once(self):
        resolved = self._resolved(n=40, users=8)
        partitioner = HashPartitioner(3)
        parts = partition_slide(resolved, partitioner)
        assert len(parts) == 3
        total_pairs = {
            (r.time, u) for r in resolved.records for u in r.influencers
        }
        seen = set()
        for shard, part in enumerate(parts):
            assert part.start == resolved.start
            assert part.count == resolved.count
            for record in part.records:
                for user in record.influencers:
                    assert partitioner.shard_of(user) == shard
                    pair = (record.time, user)
                    assert pair not in seen
                    seen.add(pair)
        assert seen == total_pairs

    def test_slice_after_redelivery_suffix(self):
        resolved = self._resolved(n=10, users=4, seed=55)
        assert resolved.slice_after(resolved.start - 1) is resolved
        mid = resolved.records[4].time
        suffix = resolved.slice_after(mid)
        assert suffix.records == resolved.records[5:]
        assert suffix.start == resolved.records[5].time
        assert suffix.last == resolved.last
        assert suffix.count == len(suffix.records)
        assert resolved.slice_after(resolved.last) == ResolvedSlide.empty()

    def test_boundary_validation(self):
        with pytest.raises(ValueError, match="count"):
            ResolvedSlide(start=1, last=2, count=-1, records=())
        with pytest.raises(ValueError, match="out of order"):
            ResolvedSlide(start=5, last=2, count=3, records=())


class TestSlideResolver:
    def test_rejects_out_of_order_within_batch(self):
        resolver = SlideResolver()
        with pytest.raises(ValueError, match="out-of-order"):
            resolver.resolve(
                [Action(time=2, user=0), Action(time=2, user=1)]
            )

    def test_redelivery_is_idempotent(self):
        actions = random_stream(30, 6, seed=56)
        resolver = SlideResolver()
        first = resolver.resolve(actions)
        again = resolver.resolve(actions)  # full redelivery
        assert again.records == first.records
        assert resolver.actions_processed == 30
        assert resolver.now == 30

    def test_state_round_trip_continues_stream(self):
        actions = random_stream(60, 8, seed=57)
        resolver = SlideResolver()
        resolver.resolve(actions[:30])
        restored = SlideResolver.from_state(resolver.to_state())
        assert restored.now == resolver.now
        assert restored.actions_processed == resolver.actions_processed
        assert restored.resolve(actions[30:]) == resolver.resolve(actions[30:])


class TestRefusals:
    def test_windowed_greedy_refuses_resolved_slides(self):
        engine = WindowedGreedy(window_size=20, k=2)
        resolver = SlideResolver()
        resolved = resolver.resolve(random_stream(10, 4, seed=58))
        with pytest.raises(NotImplementedError, match="pre-resolved"):
            engine.apply_resolved(resolved)

    def test_board_support_probe(self):
        capable = (
            MultiQueryEngine()
            .add("a", MAKERS["ic"]())
            .add("b", MAKERS["sic"]())
        )
        assert capable.supports_resolved()
        greedy = MultiQueryEngine().add("g", WindowedGreedy(window_size=20, k=2))
        assert not greedy.supports_resolved()
        filtered = MultiQueryEngine().add(
            "topic", TopicAwareSIM({"x"}, {}, window_size=20, k=2)
        )
        assert not filtered.supports_resolved()

    def test_board_with_filtered_queries_refuses_apply(self):
        board = (
            MultiQueryEngine()
            .add("plain", MAKERS["ic"]())
            .add("topic", TopicAwareSIM({"x"}, {}, window_size=20, k=2))
        )
        resolved = SlideResolver().resolve(random_stream(10, 4, seed=59))
        with pytest.raises(ValueError, match="filtered"):
            board.apply_resolved(resolved)

    def test_board_apply_matches_board_process(self):
        actions = random_stream(100, 10, seed=60)
        composed = (
            MultiQueryEngine()
            .add("a", MAKERS["ic"]())
            .add("b", MAKERS["sic"]())
        )
        applied = (
            MultiQueryEngine()
            .add("a", MAKERS["ic"]())
            .add("b", MAKERS["sic"]())
        )
        resolver = SlideResolver()
        for batch in batched(actions, 5):
            composed.process(batch)
            applied.apply_resolved(resolver.resolve(batch))
        assert applied.query_all() == composed.query_all()
        assert applied.actions_processed == composed.actions_processed
