"""Unit and property tests for the diffusion forest."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.actions import Action
from repro.core.diffusion import DiffusionForest
from tests.conftest import random_stream


class TestResolution:
    def test_root_influences_itself(self):
        forest = DiffusionForest()
        record = forest.add(Action.root(1, 7))
        assert record.influencers == (7,)
        assert record.depth == 1

    def test_response_credits_parent_chain(self):
        forest = DiffusionForest()
        forest.add(Action.root(1, 1))
        forest.add(Action.response(2, 2, 1))
        record = forest.add(Action.response(3, 3, 2))
        assert record.influencers == (1, 2, 3)
        assert record.depth == 3

    def test_duplicate_user_in_chain_collapses(self):
        forest = DiffusionForest()
        forest.add(Action.root(1, 1))
        forest.add(Action.response(2, 2, 1))
        record = forest.add(Action.response(3, 1, 2))  # u1 responds to own chain
        assert record.influencers == (2, 1)
        assert record.fanout == 2

    def test_paper_example_influencers(self, paper_stream):
        forest = DiffusionForest()
        records = {a.time: forest.add(a) for a in paper_stream}
        # a8 = <u4, a7>, chain a7 -> a3 (u5, u3): influencers u3, u5, u4.
        assert set(records[8].influencers) == {3, 5, 4}
        assert records[8].depth == 3
        # a4 = <u3, a1>: u1 then u3.
        assert records[4].influencers == (1, 3)

    def test_rejects_duplicate_add(self):
        forest = DiffusionForest()
        forest.add(Action.root(1, 1))
        with pytest.raises(ValueError, match="already added"):
            forest.add(Action.root(1, 2))

    def test_record_lookup(self):
        forest = DiffusionForest()
        forest.add(Action.root(1, 4))
        assert forest.record(1).user == 4
        with pytest.raises(KeyError):
            forest.record(99)


class TestStatistics:
    def test_mean_and_max_depth(self):
        forest = DiffusionForest()
        forest.add(Action.root(1, 1))  # depth 1
        forest.add(Action.response(2, 2, 1))  # depth 2
        forest.add(Action.response(3, 3, 2))  # depth 3
        assert forest.mean_depth == pytest.approx(2.0)
        assert forest.max_depth == 3
        assert forest.actions_seen == 3

    def test_empty_forest_statistics(self):
        forest = DiffusionForest()
        assert forest.mean_depth == 0.0
        assert forest.max_depth == 0


class TestRetention:
    def test_prune_before_drops_old_records(self):
        forest = DiffusionForest()
        for t in range(1, 6):
            forest.add(Action.root(t, t))
        dropped = forest.prune_before(4)
        assert dropped == 3
        assert 3 not in forest
        assert 4 in forest

    def test_retention_truncates_late_responses(self):
        forest = DiffusionForest(retention=2)
        forest.add(Action.root(1, 1))
        forest.add(Action.root(2, 2))
        forest.add(Action.root(3, 3))
        forest.add(Action.root(4, 4))  # prunes t=1
        record = forest.add(Action.response(5, 5, 1))  # parent pruned
        assert record.influencers == (5,)
        assert record.depth == 1
        assert forest.truncated_chains == 1

    def test_retention_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            DiffusionForest(retention=0)

    def test_prune_with_large_sparse_gap(self):
        """Pruning far past the retained range must not orphan records."""
        forest = DiffusionForest()
        forest.add(Action.root(1, 1))
        forest.add(Action.root(10_000, 2))
        forest.add(Action.root(10_001, 3))
        dropped = forest.prune_before(50_000)
        assert dropped == 3
        assert len(forest) == 0
        assert 10_000 not in forest

    def test_prune_sparse_keeps_recent(self):
        forest = DiffusionForest()
        forest.add(Action.root(1, 1))
        forest.add(Action.root(90_000, 2))
        assert forest.prune_before(80_000) == 1
        assert 90_000 in forest
        assert 1 not in forest

    def test_records_between(self):
        forest = DiffusionForest()
        for t in range(1, 6):
            forest.add(Action.root(t, t))
        times = [r.time for r in forest.records_between(2, 4)]
        assert times == [2, 3, 4]


def brute_force_influencers(actions, time):
    """Reference: walk parent pointers explicitly."""
    by_time = {a.time: a for a in actions}
    chain = []
    current = by_time[time]
    while True:
        chain.append(current.user)
        if current.is_root:
            break
        current = by_time[current.parent]
    # De-dup keeping the *last* occurrence along root->leaf order.
    ordered = list(reversed(chain))
    seen = set()
    result = []
    for user in ordered:
        if user not in seen:
            seen.add(user)
            result.append(user)
    # The performer must come last, as in DiffusionForest.
    performer = by_time[time].user
    result.remove(performer)
    result.append(performer)
    return tuple(result), len(chain)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_influencers_match_brute_force(seed):
    """Property: incremental ancestor resolution == explicit chain walk."""
    actions = random_stream(40, 6, seed=seed)
    forest = DiffusionForest()
    for action in actions:
        record = forest.add(action)
        expected_users, expected_depth = brute_force_influencers(
            actions, action.time
        )
        assert set(record.influencers) == set(expected_users)
        assert record.influencers[-1] == action.user
        assert record.depth == expected_depth
