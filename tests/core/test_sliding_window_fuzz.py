"""Hypothesis fuzzing of the full SIC stack against a model checker.

A single property drives SparseInfluentialCheckpoints with arbitrary
window sizes, batch patterns, and stream shapes, checking the public
observables against an independently maintained model on every step.
This is the closest thing to a model-based state-machine test the
frameworks have — if checkpoint bookkeeping ever drifts from the window
model, this is where it surfaces.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.actions import Action
from repro.core.sic import SparseInfluentialCheckpoints


@st.composite
def stream_plan(draw):
    """A window size plus a batched stream with random cascade structure."""
    window = draw(st.integers(2, 24))
    n_users = draw(st.integers(1, 8))
    batch_sizes = draw(st.lists(st.integers(1, 6), min_size=1, max_size=14))
    structure = draw(
        st.lists(
            st.tuples(st.integers(0, n_users - 1), st.booleans(),
                      st.integers(1, 10)),
            min_size=sum(batch_sizes),
            max_size=sum(batch_sizes),
        )
    )
    return window, batch_sizes, structure


@settings(max_examples=60, deadline=None)
@given(plan=stream_plan(), beta=st.sampled_from([0.1, 0.3, 0.5]))
def test_sic_observables_track_the_model(plan, beta):
    window, batch_sizes, structure = plan
    sic = SparseInfluentialCheckpoints(window_size=window, k=2, beta=beta)
    actions = []
    t = 0
    for user, is_root, back in structure:
        t += 1
        if is_root or t == 1 or back >= t:
            actions.append(Action.root(t, user))
        else:
            actions.append(Action.response(t, user, t - min(back, t - 1)))
    cursor = 0
    fed = 0
    for size in batch_sizes:
        batch = actions[cursor:cursor + size]
        cursor += size
        if not batch:
            break
        sic.process(batch)
        fed += len(batch)
        # Observable invariants after every slide:
        assert sic.actions_processed == fed
        assert sic.now == batch[-1].time
        assert len(sic.window) == min(fed, window)
        assert sic.window.end_time == sic.now
        answer = sic.query()
        assert answer.time == sic.now
        assert len(answer.seeds) <= 2
        assert answer.value >= 1.0  # at least one user performed an action
        # All seeds are users that actually appeared so far.
        seen_users = {a.user for a in actions[:cursor]}
        assert answer.seeds <= seen_users
        # Checkpoints: sorted, unique, newest covers the latest batch.
        starts = [c.start for c in sic.checkpoints]
        assert starts == sorted(starts)
        assert len(set(starts)) == len(starts)
        assert starts[-1] == batch[0].time
