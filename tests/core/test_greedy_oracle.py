"""Unit tests for the (1 − 1/e) greedy checkpoint oracle."""

import itertools

import pytest

from repro.core.diffusion import DiffusionForest
from repro.core.influence_index import AppendOnlyInfluenceIndex
from repro.core.oracles import GreedyOracle, make_oracle
from repro.core.sic import SparseInfluentialCheckpoints
from repro.influence.functions import (
    CardinalityInfluence,
    ConformityAwareInfluence,
)
from tests.conftest import random_stream


def drive(actions, k=2, refresh_factor=1.0, func=None):
    func = func if func is not None else CardinalityInfluence()
    index = AppendOnlyInfluenceIndex()
    oracle = GreedyOracle(
        k=k, func=func, index=index, refresh_factor=refresh_factor
    )
    forest = DiffusionForest()
    for action in actions:
        record = forest.add(action)
        for user in index.add(record):
            oracle.process(user, record.user)
    return oracle, index


class TestBasics:
    def test_registered(self):
        oracle = make_oracle(
            "greedy", k=2, func=CardinalityInfluence(),
            index=AppendOnlyInfluenceIndex(),
        )
        assert isinstance(oracle, GreedyOracle)

    def test_refresh_factor_validation(self):
        with pytest.raises(ValueError, match="refresh factor"):
            GreedyOracle(
                k=1, func=CardinalityInfluence(),
                index=AppendOnlyInfluenceIndex(), refresh_factor=0.9,
            )

    def test_candidate_tracking(self):
        oracle, _ = drive(random_stream(40, 6, seed=1))
        assert 0 < oracle.candidate_count <= 6

    def test_respects_k(self):
        oracle, _ = drive(random_stream(80, 10, seed=2), k=3)
        assert len(oracle.seeds) <= 3


class TestQuality:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_exact_refresh_achieves_1_minus_1_over_e(self, seed):
        actions = random_stream(60, 7, seed=seed)
        oracle, index = drive(actions, k=2, refresh_factor=1.0)
        users = [u for u in range(7) if u in index]
        func = CardinalityInfluence()
        best = 0.0
        for combo in itertools.combinations(users, min(2, len(users))):
            best = max(best, func.evaluate(combo, index))
        assert oracle.value >= (1 - 1 / 2.718281828) * best - 1e-9

    def test_beats_sieve_on_value(self):
        """At equal inputs the greedy oracle should match or beat sieve."""
        actions = random_stream(120, 9, seed=5)
        greedy, _ = drive(actions, k=3, refresh_factor=1.0)
        index = AppendOnlyInfluenceIndex()
        sieve = make_oracle(
            "sieve", k=3, func=CardinalityInfluence(), index=index, beta=0.2
        )
        forest = DiffusionForest()
        for action in actions:
            record = forest.add(action)
            for user in index.add(record):
                sieve.process(user, record.user)
        assert greedy.value >= sieve.value - 1e-9

    def test_amortised_refresh_stays_close(self):
        actions = random_stream(150, 8, seed=6)
        exact, _ = drive(actions, k=2, refresh_factor=1.0)
        amortised, _ = drive(actions, k=2, refresh_factor=1.2)
        assert amortised.value >= 0.75 * exact.value

    def test_non_modular_function(self):
        func = ConformityAwareInfluence({}, {}, 0.6, 0.6)
        oracle, index = drive(random_stream(50, 5, seed=7), k=2, func=func)
        assert oracle.value > 0
        assert func.evaluate(oracle.seeds, index) >= oracle.value - 1e-9


class TestInsideSIC:
    def test_usable_as_checkpoint_oracle(self):
        sic = SparseInfluentialCheckpoints(window_size=30, k=2, oracle="greedy")
        for action in random_stream(90, 8, seed=8):
            sic.process([action])
        assert sic.query().value > 0
