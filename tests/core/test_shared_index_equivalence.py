"""Equivalence proof: shared VersionedInfluenceIndex == per-checkpoint reference.

The tentpole refactor replaces every checkpoint's private
``AppendOnlyInfluenceIndex`` with views over one shared
``VersionedInfluenceIndex``.  These property tests drive both data planes
over identical random streams and assert they are indistinguishable:

* per-slide query answers (seeds *and* values) are identical;
* the retained checkpoint populations (starts, values, seeds, absorbed
  action counts) are identical — so SIC's pruning decisions coincide too;
* the *oracle feed sequences* are element-for-element identical per
  checkpoint: the shared bisect dispatch delivers exactly the
  ``(user, new_member)`` events the reference indexes would have produced,
  in the same order;
* checkpoint views materialise the same suffix influence sets as the
  reference per-checkpoint indexes.
"""

from __future__ import annotations

from collections import defaultdict

import pytest

from repro.core.checkpoint import Checkpoint
from repro.core.ic import InfluentialCheckpoints
from repro.core.sic import SparseInfluentialCheckpoints
from repro.core.stream import batched
from tests.conftest import random_stream

ORACLES = ["sieve", "threshold", "blog_watch", "mkc", "greedy"]


def drive_logged(make_algorithm, actions, slide):
    """Run an algorithm while logging every oracle feed per checkpoint.

    Returns ``(algorithm, snapshots, feeds)`` where ``snapshots`` is the
    per-slide list of ``(query answer, checkpoint states)`` and ``feeds``
    maps checkpoint start -> ordered ``(user, new_member)`` events.
    """
    feeds = defaultdict(list)
    original_feed = Checkpoint.feed

    def logging_feed(self, user, new_member):
        feeds[self.start].append((user, new_member))
        original_feed(self, user, new_member)

    Checkpoint.feed = logging_feed
    try:
        algorithm = make_algorithm()
        snapshots = []
        for batch in batched(actions, slide):
            algorithm.process(batch)
            answer = algorithm.query()
            snapshots.append(
                (
                    (answer.time, answer.seeds, answer.value),
                    [
                        (c.start, c.value, c.seeds, c.actions_processed)
                        for c in algorithm.checkpoints
                    ],
                )
            )
    finally:
        Checkpoint.feed = original_feed
    return algorithm, snapshots, dict(feeds)


def make_factory(framework, oracle, shared):
    if framework == "ic":
        return lambda: InfluentialCheckpoints(
            window_size=40, k=3, beta=0.25, oracle=oracle, shared_index=shared
        )
    return lambda: SparseInfluentialCheckpoints(
        window_size=40, k=3, beta=0.25, oracle=oracle, shared_index=shared
    )


@pytest.mark.parametrize("framework", ["ic", "sic"])
@pytest.mark.parametrize("oracle", ORACLES)
@pytest.mark.parametrize("slide", [1, 5])
def test_shared_equals_reference(framework, oracle, slide):
    for seed in (0, 1, 2):
        actions = random_stream(120, 8, seed=seed)
        shared_alg, shared_snaps, shared_feeds = drive_logged(
            make_factory(framework, oracle, shared=True), actions, slide
        )
        ref_alg, ref_snaps, ref_feeds = drive_logged(
            make_factory(framework, oracle, shared=False), actions, slide
        )
        assert shared_snaps == ref_snaps, (framework, oracle, slide, seed)
        # Feed sequences: element-for-element identical per checkpoint,
        # including checkpoints that were pruned mid-run.
        assert shared_feeds == ref_feeds, (framework, oracle, slide, seed)
        # Views materialise the same suffix sets as the reference indexes.
        ref_by_start = {c.start: c for c in ref_alg.checkpoints}
        for checkpoint in shared_alg.checkpoints:
            reference = ref_by_start[checkpoint.start]
            users = {u for u, _ in shared_feeds.get(checkpoint.start, ())}
            for user in users:
                assert checkpoint.index.influence_set(user) == set(
                    reference.index.influence_set(user)
                ), (framework, oracle, slide, seed, checkpoint.start, user)
            assert checkpoint.index.coverage(users) == reference.index.coverage(
                users
            )


@pytest.mark.parametrize("slide", [1, 5])
def test_shared_feeds_are_strictly_fewer_index_probes(slide):
    """The shared plane's dispatch only ever feeds checkpoints whose suffix
    set actually grew — i.e. the events the reference implementation's
    per-checkpoint ``add`` calls would have reported."""
    actions = random_stream(200, 6, seed=7)
    _, _, feeds = drive_logged(
        make_factory("ic", "sieve", shared=True), actions, slide
    )
    for start, events in feeds.items():
        # Within one checkpoint a (user, member) pair is fed at most once:
        # a second feed would mean the pair was already in the suffix set.
        assert len(events) == len(set(events)), start


class TestNonModularAdmissionPath:
    """The singleton admission prefilter must not apply to non-modular
    functions: their admission gains are measured against lazily refreshed
    instance values and can exceed the singleton bound, so skipping
    instances would silently change results (a bug the shared-vs-reference
    tests cannot catch because both modes share the oracle code)."""

    def _conformity(self):
        from repro.influence.functions import ConformityAwareInfluence

        return ConformityAwareInfluence({1: 0.9, 2: 0.3}, {3: 0.8, 4: 0.2})

    @pytest.mark.parametrize("oracle", ["sieve", "threshold"])
    def test_results_pinned_to_reference_implementation(self, oracle):
        """Final answers match a differential replay of the pre-refactor
        per-checkpoint implementation (verified against the seed commit)."""
        ic = InfluentialCheckpoints(
            window_size=40, k=3, beta=0.3, oracle=oracle, func=self._conformity()
        )
        for batch in batched(random_stream(250, 10, seed=0), 1):
            ic.process(batch)
        answer = ic.query()
        assert round(answer.value, 6) == 4.383125
        assert sorted(answer.seeds) == [3, 6, 8]

    @pytest.mark.parametrize("oracle_name", ["sieve", "threshold"])
    def test_prefilter_bypassed_for_non_modular(self, oracle_name):
        """Every under-k instance is offered every non-seed feed."""
        from repro.core.oracles import sieve as sieve_mod
        from repro.core.oracles import threshold as threshold_mod

        module = sieve_mod if oracle_name == "sieve" else threshold_mod
        cls = (
            module.SieveStreamingOracle
            if oracle_name == "sieve"
            else module.ThresholdStreamOracle
        )
        attempts = []
        original = cls._try_admit

        def counting(self, instance, user):
            attempts.append(user)
            original(self, instance, user)

        cls._try_admit = counting
        try:
            ic = InfluentialCheckpoints(
                window_size=30,
                k=3,
                beta=0.3,
                oracle=oracle_name,
                func=self._conformity(),
            )
            for batch in batched(random_stream(80, 8, seed=3), 1):
                ic.process(batch)
        finally:
            cls._try_admit = original
        # With the prefilter wrongly applied, low-singleton users would
        # never reach _try_admit; the non-modular path must offer them.
        assert len(attempts) > 0
