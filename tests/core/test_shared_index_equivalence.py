"""Equivalence proof: batched shared == unbatched shared == reference.

The shared data plane replaces every checkpoint's private
``AppendOnlyInfluenceIndex`` with views over one shared
``VersionedInfluenceIndex``, and the batched dispatch plane delivers each
checkpoint's slide as one merged ``(user, new_members)``-delta batch.
These property tests drive all three planes over identical random streams
and assert they are indistinguishable:

* **batched shared** (the default): per-checkpoint slide batches through
  ``Checkpoint.feed_batch`` / ``process_batch``;
* **unbatched shared** (``batch_feeds=False``): the same merged deltas,
  one ``feed_delta`` / ``process_delta`` call at a time;
* **per-checkpoint reference** (``shared_index=False``): private
  append-only indexes driven through ``Checkpoint.process_slide``.

Checked per slide: query answers (seeds *and* values), the retained
checkpoint populations (starts, values, seeds, absorbed action counts) —
so SIC's pruning decisions coincide too — and the flattened *oracle feed
sequences* per checkpoint: the shared bisect dispatch delivers exactly the
``(user, new_member)`` events the reference indexes would have produced,
in the same merged order.  Checkpoint views must also materialise the same
suffix influence sets as the reference per-checkpoint indexes.
"""

from __future__ import annotations

from collections import defaultdict

import pytest

from repro.core.actions import Action
from repro.core.checkpoint import Checkpoint
from repro.core.ic import InfluentialCheckpoints
from repro.core.sic import SparseInfluentialCheckpoints
from repro.core.stream import batched
from tests.conftest import random_stream

ORACLES = ["sieve", "threshold", "blog_watch", "mkc", "greedy"]

#: The three data/dispatch planes: (shared_index, batch_feeds).
PLANES = {
    "batched": (True, True),
    "unbatched": (True, False),
    "reference": (False, False),
}


def drive_logged(make_algorithm, actions, slide):
    """Run an algorithm while logging every oracle feed per checkpoint.

    All three delivery entry points (``feed``, ``feed_delta``,
    ``feed_batch``) are intercepted and flattened to ``(user, new_member)``
    events, so the logs are comparable across planes.  Returns
    ``(algorithm, snapshots, feeds, delta_sizes)`` where ``snapshots`` is
    the per-slide list of ``(query answer, checkpoint states)``, ``feeds``
    maps checkpoint start -> ordered ``(user, new_member)`` events, and
    ``delta_sizes`` lists the member count of every delivered delta (a
    plain ``feed`` counts as 1) — the witness that a slide really merged
    several members into one delta.
    """
    feeds = defaultdict(list)
    delta_sizes = []
    original_feed = Checkpoint.feed
    original_feed_delta = Checkpoint.feed_delta
    original_feed_batch = Checkpoint.feed_batch

    def logging_feed(self, user, new_member):
        feeds[self.start].append((user, new_member))
        delta_sizes.append(1)
        original_feed(self, user, new_member)

    def logging_feed_delta(self, user, new_members):
        feeds[self.start].extend((user, member) for member in new_members)
        delta_sizes.append(len(new_members))
        original_feed_delta(self, user, new_members)

    def logging_feed_batch(self, deltas):
        deltas = list(deltas)
        log = feeds[self.start]
        for user, members in deltas:
            log.extend((user, member) for member in members)
            delta_sizes.append(len(members))
        original_feed_batch(self, deltas)

    Checkpoint.feed = logging_feed
    Checkpoint.feed_delta = logging_feed_delta
    Checkpoint.feed_batch = logging_feed_batch
    try:
        algorithm = make_algorithm()
        snapshots = []
        for batch in batched(actions, slide):
            algorithm.process(batch)
            answer = algorithm.query()
            snapshots.append(
                (
                    (answer.time, answer.seeds, answer.value),
                    [
                        (c.start, c.value, c.seeds, c.actions_processed)
                        for c in algorithm.checkpoints
                    ],
                )
            )
    finally:
        Checkpoint.feed = original_feed
        Checkpoint.feed_delta = original_feed_delta
        Checkpoint.feed_batch = original_feed_batch
    return algorithm, snapshots, dict(feeds), delta_sizes


def make_factory(framework, oracle, plane):
    # columnar=False throughout: these tests prove the *dispatch* planes
    # equivalent by intercepting Checkpoint.feed*, which the columnar
    # kernel legitimately bypasses (its equivalence proof lives in
    # tests/core/test_columnar_equivalence.py).
    shared, batch = PLANES[plane]
    if framework == "ic":
        return lambda: InfluentialCheckpoints(
            window_size=40, k=3, beta=0.25, oracle=oracle,
            shared_index=shared, batch_feeds=batch, columnar=False,
        )
    return lambda: SparseInfluentialCheckpoints(
        window_size=40, k=3, beta=0.25, oracle=oracle,
        shared_index=shared, batch_feeds=batch, columnar=False,
    )


@pytest.mark.parametrize("framework", ["ic", "sic"])
@pytest.mark.parametrize("oracle", ORACLES)
@pytest.mark.parametrize("slide", [1, 5])
def test_three_way_equivalence(framework, oracle, slide):
    for seed in (0, 1, 2):
        actions = random_stream(120, 8, seed=seed)
        runs = {
            plane: drive_logged(
                make_factory(framework, oracle, plane), actions, slide
            )
            for plane in PLANES
        }
        _, batched_snaps, batched_feeds, _ = runs["batched"]
        for plane in ("unbatched", "reference"):
            _, snaps, plane_feeds, _ = runs[plane]
            key = (framework, oracle, slide, seed, plane)
            assert batched_snaps == snaps, key
            # Feed sequences: element-for-element identical per checkpoint,
            # including checkpoints that were pruned mid-run.
            assert batched_feeds == plane_feeds, key
        # Views materialise the same suffix sets as the reference indexes.
        shared_alg = runs["batched"][0]
        ref_by_start = {c.start: c for c in runs["reference"][0].checkpoints}
        for checkpoint in shared_alg.checkpoints:
            reference = ref_by_start[checkpoint.start]
            users = {u for u, _ in batched_feeds.get(checkpoint.start, ())}
            for user in users:
                assert checkpoint.index.influence_set(user) == set(
                    reference.index.influence_set(user)
                ), (framework, oracle, slide, seed, checkpoint.start, user)
            assert checkpoint.index.coverage(users) == reference.index.coverage(
                users
            )


@pytest.mark.parametrize("slide", [1, 4])
@pytest.mark.parametrize("interval", [2, 3])
def test_three_way_equivalence_with_checkpoint_interval(slide, interval):
    """A sparse roster (checkpoint_interval > 1) must not perturb the
    dispatch: the bisect over non-contiguous starts and the absorbed
    ledger have to agree with the per-checkpoint reference exactly."""
    for seed in (0, 1):
        actions = random_stream(120, 8, seed=seed)
        runs = {}
        for plane in PLANES:
            shared, batch = PLANES[plane]
            runs[plane] = drive_logged(
                lambda: InfluentialCheckpoints(
                    window_size=40, k=3, beta=0.25,
                    shared_index=shared, batch_feeds=batch,
                    checkpoint_interval=interval, columnar=False,
                ),
                actions,
                slide,
            )
        _, batched_snaps, batched_feeds, _ = runs["batched"]
        for plane in ("unbatched", "reference"):
            _, snaps, plane_feeds, _ = runs[plane]
            assert batched_snaps == snaps, (slide, interval, seed, plane)
            assert batched_feeds == plane_feeds, (slide, interval, seed, plane)


def multi_member_stream():
    """A stream whose third slide (L=5) hands one user several new members.

    User 1 roots the cascade; users 2..9 respond to it directly or
    transitively, so user 1 is an ancestor influencer of every response.
    Within one 5-action slide several distinct responders perform, and
    user 1 gains them all as new influence-set members in that single
    slide.
    """
    actions = [Action.root(1, 1)]
    for t in range(2, 16):
        actions.append(Action.response(t, (t % 9) + 1, t - 1))
    return actions


@pytest.mark.parametrize("framework", ["ic", "sic"])
@pytest.mark.parametrize("oracle", ORACLES)
def test_multi_member_slide_equivalence(framework, oracle):
    """A slide where one user gains multiple new members must be merged
    into a single delta — and stay identical across all three planes."""
    actions = multi_member_stream()
    runs = {
        plane: drive_logged(
            make_factory(framework, oracle, plane), actions, 5
        )
        for plane in PLANES
    }
    _, batched_snaps, batched_feeds, batched_sizes = runs["batched"]
    # The scenario exercises what it claims: some checkpoint received a
    # *single* delta carrying >= 2 merged members within one slide.  (A
    # whole-run duplicate-user check would also pass for a user fed in two
    # different slides, which proves nothing about merging.)
    assert any(size >= 2 for size in batched_sizes), (
        "stream failed to produce a multi-member delta"
    )
    for plane in ("unbatched", "reference"):
        _, snaps, plane_feeds, plane_sizes = runs[plane]
        assert batched_snaps == snaps, (framework, oracle, plane)
        assert batched_feeds == plane_feeds, (framework, oracle, plane)
        # All planes partition the slide's events into the same deltas.
        assert batched_sizes == plane_sizes, (framework, oracle, plane)


@pytest.mark.parametrize("slide", [1, 5])
def test_shared_feeds_are_strictly_fewer_index_probes(slide):
    """The shared plane's dispatch only ever feeds checkpoints whose suffix
    set actually grew — i.e. the events the reference implementation's
    per-checkpoint ``add`` calls would have reported."""
    actions = random_stream(200, 6, seed=7)
    _, _, feeds, _ = drive_logged(
        make_factory("ic", "sieve", "batched"), actions, slide
    )
    for start, events in feeds.items():
        # Within one checkpoint a (user, member) pair is fed at most once:
        # a second feed would mean the pair was already in the suffix set.
        assert len(events) == len(set(events)), start


class TestNonModularAdmissionPath:
    """The singleton admission prefilter must not apply to non-modular
    functions: their admission gains are measured against lazily refreshed
    instance values and can exceed the singleton bound, so skipping
    instances would silently change results (a bug the plane-equivalence
    tests cannot catch because all planes share the oracle code)."""

    def _conformity(self):
        from repro.influence.functions import ConformityAwareInfluence

        return ConformityAwareInfluence({1: 0.9, 2: 0.3}, {3: 0.8, 4: 0.2})

    @pytest.mark.parametrize("oracle", ["sieve", "threshold"])
    def test_results_pinned_to_reference_implementation(self, oracle):
        """Final answers match a differential replay of the pre-refactor
        per-checkpoint implementation (verified against the seed commit)."""
        ic = InfluentialCheckpoints(
            window_size=40, k=3, beta=0.3, oracle=oracle, func=self._conformity()
        )
        for batch in batched(random_stream(250, 10, seed=0), 1):
            ic.process(batch)
        answer = ic.query()
        assert round(answer.value, 6) == 4.383125
        assert sorted(answer.seeds) == [3, 6, 8]

    @pytest.mark.parametrize("oracle_name", ["sieve", "threshold"])
    def test_prefilter_bypassed_for_non_modular(self, oracle_name):
        """Every under-k instance is offered every non-seed feed."""
        from repro.core.oracles.streaming_base import StreamingThresholdOracle

        attempts = []
        original = StreamingThresholdOracle._try_admit

        def counting(self, instance, user):
            attempts.append(user)
            original(self, instance, user)

        StreamingThresholdOracle._try_admit = counting
        try:
            ic = InfluentialCheckpoints(
                window_size=30,
                k=3,
                beta=0.3,
                oracle=oracle_name,
                func=self._conformity(),
            )
            for batch in batched(random_stream(80, 8, seed=3), 1):
                ic.process(batch)
        finally:
            StreamingThresholdOracle._try_admit = original
        # With the prefilter wrongly applied, low-singleton users would
        # never reach _try_admit; the non-modular path must offer them.
        assert len(attempts) > 0
