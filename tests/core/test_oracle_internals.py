"""White-box tests of oracle internals: instance ranges and thresholds."""

import math

import pytest

from repro.core.actions import Action
from repro.core.diffusion import DiffusionForest
from repro.core.influence_index import AppendOnlyInfluenceIndex
from repro.core.oracles.sieve import SieveStreamingOracle
from repro.core.oracles.threshold import ThresholdStreamOracle
from repro.influence.functions import CardinalityInfluence


def make(cls, k=3, beta=0.25):
    index = AppendOnlyInfluenceIndex()
    oracle = cls(k=k, func=CardinalityInfluence(), index=index, beta=beta)
    return oracle, index, DiffusionForest()


def feed(oracle, index, forest, action):
    record = forest.add(action)
    for user in index.add(record):
        oracle.process(user, record.user)


@pytest.mark.parametrize("cls", [SieveStreamingOracle, ThresholdStreamOracle])
class TestInstanceRange:
    def test_guesses_bracket_m(self, cls):
        """Live guesses must lie within [m, (1+β)·2·k·m]."""
        oracle, index, forest = make(cls, k=3, beta=0.25)
        # One hub answered by many users: m grows step by step.
        feed(oracle, index, forest, Action.root(1, 0))
        for t in range(2, 14):
            feed(oracle, index, forest, Action.response(t, t, 1))
            m = max(
                len(index.influence_set(u)) for u in range(t + 1) if u in index
            )
            for instance in oracle._instances.values():
                assert instance.guess >= m * (1 - 1e-9)
                assert instance.guess <= 2 * 3 * m * (1 + 0.25) + 1e-9

    def test_instance_count_bounded_by_log_k_over_beta(self, cls):
        oracle, index, forest = make(cls, k=5, beta=0.25)
        feed(oracle, index, forest, Action.root(1, 0))
        for t in range(2, 30):
            feed(oracle, index, forest, Action.response(t, t, 1))
        # |Omega| = O(log(2k)/log(1+β)) + 1.
        bound = math.log(2 * 5) / math.log(1.25) + 2
        assert oracle.instance_count <= bound

    def test_stale_instances_deleted_on_m_jump(self, cls):
        """A sudden 10x jump in m must purge guesses below the new m."""
        oracle, index, forest = make(cls, k=2, beta=0.25)
        feed(oracle, index, forest, Action.root(1, 0))
        feed(oracle, index, forest, Action.response(2, 1, 1))
        small_guesses = {j for j in oracle._instances}
        # A new hub with a much larger audience.
        feed(oracle, index, forest, Action.root(3, 50))
        for t in range(4, 26):
            feed(oracle, index, forest, Action.response(t, t + 100, 3))
        m = len(index.influence_set(50))
        assert m >= 20
        for instance in oracle._instances.values():
            assert instance.guess >= m * (1 - 1e-9)
        assert not (small_guesses <= set(oracle._instances))


class TestSieveThresholdRule:
    def test_sieve_rejects_below_bar(self):
        """An instance with a huge guess admits nothing small."""
        oracle, index, forest = make(SieveStreamingOracle, k=2, beta=0.25)
        # Hub of size 8 -> m=8, guesses up to ~2*k*m=32.
        feed(oracle, index, forest, Action.root(1, 0))
        for t in range(2, 10):
            feed(oracle, index, forest, Action.response(t, t, 1))
        top = max(oracle._instances.values(), key=lambda i: i.guess)
        # The bar for an empty top instance is guess/2/k = guess/4 > 8:
        if not top.seeds:
            assert top.guess / 4 > 8 * (1 - 0.3)

    def test_threshold_bar_is_guess_over_2k(self):
        oracle, index, forest = make(ThresholdStreamOracle, k=4, beta=0.25)
        feed(oracle, index, forest, Action.root(1, 0))
        for t in range(2, 8):
            feed(oracle, index, forest, Action.response(t, t, 1))
        for instance in oracle._instances.values():
            if instance.seeds:
                # Whoever got in had gain >= guess/(2k) at admission time;
                # with one candidate the value itself must clear the bar.
                assert instance.value >= instance.guess / (2 * 4) - 1e-9
