"""Unit and property tests for the sliding window."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.actions import Action
from repro.core.window import SlidingWindow


def roots(times):
    return [Action.root(t, t % 5) for t in times]


class TestBasics:
    def test_empty_window(self):
        window = SlidingWindow(4)
        assert len(window) == 0
        assert not window.is_full
        assert window.start_time == 0
        assert window.end_time == 0
        assert window.active_users == set()

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError, match="positive"):
            SlidingWindow(0)

    def test_fills_without_expiry(self):
        window = SlidingWindow(5)
        expired = window.slide(roots([1, 2, 3]))
        assert expired == []
        assert len(window) == 3
        assert not window.is_full

    def test_expiry_on_overflow(self):
        window = SlidingWindow(3)
        window.slide(roots([1, 2, 3]))
        expired = window.slide(roots([4, 5]))
        assert [a.time for a in expired] == [1, 2]
        assert window.start_time == 3
        assert window.end_time == 5
        assert window.is_full

    def test_batch_larger_than_window(self):
        window = SlidingWindow(2)
        expired = window.slide(roots([1, 2, 3, 4, 5]))
        assert [a.time for a in expired] == [1, 2, 3]
        assert [a.time for a in window] == [4, 5]

    def test_rejects_out_of_order(self):
        window = SlidingWindow(3)
        window.slide(roots([5]))
        with pytest.raises(ValueError, match="out-of-order"):
            window.slide(roots([5]))
        with pytest.raises(ValueError, match="out-of-order"):
            window.slide(roots([4]))


class TestIndexing:
    def test_one_based_indexing(self):
        window = SlidingWindow(3)
        window.slide(roots([7, 8, 9]))
        assert window[1].time == 7
        assert window[3].time == 9

    def test_index_bounds(self):
        window = SlidingWindow(3)
        window.slide(roots([1, 2]))
        with pytest.raises(IndexError):
            window[0]
        with pytest.raises(IndexError):
            window[3]


class TestActiveUsers:
    def test_tracks_arrivals_and_expiries(self):
        window = SlidingWindow(2)
        window.slide([Action.root(1, 10), Action.root(2, 11)])
        assert window.active_users == {10, 11}
        window.slide([Action.root(3, 12)])
        assert window.active_users == {11, 12}

    def test_multiplicity(self):
        window = SlidingWindow(3)
        window.slide([Action.root(1, 7), Action.root(2, 7), Action.root(3, 8)])
        assert window.activity(7) == 2
        window.slide([Action.root(4, 9)])
        assert window.activity(7) == 1
        assert 7 in window.active_users


@settings(max_examples=60, deadline=None)
@given(
    size=st.integers(1, 10),
    batch_sizes=st.lists(st.integers(1, 7), min_size=1, max_size=10),
)
def test_window_matches_naive_model(size, batch_sizes):
    """Property: window contents always equal the last `size` actions."""
    window = SlidingWindow(size)
    model = []  # reference: at most `size` most recent actions
    t = 1
    for batch_size in batch_sizes:
        batch = [Action.root(t + i, (t + i) % 4) for i in range(batch_size)]
        t += batch_size
        expired = window.slide(batch)
        combined = model + batch
        expected_expired = combined[:-size] if len(combined) > size else []
        model = combined[-size:]
        assert list(window) == model
        assert expired == expected_expired
        assert window.active_users == {a.user for a in model}
