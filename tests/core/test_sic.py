"""Unit tests for the SIC framework (Algorithm 2)."""

import math

import pytest

from repro.core.ic import InfluentialCheckpoints
from repro.core.sic import SparseInfluentialCheckpoints
from repro.core.stream import batched
from tests.conftest import random_stream


def drive(algorithm, actions, slide=1):
    for batch in batched(actions, slide):
        algorithm.process(batch)
    return algorithm


class TestSparsity:
    def test_fewer_checkpoints_than_ic(self):
        actions = random_stream(300, 10, seed=1)
        ic = drive(InfluentialCheckpoints(window_size=100, k=3), actions)
        sic = drive(
            SparseInfluentialCheckpoints(window_size=100, k=3, beta=0.3), actions
        )
        assert sic.checkpoint_count < ic.checkpoint_count

    def test_checkpoint_count_obeys_theorem5_bound(self):
        # Theorem 5: at most 2·log(N) / log(1/(1-beta)) checkpoints (+O(1)).
        beta = 0.3
        window = 200
        sic = drive(
            SparseInfluentialCheckpoints(window_size=window, k=3, beta=beta),
            random_stream(600, 12, seed=2),
        )
        bound = 2 * math.log(window) / math.log(1.0 / (1.0 - beta)) + 3
        assert sic.checkpoint_count <= bound

    def test_larger_beta_keeps_fewer_checkpoints(self):
        actions = random_stream(400, 10, seed=3)
        counts = {}
        for beta in (0.1, 0.5):
            sic = drive(
                SparseInfluentialCheckpoints(window_size=150, k=3, beta=beta),
                actions,
            )
            counts[beta] = sic.checkpoint_count
        assert counts[0.5] <= counts[0.1]

    def test_pruning_counter_increases(self):
        sic = drive(
            SparseInfluentialCheckpoints(window_size=100, k=3, beta=0.4),
            random_stream(300, 10, seed=4),
        )
        assert sic.pruned_total > 0


class TestStructure:
    def test_at_most_one_expired_checkpoint(self):
        sic = drive(
            SparseInfluentialCheckpoints(window_size=50, k=2, beta=0.3),
            random_stream(200, 8, seed=5),
        )
        expired = [
            c for c in sic.checkpoints
            if not c.covers_window(sic.now, sic.window_size)
        ]
        assert len(expired) <= 1
        if expired:
            assert sic.checkpoints[0] is expired[0]

    def test_newest_checkpoint_never_pruned(self):
        sic = SparseInfluentialCheckpoints(window_size=40, k=2, beta=0.5)
        for batch in batched(random_stream(120, 8, seed=6), 4):
            sic.process(batch)
            assert sic.checkpoints[-1].start == batch[0].time

    def test_neighbor_invariant_lemma3(self):
        """Among any two consecutive live successors of a checkpoint, at
        least one falls below the (1-beta) bar (Lemma 3 conditions 1/3)."""
        beta = 0.3
        sic = SparseInfluentialCheckpoints(window_size=80, k=3, beta=beta)
        for batch in batched(random_stream(400, 10, seed=7), 2):
            sic.process(batch)
            cps = sic.checkpoints
            for i in range(len(cps) - 2):
                bar = (1.0 - beta) * cps[i].value
                # Condition: not both successors can clear the bar, unless
                # the second of them is the newest checkpoint (protected).
                if cps[i + 1].value >= bar and cps[i + 2].value >= bar:
                    assert i + 2 == len(cps) - 1


class TestQuery:
    def test_query_before_any_action(self):
        sic = SparseInfluentialCheckpoints(window_size=4, k=2)
        result = sic.query()
        assert result.seeds == frozenset()
        assert result.value == 0.0

    def test_query_uses_first_covering_checkpoint(self):
        sic = drive(
            SparseInfluentialCheckpoints(window_size=60, k=2, beta=0.3),
            random_stream(200, 8, seed=8),
        )
        answer = sic.query()
        covering = [
            c for c in sic.checkpoints
            if c.covers_window(sic.now, sic.window_size)
        ]
        assert covering
        assert answer.seeds == covering[0].seeds

    def test_seed_count_respects_k(self):
        sic = drive(
            SparseInfluentialCheckpoints(window_size=50, k=4, beta=0.2),
            random_stream(200, 12, seed=9),
        )
        assert len(sic.query().seeds) <= 4


class TestParameters:
    @pytest.mark.parametrize("window_size", [0, -5])
    def test_rejects_non_positive_window(self, window_size):
        with pytest.raises(ValueError, match=str(window_size)):
            SparseInfluentialCheckpoints(window_size=window_size, k=2)

    @pytest.mark.parametrize("k", [0, -1])
    def test_rejects_non_positive_k(self, k):
        with pytest.raises(ValueError, match=str(k)):
            SparseInfluentialCheckpoints(window_size=4, k=k)

    def test_invalid_beta_rejected(self):
        for beta in (0.0, 1.0, -1.0):
            with pytest.raises(ValueError, match="beta"):
                SparseInfluentialCheckpoints(window_size=4, k=1, beta=beta)

    def test_separate_oracle_beta(self):
        sic = SparseInfluentialCheckpoints(
            window_size=20, k=2, beta=0.4, oracle_beta=0.1
        )
        drive(sic, random_stream(60, 6, seed=10))
        assert sic.beta == 0.4
        assert sic.query().value > 0

    @pytest.mark.parametrize("oracle", ["sieve", "threshold", "blog_watch", "mkc"])
    def test_all_oracles_usable(self, oracle):
        sic = SparseInfluentialCheckpoints(window_size=20, k=2, oracle=oracle)
        drive(sic, random_stream(80, 8, seed=11))
        assert sic.query().value > 0

    def test_batch_slides(self):
        sic = drive(
            SparseInfluentialCheckpoints(window_size=40, k=2, beta=0.3),
            random_stream(200, 8, seed=12),
            slide=8,
        )
        assert sic.query().value > 0
        assert sic.checkpoint_count <= 40 // 8 + 1
