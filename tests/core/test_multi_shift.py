"""Properties of multiple window shifts (Section 5.3, L > 1)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.greedy import WindowedGreedy
from repro.core.ic import InfluentialCheckpoints
from repro.core.sic import SparseInfluentialCheckpoints
from repro.core.stream import batched
from tests.conftest import random_stream


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), slide=st.integers(1, 4))
def test_ic_batched_keeps_theorem2_bound(seed, slide):
    """IC's ratio survives batch shifts (Theorem 2 + Section 5.3).

    An L-action slide is one SSM event: the whole slide is indexed before
    the oracles see one merged delta per updated user, so IC(L)'s oracle
    state can legitimately differ from IC(1)'s (a user admitted with a
    fuller set covers members another user would have claimed).  What must
    hold — and what the paper claims — is the approximation guarantee: at
    aligned times the answering checkpoint covers exactly the window, so
    the sieve's (1/2 − β) ratio applies to the exact window optimum."""
    import itertools

    from repro.core.diffusion import DiffusionForest
    from repro.core.influence_index import WindowInfluenceIndex

    window = 12  # slide ∈ {1,2,3,4} all divide 12
    beta = 0.2
    actions = random_stream(48, 6, seed=seed)
    ic = InfluentialCheckpoints(window_size=window, k=2, beta=beta)
    for batch in batched(actions, slide):
        ic.process(batch)
    # Ground truth for the final window.
    forest = DiffusionForest()
    index = WindowInfluenceIndex()
    records = []
    for action in actions:
        record = forest.add(action)
        records.append(record)
        index.add(record)
        if len(records) > window:
            index.remove(records.pop(0))
    users = list(index.influencers())
    opt = 0
    for combo in itertools.combinations(users, min(2, len(users))):
        opt = max(opt, len(index.coverage(combo)))
    achieved = len(index.coverage(ic.query().seeds))
    assert achieved >= (0.5 - beta) * opt - 1e-9


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), slide=st.integers(1, 4))
def test_ic_batch_feeds_flag_is_result_identical(seed, slide):
    """Batched delivery (one process_batch per checkpoint per slide) and
    unbatched delivery (one process_delta per user) of the same merged
    deltas must be indistinguishable — the batch path only amortises
    bookkeeping, it never changes decisions."""
    window = 12
    actions = random_stream(48, 6, seed=seed)
    results = []
    for batch_feeds in (True, False):
        ic = InfluentialCheckpoints(
            window_size=window, k=2, beta=0.2, batch_feeds=batch_feeds
        )
        for batch in batched(actions, slide):
            ic.process(batch)
        answer = ic.query()
        results.append((answer.value, answer.seeds))
    assert results[0] == results[1]


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), slide=st.integers(1, 6))
def test_greedy_is_slide_invariant(seed, slide):
    """The exact window state is independent of how arrivals are batched."""
    actions = random_stream(60, 7, seed=seed)
    one = WindowedGreedy(window_size=18, k=2)
    many = WindowedGreedy(window_size=18, k=2)
    for action in actions:
        one.process([action])
    for batch in batched(actions, slide):
        many.process(batch)
    assert one.query().value == many.query().value
    for user in range(7):
        assert one.index.influence_set(user) == many.index.influence_set(user)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), slide=st.integers(1, 4))
def test_sic_batched_keeps_theorem3_bound(seed, slide):
    """SIC's ratio survives batch shifts (Section 5.3's claim)."""
    import itertools

    from repro.core.diffusion import DiffusionForest
    from repro.core.influence_index import WindowInfluenceIndex

    window = 12
    beta = 0.2
    actions = random_stream(48, 6, seed=seed)
    sic = SparseInfluentialCheckpoints(window_size=window, k=2, beta=beta)
    for batch in batched(actions, slide):
        sic.process(batch)
    # Ground truth for the final window.
    forest = DiffusionForest()
    index = WindowInfluenceIndex()
    records = []
    for action in actions:
        record = forest.add(action)
        records.append(record)
        index.add(record)
        if len(records) > window:
            index.remove(records.pop(0))
    users = list(index.influencers())
    opt = 0
    for combo in itertools.combinations(users, min(2, len(users))):
        opt = max(opt, len(index.coverage(combo)))
    achieved = len(index.coverage(sic.query().seeds))
    assert achieved >= (0.25 - beta) * opt - 1e-9


def test_ic_checkpoint_count_follows_ceil_n_over_l():
    for window, slide, expected in [(20, 5, 4), (20, 4, 5), (24, 6, 4)]:
        ic = InfluentialCheckpoints(window_size=window, k=2)
        for batch in batched(random_stream(120, 6, seed=1), slide):
            ic.process(batch)
        assert ic.checkpoint_count == expected, (window, slide)
