"""Unit and property tests for windowed greedy (CELF and naive)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.greedy import WindowedGreedy, greedy_seed_selection
from repro.core.influence_index import AppendOnlyInfluenceIndex
from repro.core.diffusion import DiffusionForest
from repro.core.stream import batched
from repro.influence.functions import (
    CardinalityInfluence,
    ConformityAwareInfluence,
    WeightedCardinalityInfluence,
)
from tests.conftest import make_paper_stream, random_stream


def build_index(actions):
    forest = DiffusionForest()
    index = AppendOnlyInfluenceIndex()
    for action in actions:
        index.add(forest.add(action))
    return index


def drive(algorithm, actions, slide=1):
    for batch in batched(actions, slide):
        algorithm.process(batch)
    return algorithm


class TestSeedSelection:
    def test_empty_candidates(self):
        index = build_index([])
        seeds, value = greedy_seed_selection(index, [], 3, CardinalityInfluence())
        assert seeds == set() and value == 0.0

    def test_stops_when_gain_exhausted(self):
        actions = random_stream(20, 3, seed=1)
        index = build_index(actions)
        seeds, _ = greedy_seed_selection(
            index, range(3), 10, CardinalityInfluence()
        )
        assert len(seeds) <= 3

    def test_lazy_equals_naive(self):
        """CELF must select the same value as the plain greedy."""
        func = CardinalityInfluence()
        for seed in range(6):
            actions = random_stream(80, 9, seed=seed)
            index = build_index(actions)
            candidates = list(range(9))
            lazy_seeds, lazy_value = greedy_seed_selection(
                index, candidates, 3, func, lazy=True
            )
            naive_seeds, naive_value = greedy_seed_selection(
                index, candidates, 3, func, lazy=False
            )
            assert lazy_value == pytest.approx(naive_value)

    def test_weighted_function(self):
        actions = random_stream(60, 6, seed=3)
        index = build_index(actions)
        weights = {u: 10.0 if u == 0 else 1.0 for u in range(6)}
        func = WeightedCardinalityInfluence(weights)
        seeds, value = greedy_seed_selection(index, range(6), 1, func)
        # The single best seed must cover user 0 if anyone influences it.
        covering = [u for u in range(6) if 0 in index.influence_set(u)]
        if covering:
            chosen = next(iter(seeds))
            assert 0 in index.influence_set(chosen)

    def test_non_modular_function(self):
        actions = random_stream(50, 5, seed=4)
        index = build_index(actions)
        func = ConformityAwareInfluence({}, {}, 0.7, 0.6)
        seeds, value = greedy_seed_selection(index, range(5), 2, func)
        assert value == pytest.approx(func.evaluate(seeds, index))


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(1, 3))
def test_greedy_respects_1_minus_1_over_e(seed, k):
    """Property: greedy value >= (1 - 1/e) * OPT (Nemhauser et al.)."""
    actions = random_stream(40, 6, seed=seed)
    index = build_index(actions)
    func = CardinalityInfluence()
    users = [u for u in range(6) if u in index]
    seeds, value = greedy_seed_selection(index, users, k, func)
    best = 0.0
    for combo in itertools.combinations(users, min(k, len(users))):
        best = max(best, func.evaluate(combo, index))
    assert value >= (1 - 1 / 2.718281828) * best - 1e-9


class TestWindowedGreedy:
    def test_paper_example(self):
        greedy = drive(WindowedGreedy(window_size=8, k=2), make_paper_stream()[:8])
        result = greedy.query()
        assert result.seeds == {1, 3}
        assert result.value == 5.0

    def test_paper_example_after_slide(self):
        greedy = drive(WindowedGreedy(window_size=8, k=2), make_paper_stream())
        result = greedy.query()
        assert result.seeds == {2, 3}
        assert result.value == 6.0

    def test_expiry_reduces_values(self):
        actions = random_stream(100, 6, seed=5)
        greedy = WindowedGreedy(window_size=10, k=2)
        drive(greedy, actions)
        # Window holds 10 actions; influence value bounded by active users.
        assert greedy.query().value <= len(greedy.window.active_users)

    def test_naive_flag(self):
        actions = random_stream(60, 6, seed=6)
        lazy = drive(WindowedGreedy(window_size=20, k=2, lazy=True), actions)
        naive = drive(WindowedGreedy(window_size=20, k=2, lazy=False), actions)
        assert lazy.query().value == pytest.approx(naive.query().value)

    def test_query_is_stateless(self):
        greedy = drive(WindowedGreedy(window_size=10, k=2),
                       random_stream(30, 5, seed=7))
        first = greedy.query()
        second = greedy.query()
        assert first == second

    def test_retention_validation(self):
        with pytest.raises(ValueError, match="retention"):
            WindowedGreedy(window_size=10, k=1, retention=5)
