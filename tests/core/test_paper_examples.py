"""End-to-end reproduction of the paper's running examples (Figures 1-4).

These tests pin the library to the worked examples of Sections 3-5:
Example 1 (influence sets), Example 2 (SIM optima), Example 3 (IC
checkpoint maintenance), and Example 5's qualitative SIC behaviour.
"""

import itertools

from repro.core.greedy import WindowedGreedy
from repro.core.ic import InfluentialCheckpoints
from repro.core.sic import SparseInfluentialCheckpoints
from repro.core.diffusion import DiffusionForest
from repro.core.influence_index import WindowInfluenceIndex
from tests.conftest import make_paper_stream


def exact_optimum(index, k):
    users = list(index.influencers())
    best_value, best_set = 0, frozenset()
    for size in range(1, min(k, len(users)) + 1):
        for combo in itertools.combinations(users, size):
            value = len(index.coverage(combo))
            if value > best_value:
                best_value, best_set = value, frozenset(combo)
    return best_set, best_value


def window_index(actions, window_size):
    forest = DiffusionForest()
    index = WindowInfluenceIndex()
    records = []
    for action in actions:
        record = forest.add(action)
        records.append(record)
        index.add(record)
        if len(records) > window_size:
            index.remove(records.pop(0))
    return index


class TestExample1:
    """Figure 1(b)/(c): influence sets at t=8 and t=10 over N=8."""

    def test_influence_sets_w8(self):
        index = window_index(make_paper_stream()[:8], 8)
        expected = {
            1: {1, 2, 3},
            2: {2},
            3: {1, 3, 4, 5},
            4: {4},
            5: {4, 5},
        }
        for user, members in expected.items():
            assert index.influence_set(user) == members
        assert index.influence_set(6) == frozenset()

    def test_influence_sets_w10(self):
        index = window_index(make_paper_stream(), 8)
        expected = {
            1: {1, 3},
            2: {2, 6},
            3: {1, 3, 4, 5},
            4: {4},
            5: {4, 5},
            6: {6},
        }
        for user, members in expected.items():
            assert index.influence_set(user) == members


class TestExample2:
    """SIM optima: S*_8 = {u1,u3} (f=5) and S*_10 = {u2,u3} (f=6)."""

    def test_optimum_at_8(self):
        index = window_index(make_paper_stream()[:8], 8)
        seeds, value = exact_optimum(index, k=2)
        assert value == 5
        assert seeds == {1, 3}

    def test_optimum_at_10(self):
        index = window_index(make_paper_stream(), 8)
        seeds, value = exact_optimum(index, k=2)
        assert value == 6
        assert seeds == {2, 3}

    def test_old_optimum_degrades_to_4(self):
        index = window_index(make_paper_stream(), 8)
        assert len(index.coverage({1, 3})) == 4

    def test_greedy_finds_both_optima(self):
        greedy = WindowedGreedy(window_size=8, k=2)
        for action in make_paper_stream()[:8]:
            greedy.process([action])
        assert greedy.query().seeds == {1, 3}
        for action in make_paper_stream()[8:]:
            greedy.process([action])
        assert greedy.query().seeds == {2, 3}


class TestExample3:
    """Figure 2: IC keeps N checkpoints and answers from the oldest."""

    def test_checkpoint_count_equals_window(self):
        ic = InfluentialCheckpoints(window_size=8, k=2, beta=0.3)
        for action in make_paper_stream()[:8]:
            ic.process([action])
        assert ic.checkpoint_count == 8

    def test_answer_at_8_matches_figure2(self):
        ic = InfluentialCheckpoints(window_size=8, k=2, beta=0.3)
        for action in make_paper_stream()[:8]:
            ic.process([action])
        result = ic.query()
        assert result.seeds == {1, 3}
        assert result.value == 5.0

    def test_answer_at_10_matches_figure2(self):
        ic = InfluentialCheckpoints(window_size=8, k=2, beta=0.3)
        for action in make_paper_stream():
            ic.process([action])
        result = ic.query()
        assert result.seeds == {2, 3}
        assert result.value == 6.0

    def test_checkpoint_values_decrease_with_position(self):
        """Figure 2: later checkpoints cover fewer actions, so their values
        are non-increasing from oldest to newest."""
        ic = InfluentialCheckpoints(window_size=8, k=2, beta=0.3)
        for action in make_paper_stream()[:8]:
            ic.process([action])
        values = [c.value for c in ic.checkpoints]
        assert values == sorted(values, reverse=True)
        assert values[-1] == 1.0  # the newest covers a single action


class TestExample5:
    """Figure 4: SIC prunes checkpoints yet answers near-optimally."""

    def test_sic_keeps_fewer_checkpoints_than_ic(self):
        sic = SparseInfluentialCheckpoints(window_size=8, k=2, beta=0.3)
        for action in make_paper_stream()[:8]:
            sic.process([action])
        assert sic.checkpoint_count < 8

    def test_sic_answer_at_8(self):
        sic = SparseInfluentialCheckpoints(window_size=8, k=2, beta=0.3)
        for action in make_paper_stream()[:8]:
            sic.process([action])
        result = sic.query()
        assert result.seeds == {1, 3}
        assert result.value == 5.0

    def test_sic_answer_at_10_within_bound(self):
        """Theorem 4: value >= (1/4 - beta) * OPT; seeds match the paper."""
        sic = SparseInfluentialCheckpoints(window_size=8, k=2, beta=0.3)
        for action in make_paper_stream():
            sic.process([action])
        result = sic.query()
        assert result.seeds == {2, 3}
        index = window_index(make_paper_stream(), 8)
        _, opt = exact_optimum(index, k=2)
        assert len(index.coverage(result.seeds)) >= (0.25 - 0.3) * opt
        assert len(index.coverage(result.seeds)) == 6  # actually optimal
