"""Unit tests for the SIMAlgorithm base plumbing."""

import pytest

from repro.core.actions import Action
from repro.core.base import SIMAlgorithm, SIMResult
from tests.conftest import random_stream


class Recorder(SIMAlgorithm):
    """Minimal concrete algorithm capturing slide callbacks."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.slides = []

    def _on_slide(self, arrived, expired):
        self.slides.append((list(arrived), list(expired)))

    def query(self):
        return SIMResult(time=self.now, seeds=frozenset(), value=0.0)


class TestValidation:
    def test_rejects_non_positive_k(self):
        with pytest.raises(ValueError, match="k must be positive"):
            Recorder(window_size=5, k=0)

    def test_rejects_small_retention(self):
        with pytest.raises(ValueError, match="retention"):
            Recorder(window_size=10, k=1, retention=9)

    def test_accepts_retention_equal_to_window(self):
        Recorder(window_size=10, k=1, retention=10)


class TestSliding:
    def test_empty_batch_is_noop(self):
        algorithm = Recorder(window_size=4, k=1)
        algorithm.process([])
        assert algorithm.slides == []
        assert algorithm.actions_processed == 0

    def test_arrived_records_match_batch(self):
        algorithm = Recorder(window_size=4, k=1)
        batch = [Action.root(1, 5), Action.response(2, 6, 1)]
        algorithm.process(batch)
        (arrived, expired), = algorithm.slides
        assert [r.time for r in arrived] == [1, 2]
        assert [r.user for r in arrived] == [5, 6]
        assert expired == []

    def test_expired_records_reported_in_order(self):
        algorithm = Recorder(window_size=3, k=1)
        actions = random_stream(10, 4, seed=1)
        for action in actions:
            algorithm.process([action])
        # After 10 single slides with N=3, expiries are actions 1..7.
        expired_times = [
            r.time for _, expired in algorithm.slides for r in expired
        ]
        assert expired_times == list(range(1, 8))

    def test_now_tracks_latest_action(self):
        algorithm = Recorder(window_size=4, k=1)
        algorithm.process([Action.root(1, 0)])
        assert algorithm.now == 1
        algorithm.process([Action.root(2, 0), Action.root(3, 1)])
        assert algorithm.now == 3

    def test_process_stream(self):
        algorithm = Recorder(window_size=4, k=1)
        from repro.core.stream import batched

        algorithm.process_stream(batched(random_stream(9, 3, seed=2), 3))
        assert algorithm.actions_processed == 9
        assert len(algorithm.slides) == 3

    def test_properties(self):
        algorithm = Recorder(window_size=7, k=3)
        assert algorithm.k == 3
        assert algorithm.window_size == 7
        assert algorithm.window.size == 7
        assert algorithm.forest.actions_seen == 0
