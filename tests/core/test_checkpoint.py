"""Unit tests for Checkpoint and OracleSpec."""

import pytest

from repro.core.actions import Action
from repro.core.checkpoint import Checkpoint, OracleSpec
from repro.core.diffusion import DiffusionForest
from repro.influence.functions import CardinalityInfluence


def spec(k=2, name="sieve", **params):
    if name in ("sieve", "threshold") and "beta" not in params:
        params["beta"] = 0.2
    return OracleSpec(name=name, k=k, func=CardinalityInfluence(), params=params)


class TestOracleSpec:
    def test_build_creates_fresh_oracle(self):
        s = spec()
        from repro.core.influence_index import AppendOnlyInfluenceIndex

        a = s.build(AppendOnlyInfluenceIndex())
        b = s.build(AppendOnlyInfluenceIndex())
        assert a is not b
        assert a.k == 2

    def test_params_forwarded(self):
        s = spec(name="sieve", beta=0.45)
        from repro.core.influence_index import AppendOnlyInfluenceIndex

        oracle = s.build(AppendOnlyInfluenceIndex())
        assert oracle._beta == pytest.approx(0.45)


class TestCheckpoint:
    def test_rejects_non_positive_start(self):
        with pytest.raises(ValueError, match="positive"):
            Checkpoint(0, spec())

    def test_rejects_older_actions(self):
        forest = DiffusionForest()
        record = forest.add(Action.root(1, 1))
        checkpoint = Checkpoint(5, spec())
        with pytest.raises(ValueError, match="older action"):
            checkpoint.process(record)

    def test_processes_suffix(self):
        forest = DiffusionForest()
        checkpoint = Checkpoint(1, spec())
        for t in range(1, 6):
            checkpoint.process(forest.add(Action.root(t, t % 3)))
        assert checkpoint.actions_processed == 5
        assert checkpoint.value >= 1.0
        assert len(checkpoint.seeds) <= 2

    def test_position_and_coverage(self):
        checkpoint = Checkpoint(start=7, spec=spec())
        # Window of size 10 ending at t=16 starts at 7: position 1.
        assert checkpoint.position(now=16, window_size=10) == 1
        assert checkpoint.covers_window(16, 10)
        # At t=17 the suffix holds 11 > 10 actions: expired.
        assert checkpoint.position(17, 10) == 0
        assert not checkpoint.covers_window(17, 10)
        # A younger checkpoint covers a strict subset.
        assert checkpoint.position(12, 10) == 5

    def test_value_equals_oracle_value(self):
        forest = DiffusionForest()
        checkpoint = Checkpoint(1, spec())
        for t in range(1, 10):
            checkpoint.process(forest.add(Action.root(t, t % 4)))
        assert checkpoint.value == checkpoint.oracle.value
        assert checkpoint.seeds == checkpoint.oracle.seeds

    def test_index_exposed(self):
        forest = DiffusionForest()
        checkpoint = Checkpoint(1, spec())
        checkpoint.process(forest.add(Action.root(1, 9)))
        assert checkpoint.index.influence_set(9) == {9}
