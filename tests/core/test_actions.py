"""Unit tests for the Action model."""

import pytest

from repro.core.actions import ROOT, Action


class TestConstruction:
    def test_root_action(self):
        action = Action.root(5, 3)
        assert action.time == 5
        assert action.user == 3
        assert action.parent == ROOT
        assert action.is_root

    def test_response_action(self):
        action = Action.response(7, 2, 4)
        assert not action.is_root
        assert action.parent == 4

    def test_default_parent_is_root(self):
        assert Action(time=1, user=0).is_root

    def test_actions_are_frozen(self):
        action = Action.root(1, 1)
        with pytest.raises(AttributeError):
            action.user = 2

    def test_actions_are_hashable_and_equal_by_value(self):
        assert Action.root(1, 1) == Action(time=1, user=1, parent=ROOT)
        assert len({Action.root(1, 1), Action.root(1, 1)}) == 1


class TestValidation:
    def test_rejects_non_positive_time(self):
        with pytest.raises(ValueError, match="time must be positive"):
            Action(time=0, user=1)

    def test_rejects_negative_user(self):
        with pytest.raises(ValueError, match="user id"):
            Action(time=1, user=-2)

    def test_rejects_future_parent(self):
        with pytest.raises(ValueError, match="parent"):
            Action.response(3, 1, 5)

    def test_rejects_self_parent(self):
        with pytest.raises(ValueError, match="parent"):
            Action.response(3, 1, 3)

    def test_rejects_zero_or_negative_parent(self):
        with pytest.raises(ValueError, match="parent"):
            Action(time=3, user=1, parent=0)
        with pytest.raises(ValueError, match="parent"):
            Action(time=3, user=1, parent=-7)


class TestResponseDistance:
    def test_root_has_no_distance(self):
        assert Action.root(4, 1).response_distance is None

    def test_distance_is_time_gap(self):
        assert Action.response(10, 1, 3).response_distance == 7

    def test_minimal_distance(self):
        assert Action.response(2, 1, 1).response_distance == 1


class TestDisplay:
    def test_str_of_root(self):
        assert str(Action.root(3, 7)) == "<u7, nil>_3"

    def test_str_of_response(self):
        assert str(Action.response(9, 2, 4)) == "<u2, a4>_9"
