"""Unit and property tests for the influence indexes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diffusion import DiffusionForest
from repro.core.influence_index import (
    AppendOnlyInfluenceIndex,
    WindowInfluenceIndex,
)
from tests.conftest import make_paper_stream, random_stream


def feed_window(actions, window_size):
    """Reference driver: exact window index over the last `window_size`."""
    forest = DiffusionForest()
    index = WindowInfluenceIndex()
    records = []
    for action in actions:
        record = forest.add(action)
        records.append(record)
        index.add(record)
        if len(records) > window_size:
            index.remove(records.pop(0))
    return index


def brute_force_influence(actions, window_size):
    """Definition 1 computed from scratch: v in I(u) iff some window action
    by v is (in)directly triggered by an action of u (or v == performer of
    an action crediting itself)."""
    by_time = {a.time: a for a in actions}
    window = actions[-window_size:]
    influence = {}
    for action in window:
        # All chain users influence the performer.
        current = action
        chain_users = set()
        while True:
            chain_users.add(current.user)
            if current.is_root:
                break
            current = by_time[current.parent]
        for u in chain_users:
            influence.setdefault(u, set()).add(action.user)
    return influence


class TestPaperExample:
    def test_influence_sets_at_time_8(self):
        index = feed_window(make_paper_stream()[:8], 8)
        assert index.influence_set(1) == {1, 2, 3}
        assert index.influence_set(2) == {2}
        assert index.influence_set(3) == {1, 3, 4, 5}
        assert index.influence_set(4) == {4}
        assert index.influence_set(5) == {4, 5}
        assert index.influence_set(6) == frozenset()

    def test_influence_sets_at_time_10(self):
        index = feed_window(make_paper_stream(), 8)
        assert index.influence_set(1) == {1, 3}
        assert index.influence_set(2) == {2, 6}
        assert index.influence_set(3) == {1, 3, 4, 5}
        assert index.influence_set(4) == {4}
        assert index.influence_set(5) == {4, 5}
        assert index.influence_set(6) == {6}

    def test_optimal_coverage_at_8_and_10(self):
        index8 = feed_window(make_paper_stream()[:8], 8)
        assert index8.coverage([1, 3]) == {1, 2, 3, 4, 5}
        index10 = feed_window(make_paper_stream(), 8)
        assert index10.coverage([2, 3]) == {1, 2, 3, 4, 5, 6}
        # The old optimum loses u2 (Example 2).
        assert len(index10.coverage([1, 3])) == 4


class TestWindowIndex:
    def test_empty_index(self):
        index = WindowInfluenceIndex()
        assert len(index) == 0
        assert index.influence_set(1) == frozenset()
        assert index.coverage([1, 2]) == set()
        assert 1 not in index

    def test_remove_unknown_pair_raises(self):
        index = WindowInfluenceIndex()
        forest = DiffusionForest()
        from repro.core.actions import Action

        record = forest.add(Action.root(1, 1))
        with pytest.raises(KeyError, match="never added"):
            index.remove(record)

    def test_add_remove_roundtrip_is_empty(self, small_random_stream):
        forest = DiffusionForest()
        index = WindowInfluenceIndex()
        records = [forest.add(a) for a in small_random_stream]
        for record in records:
            index.add(record)
        for record in records:
            index.remove(record)
        assert len(index) == 0
        assert index.pair_count() == 0

    def test_edges_multiplicity(self):
        from repro.core.actions import Action

        forest = DiffusionForest()
        index = WindowInfluenceIndex()
        index.add(forest.add(Action.root(1, 1)))
        index.add(forest.add(Action.response(2, 2, 1)))
        index.add(forest.add(Action.response(3, 2, 1)))
        edges = {(u, v): m for u, v, m in index.edges()}
        assert edges[(1, 2)] == 2
        assert edges[(1, 1)] == 1
        assert edges[(2, 2)] == 2

    def test_influencers_iteration(self):
        index = feed_window(make_paper_stream()[:8], 8)
        assert set(index.influencers()) == {1, 2, 3, 4, 5}


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    window_size=st.integers(1, 25),
)
def test_window_index_matches_brute_force(seed, window_size):
    """Property: incremental index == recompute-from-definition."""
    actions = random_stream(50, 7, seed=seed)
    index = feed_window(actions, window_size)
    expected = brute_force_influence(actions, window_size)
    assert set(index.influencers()) == set(expected)
    for user in expected:
        assert index.influence_set(user) == expected[user], user


class TestAppendOnlyIndex:
    def test_add_reports_updated_users(self):
        from repro.core.actions import Action

        forest = DiffusionForest()
        index = AppendOnlyInfluenceIndex()
        r1 = forest.add(Action.root(1, 1))
        assert index.add(r1) == [1]
        r2 = forest.add(Action.response(2, 2, 1))
        assert set(index.add(r2)) == {1, 2}
        # Same structure again: no set grows.
        r3 = forest.add(Action.response(3, 2, 1))
        assert index.add(r3) == []

    def test_sets_only_grow(self, small_random_stream):
        forest = DiffusionForest()
        index = AppendOnlyInfluenceIndex()
        previous_sizes = {}
        for action in small_random_stream:
            index.add(forest.add(action))
            for user in list(previous_sizes):
                assert len(index.influence_set(user)) >= previous_sizes[user]
            for user in range(8):
                previous_sizes[user] = len(index.influence_set(user))

    def test_coverage_union(self):
        from repro.core.actions import Action

        forest = DiffusionForest()
        index = AppendOnlyInfluenceIndex()
        index.add(forest.add(Action.root(1, 1)))
        index.add(forest.add(Action.response(2, 2, 1)))
        index.add(forest.add(Action.root(3, 3)))
        assert index.coverage([1, 3]) == {1, 2, 3}
        assert index.coverage([]) == set()
        assert 1 in index and 9 not in index
