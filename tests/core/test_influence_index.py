"""Unit and property tests for the influence indexes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diffusion import DiffusionForest
from repro.core.influence_index import (
    AppendOnlyInfluenceIndex,
    WindowInfluenceIndex,
)
from tests.conftest import make_paper_stream, random_stream


def feed_window(actions, window_size):
    """Reference driver: exact window index over the last `window_size`."""
    forest = DiffusionForest()
    index = WindowInfluenceIndex()
    records = []
    for action in actions:
        record = forest.add(action)
        records.append(record)
        index.add(record)
        if len(records) > window_size:
            index.remove(records.pop(0))
    return index


def brute_force_influence(actions, window_size):
    """Definition 1 computed from scratch: v in I(u) iff some window action
    by v is (in)directly triggered by an action of u (or v == performer of
    an action crediting itself)."""
    by_time = {a.time: a for a in actions}
    window = actions[-window_size:]
    influence = {}
    for action in window:
        # All chain users influence the performer.
        current = action
        chain_users = set()
        while True:
            chain_users.add(current.user)
            if current.is_root:
                break
            current = by_time[current.parent]
        for u in chain_users:
            influence.setdefault(u, set()).add(action.user)
    return influence


class TestPaperExample:
    def test_influence_sets_at_time_8(self):
        index = feed_window(make_paper_stream()[:8], 8)
        assert index.influence_set(1) == {1, 2, 3}
        assert index.influence_set(2) == {2}
        assert index.influence_set(3) == {1, 3, 4, 5}
        assert index.influence_set(4) == {4}
        assert index.influence_set(5) == {4, 5}
        assert index.influence_set(6) == frozenset()

    def test_influence_sets_at_time_10(self):
        index = feed_window(make_paper_stream(), 8)
        assert index.influence_set(1) == {1, 3}
        assert index.influence_set(2) == {2, 6}
        assert index.influence_set(3) == {1, 3, 4, 5}
        assert index.influence_set(4) == {4}
        assert index.influence_set(5) == {4, 5}
        assert index.influence_set(6) == {6}

    def test_optimal_coverage_at_8_and_10(self):
        index8 = feed_window(make_paper_stream()[:8], 8)
        assert index8.coverage([1, 3]) == {1, 2, 3, 4, 5}
        index10 = feed_window(make_paper_stream(), 8)
        assert index10.coverage([2, 3]) == {1, 2, 3, 4, 5, 6}
        # The old optimum loses u2 (Example 2).
        assert len(index10.coverage([1, 3])) == 4


class TestWindowIndex:
    def test_empty_index(self):
        index = WindowInfluenceIndex()
        assert len(index) == 0
        assert index.influence_set(1) == frozenset()
        assert index.coverage([1, 2]) == set()
        assert 1 not in index

    def test_remove_unknown_pair_raises(self):
        index = WindowInfluenceIndex()
        forest = DiffusionForest()
        from repro.core.actions import Action

        record = forest.add(Action.root(1, 1))
        with pytest.raises(KeyError, match="never added"):
            index.remove(record)

    def test_add_remove_roundtrip_is_empty(self, small_random_stream):
        forest = DiffusionForest()
        index = WindowInfluenceIndex()
        records = [forest.add(a) for a in small_random_stream]
        for record in records:
            index.add(record)
        for record in records:
            index.remove(record)
        assert len(index) == 0
        assert index.pair_count() == 0

    def test_edges_multiplicity(self):
        from repro.core.actions import Action

        forest = DiffusionForest()
        index = WindowInfluenceIndex()
        index.add(forest.add(Action.root(1, 1)))
        index.add(forest.add(Action.response(2, 2, 1)))
        index.add(forest.add(Action.response(3, 2, 1)))
        edges = {(u, v): m for u, v, m in index.edges()}
        assert edges[(1, 2)] == 2
        assert edges[(1, 1)] == 1
        assert edges[(2, 2)] == 2

    def test_influencers_iteration(self):
        index = feed_window(make_paper_stream()[:8], 8)
        assert set(index.influencers()) == {1, 2, 3, 4, 5}


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    window_size=st.integers(1, 25),
)
def test_window_index_matches_brute_force(seed, window_size):
    """Property: incremental index == recompute-from-definition."""
    actions = random_stream(50, 7, seed=seed)
    index = feed_window(actions, window_size)
    expected = brute_force_influence(actions, window_size)
    assert set(index.influencers()) == set(expected)
    for user in expected:
        assert index.influence_set(user) == expected[user], user


class TestAppendOnlyIndex:
    def test_add_reports_updated_users(self):
        from repro.core.actions import Action

        forest = DiffusionForest()
        index = AppendOnlyInfluenceIndex()
        r1 = forest.add(Action.root(1, 1))
        assert index.add(r1) == [1]
        r2 = forest.add(Action.response(2, 2, 1))
        assert set(index.add(r2)) == {1, 2}
        # Same structure again: no set grows.
        r3 = forest.add(Action.response(3, 2, 1))
        assert index.add(r3) == []

    def test_sets_only_grow(self, small_random_stream):
        forest = DiffusionForest()
        index = AppendOnlyInfluenceIndex()
        previous_sizes = {}
        for action in small_random_stream:
            index.add(forest.add(action))
            for user in list(previous_sizes):
                assert len(index.influence_set(user)) >= previous_sizes[user]
            for user in range(8):
                previous_sizes[user] = len(index.influence_set(user))

    def test_coverage_union(self):
        from repro.core.actions import Action

        forest = DiffusionForest()
        index = AppendOnlyInfluenceIndex()
        index.add(forest.add(Action.root(1, 1)))
        index.add(forest.add(Action.response(2, 2, 1)))
        index.add(forest.add(Action.root(3, 3)))
        assert index.coverage([1, 3]) == {1, 2, 3}
        assert index.coverage([]) == set()
        assert 1 in index and 9 not in index


class TestWindowIndexCaching:
    def test_influence_set_cached_between_mutations(self):
        from repro.core.actions import Action

        forest = DiffusionForest()
        index = WindowInfluenceIndex()
        index.add(forest.add(Action.root(1, 1)))
        first = index.influence_set(1)
        assert index.influence_set(1) is first  # no copy per call
        index.add(forest.add(Action.response(2, 2, 1)))
        second = index.influence_set(1)
        assert second is not first
        assert second == {1, 2}

    def test_cache_invalidated_on_remove(self):
        from repro.core.actions import Action

        forest = DiffusionForest()
        index = WindowInfluenceIndex()
        r1 = forest.add(Action.root(1, 1))
        r2 = forest.add(Action.response(2, 2, 1))
        index.add(r1)
        index.add(r2)
        assert index.influence_set(1) == {1, 2}
        index.remove(r2)
        assert index.influence_set(1) == {1}
        index.remove(r1)
        assert index.influence_set(1) == frozenset()

    def test_multiplicity_change_keeps_cache_valid(self):
        from repro.core.actions import Action

        forest = DiffusionForest()
        index = WindowInfluenceIndex()
        r1 = forest.add(Action.root(1, 1))
        r2 = forest.add(Action.response(2, 2, 1))
        r3 = forest.add(Action.response(3, 2, 1))
        index.add(r1)
        index.add(r2)
        cached = index.influence_set(1)
        index.add(r3)  # (1 -> 2) multiplicity 2: membership unchanged
        assert index.influence_set(1) is cached
        index.remove(r2)  # multiplicity back to 1: still a member
        assert index.influence_set(1) == {1, 2}


class TestVersionedIndex:
    def build(self, actions):
        from repro.core.influence_index import VersionedInfluenceIndex

        forest = DiffusionForest()
        index = VersionedInfluenceIndex()
        for action in actions:
            index.add(forest.add(action))
        return index

    def test_add_reports_previous_latest(self):
        from repro.core.actions import Action
        from repro.core.influence_index import VersionedInfluenceIndex

        forest = DiffusionForest()
        index = VersionedInfluenceIndex()
        r1 = forest.add(Action.root(1, 1))
        assert index.add(r1) == [(1, 0)]
        r2 = forest.add(Action.response(2, 2, 1))
        assert index.add(r2) == [(1, 0), (2, 0)]
        # Same pair again: previous latest is reported, not zero.
        r3 = forest.add(Action.response(3, 2, 1))
        assert index.add(r3) == [(1, 2), (2, 2)]
        assert index.latest(1, 2) == 3
        assert index.pair_count == 3  # (1,1), (1,2), (2,2)

    def test_views_filter_by_start(self):
        from repro.core.actions import Action

        index = self.build(
            [
                Action.root(1, 1),
                Action.response(2, 2, 1),
                Action.root(3, 3),
                Action.response(4, 2, 1),  # re-credits (1 -> 2) at t=4
            ]
        )
        v1, v3, v4 = index.view(1), index.view(3), index.view(4)
        assert v1.influence_set(1) == {1, 2}
        assert v3.influence_set(1) == {2}  # only the t=4 re-credit survives
        assert v4.influence_set(1) == {2}
        assert v3.influence_set(3) == {3}
        assert v4.influence_set(3) == set()
        assert v1.coverage([1, 3]) == {1, 2, 3}
        assert v4.coverage([1, 3]) == {2}
        assert 1 in v1 and 1 in v4
        assert 3 in v3 and 3 not in v4
        # At start 4 only the t=4 action is visible; it credits u1 and the
        # performer u2 (self-pair), so two users have non-empty sets.
        assert len(v1) == 3 and len(v4) == 2
        assert v4.influence_set(2) == {2}

    def test_view_matches_append_only_suffix(self, small_random_stream):
        from repro.core.influence_index import VersionedInfluenceIndex

        forest = DiffusionForest()
        shared = VersionedInfluenceIndex()
        suffix_start = 20
        reference = AppendOnlyInfluenceIndex()
        for action in small_random_stream:
            record = forest.add(action)
            shared.add(record)
            if record.time >= suffix_start:
                reference.add(record)
        view = shared.view(suffix_start)
        for user in range(10):
            assert view.influence_set(user) == set(
                reference.influence_set(user)
            ), user
            assert (user in view) == (user in reference)

    def test_compact_reclaims_invisible_pairs(self):
        from repro.core.actions import Action
        from repro.core.influence_index import VersionedInfluenceIndex

        forest = DiffusionForest()
        index = VersionedInfluenceIndex()
        for t in range(1, 11):
            index.add(forest.add(Action.root(t, t)))  # 10 self-pairs
        assert index.pair_count == 10
        dropped = index.compact(6, force=True)
        assert dropped == 5
        assert index.pair_count == 5
        assert index.floor == 6
        # Visible sets are unaffected.
        assert index.view(6).influence_set(7) == {7}
        assert index.view(6).influence_set(3) == set()
        # The full-map fast path kicks in for starts at or below the floor.
        assert index.view(6).influence_set(8) == {8}

    def test_compact_is_amortised(self):
        from repro.core.actions import Action
        from repro.core.influence_index import VersionedInfluenceIndex

        forest = DiffusionForest()
        index = VersionedInfluenceIndex()
        for t in range(1, 40):
            index.add(forest.add(Action.root(t, t)))
        # Below the sweep threshold nothing happens without force.
        assert index.compact(30) == 0
        assert index.floor == 0
        assert index.compact(30, force=True) == 29
