"""Equivalence proof: columnar oracle kernel ≡ per-checkpoint oracles.

The columnar plane replaces every checkpoint's private sieve/threshold
oracle object with one engine-owned :class:`ColumnarThresholdKernel` that
stores all checkpoints' instance state in flat numpy columns and serves a
slide with two vectorized passes (singleton-cache update, admission
gains).  These tests drive the kernel and the object plane over identical
random streams and assert they are indistinguishable, slide by slide:

* query answers (times, seeds, *exact* float values);
* the retained checkpoint populations (starts, values, seeds, absorbed
  action counts) — so SIC pruning coincides too;
* the full serialized oracle state of every live checkpoint, canonicalized
  (the kernel emits caches/members/seeds in column order, the objects in
  set-iteration order; sorting both sides makes the comparison exact).

Both kernel event paths are proven: the compiled C fast path (when a C
compiler is available) and the pure-numpy fallback, forced per-run by
nulling the kernel's loaded library handle.

The streams run well past the window, so checkpoints expire mid-run (the
``expired`` witness asserts it) — expiry/teardown bookkeeping in the
column plane is therefore part of the proof, not an untested corner.
"""

from __future__ import annotations

import pytest

from repro.core.ic import InfluentialCheckpoints
from repro.core.sic import SparseInfluentialCheckpoints
from repro.core.stream import batched
from repro.influence.functions import WeightedCardinalityInfluence
from tests.conftest import random_stream

FRAMEWORKS = {"ic": InfluentialCheckpoints, "sic": SparseInfluentialCheckpoints}

#: Oracles the columnar kernel supports (the threshold-guessing pair).
ORACLES = ["sieve", "threshold"]


def canon(state):
    """Canonicalize an oracle ``state_dict`` for cross-plane comparison.

    The planes agree on content but not on emission order: the kernel
    walks columns/slots, the objects iterate dicts and sets.  Sorting the
    order-free collections makes equality exact (values are compared
    bit-for-bit — no rounding).
    """
    state = dict(state)
    state["singleton_cache"] = sorted(map(tuple, state["singleton_cache"]))
    state["member_counts"] = sorted(map(tuple, state["member_counts"]))
    state["best_seeds"] = sorted(state["best_seeds"])
    state["instances"] = [
        [j, {**f, "seeds": sorted(f["seeds"]), "covered": sorted(f["covered"])}]
        for j, f in state["instances"]
    ]
    return state


def run_plane(cls, oracle, slide, seed, columnar, force_numpy=False):
    """Drive one plane over the stream; return per-slide snapshots.

    Returns ``(snapshots, expired)`` where each snapshot is the query
    answer, the checkpoint populations, and every checkpoint's
    canonicalized oracle state; ``expired`` is the set of checkpoint
    starts that were retired before the stream ended.
    """
    actions = random_stream(120, 8, seed=seed)
    algorithm = cls(
        window_size=40, k=3, beta=0.25, oracle=oracle, columnar=columnar
    )
    if force_numpy:
        assert algorithm.columnar_kernel is not None
        algorithm.columnar_kernel._cfast = None
    snapshots = []
    starts_seen = set()
    for batch in batched(actions, slide):
        algorithm.process(batch)
        answer = algorithm.query()
        starts_seen.update(c.start for c in algorithm.checkpoints)
        snapshots.append(
            (
                (answer.time, answer.seeds, answer.value),
                [
                    (c.start, c.value, c.seeds, c.actions_processed)
                    for c in algorithm.checkpoints
                ],
                [
                    (c.start, canon(c.oracle.state_dict()))
                    for c in algorithm.checkpoints
                ],
            )
        )
    expired = starts_seen - {c.start for c in algorithm.checkpoints}
    return snapshots, expired


@pytest.mark.parametrize("framework", ["ic", "sic"])
@pytest.mark.parametrize("oracle", ORACLES)
@pytest.mark.parametrize("slide", [1, 5])
def test_columnar_object_equivalence(framework, oracle, slide):
    """The full matrix: IC+SIC × sieve/threshold × L∈{1, 5}, both kernel
    event paths, three random streams each."""
    cls = FRAMEWORKS[framework]
    for seed in (0, 1, 2):
        reference, ref_expired = run_plane(cls, oracle, slide, seed, False)
        # Checkpoints genuinely expired mid-run, so teardown is exercised.
        assert ref_expired, (framework, oracle, slide, seed)
        for path in ("c", "numpy"):
            snapshots, expired = run_plane(
                cls, oracle, slide, seed, True, force_numpy=(path == "numpy")
            )
            key = (framework, oracle, slide, seed, path)
            assert snapshots == reference, key
            assert expired == ref_expired, key


def test_columnar_is_the_default_where_supported():
    ic = InfluentialCheckpoints(window_size=10, k=2, beta=0.3)
    assert ic.columnar
    assert ic.columnar_kernel is not None


class TestPlaneFallback:
    """Auto-selection (``columnar=None``) silently falls back to the
    object plane on unsupported configs; ``columnar=True`` refuses."""

    def test_non_uniform_weights_fall_back(self):
        func = WeightedCardinalityInfluence({1: 2.0})
        ic = InfluentialCheckpoints(window_size=10, k=2, beta=0.3, func=func)
        assert not ic.columnar
        assert ic.columnar_kernel is None
        with pytest.raises(ValueError, match="popcount"):
            InfluentialCheckpoints(
                window_size=10, k=2, beta=0.3, func=func, columnar=True
            )

    def test_reference_index_mode_falls_back(self):
        ic = InfluentialCheckpoints(
            window_size=10, k=2, beta=0.3, shared_index=False
        )
        assert not ic.columnar
        with pytest.raises(ValueError, match="shared_index=False"):
            InfluentialCheckpoints(
                window_size=10, k=2, beta=0.3, shared_index=False, columnar=True
            )

    def test_non_threshold_oracle_falls_back(self):
        ic = InfluentialCheckpoints(
            window_size=10, k=2, beta=0.3, oracle="greedy"
        )
        assert not ic.columnar
        with pytest.raises(ValueError, match="greedy"):
            InfluentialCheckpoints(
                window_size=10, k=2, beta=0.3, oracle="greedy", columnar=True
            )

    def test_oversized_guess_ladder_falls_back(self):
        """A tiny beta spreads the ladder over >64 instances, overflowing
        the kernel's per-column uint64 membership masks."""
        ic = InfluentialCheckpoints(window_size=10, k=2, beta=0.001)
        assert not ic.columnar
        with pytest.raises(ValueError, match="64"):
            InfluentialCheckpoints(
                window_size=10, k=2, beta=0.001, columnar=True
            )

    def test_missing_numpy_raises_naming_the_flag(self, monkeypatch):
        from repro.core import checkpoint as checkpoint_module

        def unavailable():
            raise ImportError("No module named 'numpy'")

        monkeypatch.setattr(
            checkpoint_module, "_columnar_module", unavailable
        )
        # Auto-selection degrades silently to a working object plane...
        ic = InfluentialCheckpoints(window_size=10, k=2, beta=0.3)
        assert not ic.columnar
        ic.process(random_stream(12, 4, seed=0))
        assert ic.query().value >= 0
        # ...but the explicit flag fails loudly, naming flag and fix.
        with pytest.raises(ImportError, match="columnar=True requires numpy"):
            InfluentialCheckpoints(
                window_size=10, k=2, beta=0.3, columnar=True
            )


def test_ckernel_env_kill_switch(monkeypatch):
    """``REPRO_NO_CKERNEL`` forces the pure-numpy event path."""
    from repro.core.oracles import _ckernel

    monkeypatch.setattr(_ckernel, "_tried", False)
    monkeypatch.setattr(_ckernel, "_lib", None)
    monkeypatch.setenv(_ckernel.ENV_DISABLE, "1")
    assert _ckernel.load() is None
    ic = InfluentialCheckpoints(window_size=10, k=2, beta=0.3)
    assert ic.columnar
    assert ic.columnar_kernel._cfast is None
    ic.process(random_stream(12, 4, seed=0))
    assert ic.query().value >= 0
