"""The public API surface: imports, __all__, and the README quickstart."""

import importlib

import pytest

import repro


class TestPackage:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module", [
        "repro.core",
        "repro.core.oracles",
        "repro.influence",
        "repro.graphs",
        "repro.diffusion",
        "repro.baselines",
        "repro.datasets",
        "repro.experiments",
        "repro.experiments.cli",
        "repro.service",
        "repro.sharding",
    ])
    def test_submodules_import(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"


class TestQuickstartSnippet:
    def test_readme_flow(self):
        """The quickstart from the package docstring must run as written."""
        from repro import Action, SparseInfluentialCheckpoints, batched

        my_stream = [Action.root(1, 0)] + [
            Action.response(t, t % 5, t - 1) for t in range(2, 402)
        ]
        sic = SparseInfluentialCheckpoints(window_size=1000, k=10, beta=0.2)
        outputs = []
        for batch in batched(my_stream, size=100):
            sic.process(batch)
            answer = sic.query()
            outputs.append((answer.time, sorted(answer.seeds), answer.value))
        assert len(outputs) == 5 or len(outputs) == 4 + 1
        assert outputs[-1][0] == 401

    def test_docstrings_everywhere(self):
        """Every public item of the root package carries a docstring."""
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"{name} lacks a docstring"
