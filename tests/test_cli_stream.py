"""Tests for the repro-stream CLI."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "-o", "x.jsonl"])
        assert args.dataset == "syn-n"
        assert args.actions == 10_000

    def test_track_defaults(self):
        args = build_parser().parse_args(["track", "x.jsonl"])
        assert args.algorithm == "sic"
        assert args.window == 5_000
        assert args.oracle == "sieve"
        assert args.checkpoint_interval == 1
        assert args.shared_index is True
        assert args.format == "text"
        assert args.state_dir is None
        assert args.snapshot_every == 16

    def test_track_engine_knobs(self):
        args = build_parser().parse_args([
            "track", "x.jsonl", "--oracle", "mkc",
            "--checkpoint-interval", "4", "--no-shared-index",
            "--format", "json", "--state-dir", "st", "--snapshot-every", "8",
        ])
        assert args.oracle == "mkc"
        assert args.checkpoint_interval == 4
        assert args.shared_index is False
        assert args.format == "json"
        assert args.state_dir == "st"
        assert args.snapshot_every == 8

    def test_snapshot_subcommands(self):
        for sub in ("info", "save", "restore"):
            args = build_parser().parse_args(["snapshot", sub, "st"])
            assert args.snapshot_command == sub
            assert args.state_dir == "st"


class TestGenerate:
    def test_generate_jsonl(self, tmp_path, capsys):
        target = tmp_path / "s.jsonl"
        code = main([
            "generate", "--dataset", "twitter", "-n", "500", "-u", "100",
            "-o", str(target),
        ])
        assert code == 0
        assert "wrote 500 twitter actions" in capsys.readouterr().out
        assert target.exists()

    def test_generate_csv(self, tmp_path):
        target = tmp_path / "s.csv"
        assert main(["generate", "-n", "200", "-u", "50", "-o", str(target)]) == 0
        assert target.read_text().startswith("time,user,parent")

    def test_bad_extension(self, tmp_path, capsys):
        code = main(["generate", "-n", "10", "-o", str(tmp_path / "s.txt")])
        assert code == 1
        assert "unsupported extension" in capsys.readouterr().err


class TestStatsConvertTrack:
    @pytest.fixture
    def stream_file(self, tmp_path):
        target = tmp_path / "s.jsonl"
        main(["generate", "--dataset", "syn-n", "-n", "600", "-u", "80",
              "--seed", "3", "-o", str(target)])
        return target

    def test_stats(self, stream_file, capsys):
        assert main(["stats", str(stream_file)]) == 0
        out = capsys.readouterr().out
        assert "actions" in out and "600" in out
        assert "mean cascade depth" in out

    def test_convert_roundtrip(self, stream_file, tmp_path, capsys):
        csv_file = tmp_path / "s.csv"
        assert main(["convert", str(stream_file), str(csv_file)]) == 0
        back = tmp_path / "back.jsonl"
        assert main(["convert", str(csv_file), str(back)]) == 0
        assert back.read_text() == stream_file.read_text()

    def test_track(self, stream_file, capsys):
        code = main([
            "track", str(stream_file), "--window", "200", "--slide", "100",
            "-k", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "seeds" in out
        assert out.count("\n") >= 6  # header + one line per slide

    @pytest.mark.parametrize("algorithm", ["sic", "ic", "greedy"])
    def test_track_all_algorithms(self, stream_file, algorithm, capsys):
        code = main([
            "track", str(stream_file), "--algorithm", algorithm,
            "--window", "200", "--slide", "200", "-k", "2",
        ])
        assert code == 0

    @pytest.mark.parametrize("oracle", ["threshold", "blog_watch", "mkc"])
    def test_track_oracle_flag(self, stream_file, oracle, capsys):
        code = main([
            "track", str(stream_file), "--algorithm", "ic",
            "--oracle", oracle, "--window", "200", "--slide", "200", "-k", "2",
        ])
        assert code == 0

    def test_track_reference_plane_and_interval(self, stream_file, capsys):
        code = main([
            "track", str(stream_file), "--algorithm", "ic",
            "--no-shared-index", "--window", "200", "--slide", "100", "-k", "2",
        ])
        assert code == 0
        code = main([
            "track", str(stream_file), "--algorithm", "ic",
            "--checkpoint-interval", "2", "--window", "200", "--slide", "100",
            "-k", "2",
        ])
        assert code == 0

    def test_track_json_format(self, stream_file, capsys):
        capsys.readouterr()  # drain the fixture's generate output
        code = main([
            "track", str(stream_file), "--format", "json",
            "--window", "200", "--slide", "100", "-k", "3",
        ])
        assert code == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l]
        assert len(lines) == 6  # one object per slide, no header
        for line in lines:
            record = json.loads(line)
            assert set(record) == {"time", "value", "seeds"}
            assert record["seeds"] == sorted(record["seeds"])
        assert json.loads(lines[-1])["time"] == 600

    def test_missing_file(self, capsys):
        assert main(["stats", "/nonexistent/x.jsonl"]) == 1
        assert "error" in capsys.readouterr().err


class TestTrackStateDir:
    """Crash-recoverable tracking: resume, snapshot tooling, SIGKILL."""

    @pytest.fixture
    def stream_file(self, tmp_path):
        target = tmp_path / "s.jsonl"
        main(["generate", "--dataset", "syn-n", "-n", "800", "-u", "80",
              "--seed", "5", "-o", str(target)])
        return target

    def _track(self, stream_file, tmp_path, capsys, *extra):
        capsys.readouterr()  # drain fixture/previous-step output
        code = main([
            "track", str(stream_file), "--window", "200", "--slide", "100",
            "-k", "3", "--format", "json", *extra,
        ])
        assert code == 0
        out = capsys.readouterr()
        return [l for l in out.out.splitlines() if l], out.err

    def test_resume_continues_where_the_first_run_stopped(
        self, stream_file, tmp_path, capsys
    ):
        expected, _ = self._track(stream_file, tmp_path, capsys)
        # First run: only the stream prefix is available.
        prefix = tmp_path / "prefix.jsonl"
        prefix.write_text(
            "".join(stream_file.read_text().splitlines(keepends=True)[:500])
        )
        state = tmp_path / "state"
        first, _ = self._track(
            prefix, tmp_path, capsys, "--state-dir", str(state),
            "--snapshot-every", "2",
        )
        # Second run: the full file arrives; processed slides are skipped.
        second, err = self._track(
            stream_file, tmp_path, capsys, "--state-dir", str(state),
            "--snapshot-every", "2",
        )
        assert "resumed at time 500" in err
        assert first + second == expected

    def test_restart_after_completion_emits_nothing_new(
        self, stream_file, tmp_path, capsys
    ):
        state = tmp_path / "state"
        full, _ = self._track(
            stream_file, tmp_path, capsys, "--state-dir", str(state)
        )
        again, err = self._track(
            stream_file, tmp_path, capsys, "--state-dir", str(state)
        )
        assert again == []
        assert "resumed at time 800" in err

    def test_snapshot_info_save_restore(self, stream_file, tmp_path, capsys):
        state = tmp_path / "state"
        expected, _ = self._track(
            stream_file, tmp_path, capsys, "--state-dir", str(state),
            "--snapshot-every", "3",
        )
        assert main(["snapshot", "info", str(state)]) == 0
        out = capsys.readouterr().out
        assert "snapshot" in out and "wal" in out and "sic" in out

        assert main(["snapshot", "save", str(state)]) == 0
        assert "snapshot written at slide 8" in capsys.readouterr().out

        assert main(["snapshot", "restore", str(state)]) == 0
        record = json.loads(capsys.readouterr().out.strip())
        final = json.loads(expected[-1])
        assert record["slide"] == 8
        assert record["time"] == final["time"]
        assert record["value"] == final["value"]
        assert record["seeds"] == final["seeds"]

    def test_snapshot_on_empty_state_dir_fails_cleanly(self, tmp_path, capsys):
        void = tmp_path / "void"
        assert main(["snapshot", "restore", str(void)]) == 1
        assert "error" in capsys.readouterr().err
        # Inspection must not create a state tree at the typoed path.
        assert main(["snapshot", "info", str(void)]) == 1
        assert "no state directory" in capsys.readouterr().err
        assert not void.exists()

    def test_resume_with_mismatched_flags_is_rejected(
        self, stream_file, tmp_path, capsys
    ):
        state = tmp_path / "state"
        self._track(stream_file, tmp_path, capsys, "--state-dir", str(state))
        code = main([
            "track", str(stream_file), "--window", "200", "--slide", "100",
            "-k", "7", "--format", "json", "--state-dir", str(state),
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "different engine settings" in err
        # Matching flags still resume fine afterwards.
        again, _ = self._track(
            stream_file, tmp_path, capsys, "--state-dir", str(state)
        )
        assert again == []

    def test_sigkill_resume_matches_uninterrupted_run(self, tmp_path, capsys):
        """The headline scenario: kill -9 mid-stream, rerun, same answers.

        Uses a longer stream (120 slides) so killing right after the first
        reported slides is guaranteed to land mid-run.
        """
        stream = tmp_path / "long.jsonl"
        main(["generate", "--dataset", "syn-n", "-n", "6000", "-u", "300",
              "--seed", "11", "-o", str(stream)])
        track_args = [
            "track", str(stream), "--window", "1000", "--slide", "50",
            "-k", "3", "--format", "json",
        ]
        capsys.readouterr()
        assert main(track_args) == 0
        expected = [l for l in capsys.readouterr().out.splitlines() if l]

        state = tmp_path / "state"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        env["PYTHONUNBUFFERED"] = "1"
        command = [
            sys.executable, "-m", "repro.cli", *track_args,
            "--state-dir", str(state), "--snapshot-every", "8",
        ]
        process = subprocess.Popen(
            command, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            env=env, text=True,
        )
        killed_lines = []
        try:
            # Kill as soon as at least two of the 120 slides were reported.
            deadline = time.time() + 120
            while len(killed_lines) < 2 and time.time() < deadline:
                line = process.stdout.readline()
                if not line:
                    break
                killed_lines.append(line.strip())
            process.kill()  # SIGKILL on POSIX
        finally:
            process.wait()
        assert process.returncode == -signal.SIGKILL
        assert killed_lines, "first run produced no output before the kill"

        capsys.readouterr()
        assert main([*track_args, "--state-dir", str(state),
                     "--snapshot-every", "8"]) == 0
        out = capsys.readouterr()
        resumed = [l for l in out.out.splitlines() if l]
        assert "resumed" in out.err and "replayed" in out.err
        assert resumed, "resumed run skipped everything"
        assert len(resumed) < len(expected)  # it really resumed mid-stream
        # The resumed output is exactly the tail of the uninterrupted run.
        assert resumed == expected[len(expected) - len(resumed):]
        assert resumed[-1] == expected[-1]


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 7077
        assert args.algorithm == "sic"
        assert args.window == 5_000
        assert args.slide == 32
        assert args.flush_interval == 0.5
        assert args.queue_capacity == 4096
        assert args.ack_every == 1000
        assert args.history == 128
        assert args.query is None
        assert args.state_dir is None
        assert args.snapshot_every == 16

    def test_serve_query_specs_accumulate(self):
        args = build_parser().parse_args([
            "serve", "--query", "a=sic", "--query", "b=ic,k=5",
        ])
        assert args.query == ["a=sic", "b=ic,k=5"]

    def test_snapshot_prune_parser(self):
        args = build_parser().parse_args(["snapshot", "prune", "st"])
        assert args.snapshot_command == "prune"
        assert args.keep == 1
        args = build_parser().parse_args(
            ["snapshot", "prune", "st", "--keep", "3"]
        )
        assert args.keep == 3


class TestQuerySpecs:
    def _defaults(self, **overrides):
        return build_parser().parse_args(["serve", *overrides.get("argv", [])])

    def test_spec_inherits_top_level_flags(self):
        from repro.cli import _parse_query_spec

        defaults = self._defaults(argv=["--window", "900", "-k", "7"])
        name, options = _parse_query_spec("board=sic", defaults)
        assert name == "board"
        assert options["algorithm"] == "sic"
        assert options["window"] == 900
        assert options["k"] == 7
        assert options["beta"] == 0.2

    def test_spec_overrides(self):
        from repro.cli import _parse_query_spec

        name, options = _parse_query_spec(
            "fast=ic,k=3,beta=0.4,oracle=mkc,checkpoint-interval=2,window=50",
            self._defaults(),
        )
        assert name == "fast"
        assert options == {
            "algorithm": "ic", "window": 50, "k": 3, "beta": 0.4,
            "oracle": "mkc", "checkpoint_interval": 2,
        }

    @pytest.mark.parametrize("spec,message", [
        ("noequals", "expected NAME=ALGO"),
        ("a=", "names no algorithm"),
        ("a=nope", "unknown algorithm"),
        ("a=sic,bogus=1", "bad option"),
        ("a=sic,oracle=nope", "unknown oracle"),
        ("a=greedy,beta=0.5", "does not apply"),
        ("a=greedy,oracle=mkc", "does not apply"),
        ("a=sic,checkpoint-interval=2", "does not apply"),
    ])
    def test_bad_specs_are_named(self, spec, message):
        from repro.cli import _parse_query_spec

        with pytest.raises(ValueError, match=message):
            _parse_query_spec(spec, self._defaults())

    def test_factory_builds_named_board(self):
        from repro.cli import _make_serve_factory

        args = build_parser().parse_args([
            "serve", "--window", "100",
            "--query", "precise=sic,beta=0.1",
            "--query", "cheap=greedy,k=2",
        ])
        engine = _make_serve_factory(args)()
        assert engine.names() == ["cheap", "precise"]

    def test_factory_rejects_duplicate_names(self):
        from repro.cli import _make_serve_factory

        args = build_parser().parse_args([
            "serve", "--query", "a=sic", "--query", "a=ic",
        ])
        with pytest.raises(ValueError, match="duplicate"):
            _make_serve_factory(args)


class TestSnapshotPrune:
    @pytest.fixture
    def populated_state(self, tmp_path, capsys):
        stream = tmp_path / "s.jsonl"
        main(["generate", "--dataset", "syn-n", "-n", "800", "-u", "80",
              "--seed", "5", "-o", str(stream)])
        state = tmp_path / "state"
        code = main([
            "track", str(stream), "--window", "200", "--slide", "50",
            "-k", "3", "--format", "json", "--state-dir", str(state),
            "--snapshot-every", "2",
        ])
        assert code == 0
        capsys.readouterr()
        return state

    def test_prune_keeps_newest_and_drops_covered_wal(
        self, populated_state, capsys
    ):
        from repro.persistence.engine import StateStore

        store = StateStore(populated_state)
        before = store.snapshots.sequences()
        store.close()
        assert len(before) > 1

        assert main(["snapshot", "prune", str(populated_state)]) == 0
        out = capsys.readouterr().out
        assert f"dropped {len(before) - 1} snapshots" in out
        assert "kept 1 snapshots" in out

        store = StateStore(populated_state)
        after = store.snapshots.sequences()
        store.close()
        assert after == [before[-1]]
        # The pruned dir still restores to the same position.
        capsys.readouterr()
        assert main(["snapshot", "restore", str(populated_state)]) == 0
        record = json.loads(capsys.readouterr().out.strip())
        assert record["slide"] == 16

    def test_prune_is_idempotent(self, populated_state, capsys):
        assert main(["snapshot", "prune", str(populated_state)]) == 0
        capsys.readouterr()
        assert main(["snapshot", "prune", str(populated_state)]) == 0
        assert "dropped 0 snapshots" in capsys.readouterr().out

    def test_prune_refuses_typoed_path(self, tmp_path, capsys):
        void = tmp_path / "void"
        assert main(["snapshot", "prune", str(void)]) == 1
        assert "no state directory" in capsys.readouterr().err
        assert not void.exists()

    def test_prune_rejects_bad_keep(self, populated_state, capsys):
        assert main(
            ["snapshot", "prune", str(populated_state), "--keep", "0"]
        ) == 1
        assert "keep" in capsys.readouterr().err
