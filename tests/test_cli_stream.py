"""Tests for the repro-stream CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "-o", "x.jsonl"])
        assert args.dataset == "syn-n"
        assert args.actions == 10_000

    def test_track_defaults(self):
        args = build_parser().parse_args(["track", "x.jsonl"])
        assert args.algorithm == "sic"
        assert args.window == 5_000


class TestGenerate:
    def test_generate_jsonl(self, tmp_path, capsys):
        target = tmp_path / "s.jsonl"
        code = main([
            "generate", "--dataset", "twitter", "-n", "500", "-u", "100",
            "-o", str(target),
        ])
        assert code == 0
        assert "wrote 500 twitter actions" in capsys.readouterr().out
        assert target.exists()

    def test_generate_csv(self, tmp_path):
        target = tmp_path / "s.csv"
        assert main(["generate", "-n", "200", "-u", "50", "-o", str(target)]) == 0
        assert target.read_text().startswith("time,user,parent")

    def test_bad_extension(self, tmp_path, capsys):
        code = main(["generate", "-n", "10", "-o", str(tmp_path / "s.txt")])
        assert code == 1
        assert "unsupported extension" in capsys.readouterr().err


class TestStatsConvertTrack:
    @pytest.fixture
    def stream_file(self, tmp_path):
        target = tmp_path / "s.jsonl"
        main(["generate", "--dataset", "syn-n", "-n", "600", "-u", "80",
              "--seed", "3", "-o", str(target)])
        return target

    def test_stats(self, stream_file, capsys):
        assert main(["stats", str(stream_file)]) == 0
        out = capsys.readouterr().out
        assert "actions" in out and "600" in out
        assert "mean cascade depth" in out

    def test_convert_roundtrip(self, stream_file, tmp_path, capsys):
        csv_file = tmp_path / "s.csv"
        assert main(["convert", str(stream_file), str(csv_file)]) == 0
        back = tmp_path / "back.jsonl"
        assert main(["convert", str(csv_file), str(back)]) == 0
        assert back.read_text() == stream_file.read_text()

    def test_track(self, stream_file, capsys):
        code = main([
            "track", str(stream_file), "--window", "200", "--slide", "100",
            "-k", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "seeds" in out
        assert out.count("\n") >= 6  # header + one line per slide

    @pytest.mark.parametrize("algorithm", ["sic", "ic", "greedy"])
    def test_track_all_algorithms(self, stream_file, algorithm, capsys):
        code = main([
            "track", str(stream_file), "--algorithm", algorithm,
            "--window", "200", "--slide", "200", "-k", "2",
        ])
        assert code == 0

    def test_missing_file(self, capsys):
        assert main(["stats", "/nonexistent/x.jsonl"]) == 1
        assert "error" in capsys.readouterr().err
