"""Shared fixtures: the paper's running example and random stream builders."""

from __future__ import annotations

import random
from typing import List

import pytest

from repro.core.actions import Action


def make_paper_stream() -> List[Action]:
    """Figure 1(a): the ten actions of the paper's running example.

    Users are numbered as in the paper (u1..u6 -> 1..6).
    """
    return [
        Action.root(1, 1),  # a1 = <u1, nil>
        Action.response(2, 2, 1),  # a2 = <u2, a1>
        Action.root(3, 3),  # a3 = <u3, nil>
        Action.response(4, 3, 1),  # a4 = <u3, a1>
        Action.response(5, 4, 3),  # a5 = <u4, a3>
        Action.response(6, 1, 3),  # a6 = <u1, a3>
        Action.response(7, 5, 3),  # a7 = <u5, a3>
        Action.response(8, 4, 7),  # a8 = <u4, a7>
        Action.root(9, 2),  # a9 = <u2, nil>
        Action.response(10, 6, 9),  # a10 = <u6, a9>
    ]


@pytest.fixture
def paper_stream() -> List[Action]:
    """The running example stream (Example 1)."""
    return make_paper_stream()


def random_stream(
    n_actions: int,
    n_users: int,
    seed: int = 0,
    root_probability: float = 0.4,
    recent_bias: int = 0,
) -> List[Action]:
    """A random valid action stream for property tests.

    Args:
        n_actions: Stream length.
        n_users: User universe size.
        seed: RNG seed.
        root_probability: Chance each action is a root.
        recent_bias: When positive, parents are drawn from the last this
            many actions (otherwise uniformly from the whole past).
    """
    rng = random.Random(seed)
    actions: List[Action] = []
    for t in range(1, n_actions + 1):
        user = rng.randrange(n_users)
        if t == 1 or rng.random() < root_probability:
            actions.append(Action.root(t, user))
        else:
            low = max(1, t - recent_bias) if recent_bias else 1
            parent = rng.randint(low, t - 1)
            actions.append(Action.response(t, user, parent))
    return actions


@pytest.fixture
def small_random_stream() -> List[Action]:
    """A 60-action stream over 8 users (dense interactions)."""
    return random_stream(60, 8, seed=13)


def parse_prometheus(text: str) -> dict:
    """Tiny prometheus text-exposition parser (no deps; tests only).

    Returns ``{metric_name: {label_string: float_value}}`` where
    ``label_string`` is the raw ``{...}`` part (``""`` when unlabeled),
    and raises ValueError on lines that are not valid exposition.
    """
    samples: dict = {}
    types: dict = {}
    for line in text.splitlines():
        if not line or line.startswith("# HELP"):
            continue
        if line.startswith("# TYPE"):
            _, _, name, kind = line.split(None, 3)
            if kind not in ("counter", "gauge", "histogram", "summary"):
                raise ValueError(f"bad TYPE line: {line!r}")
            types[name] = kind
            continue
        if line.startswith("#"):
            raise ValueError(f"unknown comment line: {line!r}")
        body, _, value = line.rpartition(" ")
        if not body:
            raise ValueError(f"sample line without value: {line!r}")
        name, brace, labels = body.partition("{")
        if brace and not labels.endswith("}"):
            raise ValueError(f"unterminated labels: {line!r}")
        float(value)  # must parse; +Inf etc. never appear as values here
        samples.setdefault(name, {})[brace + labels] = float(value)
    if not types:
        raise ValueError("no TYPE headers found")
    return samples
