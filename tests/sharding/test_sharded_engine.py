"""Property and integration tests for the sharded ingest plane.

Covers the PR's acceptance criteria:

* **Shard-merge equivalence** — with a degenerate partitioner (all
  influencers on one shard) ``ShardedEngine(S)`` answers *identically* to
  the single engine for IC + SIC at L ∈ {1, 5} and S ∈ {1, 2, 4}, across
  every shard id and backend; S=1 hash partitioning is likewise exact.
* **Merge soundness under real partitioning** — the merged value of a
  hash-partitioned board is an exact evaluation (never an overestimate)
  of the merged seeds against the true window index, is at least the best
  single shard's answer, and clears the ``(1/2 − β)/S`` fraction of the
  brute-force window optimum (the documented worst-case bound) for both
  modular and non-modular influence functions.
* **Crash recovery** — per-shard WAL/snapshot dirs recover independently:
  abandoning mid-stream and re-feeding converges to the uninterrupted
  run (thread backend), and ``kill -9`` of a single worker process
  (process backend) surfaces as ``ShardingError``, after which reopening
  the whole engine heals the lagging shard on redelivery.
"""

import itertools
import os
import signal

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diffusion import DiffusionForest
from repro.core.ic import InfluentialCheckpoints
from repro.core.influence_index import WindowInfluenceIndex
from repro.core.multi import MultiQueryEngine
from repro.core.sic import SparseInfluentialCheckpoints
from repro.core.stream import batched
from repro.influence.functions import ConformityAwareInfluence
from repro.persistence.serialize import PersistenceError
from repro.sharding.engine import ShardedEngine, ShardingError
from repro.sharding.partition import ConstantPartitioner, HashPartitioner
from tests.conftest import random_stream

MAKERS = {
    "ic": lambda shard=None, **kw: InfluentialCheckpoints(
        window_size=40, k=3, beta=0.3, shard=shard, **kw
    ),
    "sic": lambda shard=None, **kw: SparseInfluentialCheckpoints(
        window_size=40, k=3, beta=0.3, shard=shard, **kw
    ),
}


def run_single(make, actions, slide):
    framework = make()
    for batch in batched(actions, slide):
        framework.process(batch)
    return framework.query()


def run_sharded(make, actions, slide, shards, **open_kwargs):
    open_kwargs.setdefault("backend", "serial")
    with ShardedEngine.open(
        lambda assignment=None: make(shard=assignment), shards, **open_kwargs
    ) as engine:
        for batch in batched(actions, slide):
            engine.process(list(batch))
        return engine.query()


def window_ground_truth(actions, window):
    """The exact window influence index after the whole stream."""
    forest = DiffusionForest()
    index = WindowInfluenceIndex()
    records = []
    for action in actions:
        record = forest.add(action)
        records.append(record)
        index.add(record)
        if len(records) > window:
            index.remove(records.pop(0))
    return index


class TestDegenerateEquivalence:
    """ShardedEngine(S) ≡ single engine when one shard owns everything."""

    @pytest.mark.parametrize("algorithm", ["ic", "sic"])
    @pytest.mark.parametrize("slide", [1, 5])
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_constant_partitioner_matches_single(
        self, algorithm, slide, shards
    ):
        actions = random_stream(120, 12, seed=21)
        make = MAKERS[algorithm]
        expected = run_single(make, actions, slide)
        for target in range(shards):
            merged = run_sharded(
                make,
                actions,
                slide,
                shards,
                partitioner=ConstantPartitioner(shards, target),
            )
            assert merged == expected

    @pytest.mark.parametrize("algorithm", ["ic", "sic"])
    @pytest.mark.parametrize("slide", [1, 5])
    def test_single_shard_hash_matches_single(self, algorithm, slide):
        actions = random_stream(120, 12, seed=22)
        make = MAKERS[algorithm]
        assert run_sharded(make, actions, slide, 1) == run_single(
            make, actions, slide
        )

    def test_backends_agree(self):
        actions = random_stream(150, 15, seed=23)
        make = MAKERS["ic"]
        answers = {
            backend: run_sharded(make, actions, 5, 3, backend=backend)
            for backend in ("serial", "thread", "process")
        }
        assert answers["serial"] == answers["thread"] == answers["process"]


class TestMergeSoundness:
    """Hash-partitioned merges are exact evaluations within the bound."""

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), slide=st.sampled_from([1, 4]))
    def test_ic_merged_value_is_exact_window_evaluation(self, seed, slide):
        """Modular merge: claimed value == |coverage(seeds)| in the window.

        At aligned times IC's answering checkpoint covers exactly the
        window, so the candidates' coverage sets are the true window
        influence sets and the merged value must equal the ground truth
        evaluation of the merged seeds — overlap deducted exactly.
        """
        window = 12  # both slide values divide it
        actions = random_stream(48, 6, seed=seed)
        make = lambda shard=None: InfluentialCheckpoints(
            window_size=window, k=2, beta=0.2, shard=shard
        )
        merged = run_sharded(make, actions, slide, 3)
        truth = window_ground_truth(actions, window)
        assert merged.value == float(len(truth.coverage(merged.seeds)))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), slide=st.sampled_from([1, 4]))
    def test_sic_merged_value_never_overestimates(self, seed, slide):
        """SIC suffixes cover at most the window: values stay conservative."""
        window = 12
        actions = random_stream(48, 6, seed=seed)
        make = lambda shard=None: SparseInfluentialCheckpoints(
            window_size=window, k=2, beta=0.2, shard=shard
        )
        merged = run_sharded(make, actions, slide, 3)
        truth = window_ground_truth(actions, window)
        assert merged.value <= float(len(truth.coverage(merged.seeds))) + 1e-9

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000), shards=st.sampled_from([2, 4]))
    def test_modular_ratio_bound(self, seed, shards):
        """merged >= (1/2 − β)/S × OPT for the modular sieve oracle."""
        window, k, beta = 12, 2, 0.2
        actions = random_stream(48, 6, seed=seed)
        make = lambda shard=None: InfluentialCheckpoints(
            window_size=window, k=k, beta=beta, shard=shard
        )
        merged = run_sharded(make, actions, 1, shards)
        truth = window_ground_truth(actions, window)
        users = list(truth.influencers())
        opt = 0.0
        for combo in itertools.combinations(users, min(k, len(users))):
            opt = max(opt, float(len(truth.coverage(combo))))
        assert merged.value >= (0.5 - beta) / shards * opt - 1e-9

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_non_modular_ratio_bound(self, seed):
        """The best-shard fallback clears (1/2 − β)/S × OPT for the
        conformity-aware (submodular, non-modular) function too."""
        window, k, beta, shards = 12, 2, 0.2, 3
        actions = random_stream(48, 6, seed=seed)
        func = ConformityAwareInfluence(
            {u: 0.3 + 0.1 * (u % 5) for u in range(6)},
            {u: 0.4 + 0.1 * (u % 4) for u in range(6)},
        )
        make = lambda shard=None: SparseInfluentialCheckpoints(
            window_size=window, k=k, beta=beta, func=func, shard=shard
        )
        merged = run_sharded(make, actions, 1, shards)
        truth = window_ground_truth(actions, window)
        users = list(truth.influencers())
        opt = 0.0
        for combo in itertools.combinations(users, min(k, len(users))):
            opt = max(opt, func.evaluate(combo, truth))
        assert merged.value >= (0.5 - beta) / shards * opt - 1e-9

    def test_multi_query_board_merges_each_query(self):
        actions = random_stream(150, 15, seed=24)

        def factory(assignment=None):
            board = MultiQueryEngine()
            board.add("fast", MAKERS["ic"](shard=assignment))
            board.add("sparse", MAKERS["sic"](shard=assignment))
            return board

        with ShardedEngine.open(factory, 3, backend="serial") as engine:
            for batch in batched(actions, 5):
                engine.process(list(batch))
            answers = engine.query_all()
            assert set(answers) == {"fast", "sparse"}
            truth = window_ground_truth(actions, 40)
            for name, answer in answers.items():
                assert answer.time == 150
                assert answer.value <= len(truth.coverage(answer.seeds)) + 1e-9

    def test_deterministic_across_runs(self):
        actions = random_stream(150, 15, seed=25)
        first = run_sharded(MAKERS["ic"], actions, 5, 4)
        second = run_sharded(MAKERS["ic"], actions, 5, 4)
        assert first == second


class TestRecovery:
    def _feed(self, engine, batches):
        resume = engine.now
        for batch in batches:
            if batch[-1].time <= resume:
                continue
            engine.process([a for a in batch if a.time > resume])

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_abandon_reopen_refeed_matches_uninterrupted(
        self, tmp_path, backend
    ):
        """Per-shard snapshot + WAL recovery converges to the clean run."""
        actions = random_stream(200, 20, seed=26)
        batches = [list(b) for b in batched(actions, 5)]
        make = MAKERS["ic"]
        factory = lambda assignment=None: make(shard=assignment)
        expected = run_sharded(make, actions, 5, 2)

        state = tmp_path / "state"
        engine = ShardedEngine.open(
            factory, 2, state_dir=state, backend=backend,
            snapshot_every=7, fsync=False,
        )
        for batch in batches[:23]:
            engine.process(batch)
        # Crash: drop the engine without sealing (workers just stop).
        engine._backend.stop()

        recovered = ShardedEngine.open(
            factory, 2, state_dir=state, backend=backend,
            snapshot_every=7, fsync=False,
        )
        assert recovered.slides_processed == 23
        assert max(recovered.shard_replayed_slides) >= 1  # WAL tail replayed
        self._feed(recovered, batches)
        assert recovered.query() == expected
        recovered.close()

        # A sealed close leaves nothing to replay.
        reopened = ShardedEngine.open(
            factory, 2, state_dir=state, backend=backend, fsync=False
        )
        assert reopened.shard_replayed_slides == [0, 0]
        assert reopened.query() == expected
        reopened.close()

    def test_sigkill_one_worker_is_healed_in_place(self, tmp_path):
        """kill -9 of one shard worker: the supervisor restarts it from
        its snapshot + WAL mid-stream and the caller never sees an error."""
        actions = random_stream(200, 20, seed=27)
        batches = [list(b) for b in batched(actions, 5)]
        factory = lambda assignment=None: MAKERS["ic"](shard=assignment)
        expected = run_sharded(MAKERS["ic"], actions, 5, 2)

        state = tmp_path / "state"
        engine = ShardedEngine.open(
            factory, 2, state_dir=state, backend="process",
            snapshot_every=4, fsync=False,
        )
        for batch in batches[:20]:
            engine.process(batch)
        victim = engine.worker_pids[0]
        os.kill(victim, signal.SIGKILL)
        for batch in batches[20:]:
            engine.process(batch)
        assert engine.query() == expected
        assert all(now == 200 for now in engine._shard_nows)
        stats = engine.supervision_stats()
        assert stats["restarts"] == 1
        assert stats["degraded_windows"] == 1
        assert not stats["degraded"]
        survivors = list(engine.worker_pids)
        engine.close()
        # No stray workers: the killed pid and every later worker are gone.
        for pid in [victim] + [p for p in survivors if p is not None]:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

    def test_sigkill_with_retries_zero_fails_fast_then_reopen_heals(
        self, tmp_path
    ):
        """retries=0 restores the old fail-fast contract: the error is
        surfaced, and a manual reopen + redelivery heals."""
        actions = random_stream(200, 20, seed=27)
        batches = [list(b) for b in batched(actions, 5)]
        factory = lambda assignment=None: MAKERS["ic"](shard=assignment)
        expected = run_sharded(MAKERS["ic"], actions, 5, 2)

        state = tmp_path / "state"
        engine = ShardedEngine.open(
            factory, 2, state_dir=state, backend="process",
            snapshot_every=4, fsync=False, retries=0,
        )
        for batch in batches[:20]:
            engine.process(batch)
        os.kill(engine.worker_pids[0], signal.SIGKILL)
        with pytest.raises(ShardingError, match="shard 0"):
            for batch in batches[20:]:
                engine.process(batch)
        assert engine.degraded and engine.degraded_shards == [0]
        pids = [p for p in engine.worker_pids if p is not None]
        engine.close(snapshot=False)
        # The mid-run escalation must not leave zombie workers behind.
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

        recovered = ShardedEngine.open(
            factory, 2, state_dir=state, backend="process",
            snapshot_every=4, fsync=False,
        )
        # The killed shard recovered from snapshot + WAL; the facade clock
        # is the minimum, so re-feeding from there heals both shards even
        # if the survivor had advanced further.
        self._feed(recovered, batches)
        assert recovered.query() == expected
        assert all(now == 200 for now in recovered._shard_nows)
        recovered.close()


class TestRefusals:
    def test_manifest_mismatch_is_rejected(self, tmp_path):
        factory = lambda assignment=None: MAKERS["ic"](shard=assignment)
        state = tmp_path / "state"
        engine = ShardedEngine.open(factory, 2, state_dir=state, fsync=False)
        engine.process([a for a in random_stream(10, 5, seed=1)])
        engine.close()
        with pytest.raises(PersistenceError, match="2 shards"):
            ShardedEngine.open(factory, 4, state_dir=state, fsync=False)
        with pytest.raises(PersistenceError, match="partitioner"):
            ShardedEngine.open(
                factory, 2, state_dir=state, fsync=False,
                partitioner=ConstantPartitioner(2, 0),
            )

    def test_per_shard_config_mismatch_is_rejected(self, tmp_path):
        state = tmp_path / "state"
        engine = ShardedEngine.open(
            lambda a=None: InfluentialCheckpoints(
                window_size=40, k=3, beta=0.3, shard=a
            ),
            2,
            state_dir=state,
            fsync=False,
        )
        engine.process([a for a in random_stream(10, 5, seed=1)])
        engine.close()
        with pytest.raises(ShardingError, match="different engine settings"):
            ShardedEngine.open(
                lambda a=None: InfluentialCheckpoints(
                    window_size=40, k=5, beta=0.3, shard=a
                ),
                2,
                state_dir=state,
                fsync=False,
            )

    def test_bad_knobs_are_rejected(self):
        factory = lambda a=None: MAKERS["ic"](shard=a)
        with pytest.raises(ShardingError, match="got 0"):
            ShardedEngine.open(factory, 0)
        with pytest.raises(ShardingError, match="unknown backend"):
            ShardedEngine.open(factory, 2, backend="carrier-pigeon")
        with pytest.raises(ShardingError, match="4 shards"):
            ShardedEngine.open(factory, 2, partitioner=HashPartitioner(4))

    def test_out_of_order_batch_is_rejected(self):
        factory = lambda a=None: MAKERS["ic"](shard=a)
        with ShardedEngine.open(factory, 2, backend="serial") as engine:
            engine.process([a for a in random_stream(10, 5, seed=2)])
            with pytest.raises(ValueError, match="out-of-order"):
                engine.process([a for a in random_stream(5, 5, seed=2)])

    def test_closed_engine_refuses_work(self):
        factory = lambda a=None: MAKERS["ic"](shard=a)
        engine = ShardedEngine.open(factory, 2, backend="serial")
        engine.close()
        engine.close()  # idempotent
        with pytest.raises(ShardingError, match="closed"):
            engine.process([a for a in random_stream(5, 5, seed=3)])


class TestStatePersistenceOfShardConfig:
    def test_shard_assignment_rides_engine_state(self):
        """to_state/from_state round-trips the shard filter."""
        from repro.sharding.partition import HashPartitioner, ShardAssignment

        assignment = ShardAssignment(HashPartitioner(3), 1)
        engine = InfluentialCheckpoints(
            window_size=20, k=2, beta=0.3, shard=assignment
        )
        for batch in batched(random_stream(60, 8, seed=4), 5):
            engine.process(batch)
        rebuilt = InfluentialCheckpoints.from_state(engine.to_state())
        assert rebuilt.shard == assignment
        assert rebuilt.query() == engine.query()
        tail = random_stream(80, 8, seed=4)[60:]
        for batch in batched(tail, 5):
            engine.process(batch)
            rebuilt.process(batch)
        assert rebuilt.query() == engine.query()
