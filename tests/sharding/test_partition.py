"""Unit tests for the shard partitioners and assignments."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sharding.partition import (
    ConstantPartitioner,
    HashPartitioner,
    ShardAssignment,
    assignment_from_state,
    partitioner_from_state,
    register_partitioner_state,
)


class TestHashPartitioner:
    def test_range_and_determinism(self):
        part = HashPartitioner(4)
        for user in range(2000):
            shard = part.shard_of(user)
            assert 0 <= shard < 4
            assert part.shard_of(user) == shard  # stable

    def test_identical_across_instances(self):
        """The assignment must not depend on interpreter hash salting."""
        a, b = HashPartitioner(8), HashPartitioner(8)
        assert [a.shard_of(u) for u in range(500)] == [
            b.shard_of(u) for u in range(500)
        ]

    def test_spread_is_reasonable(self):
        """Dense integer ids spread within 2x of the fair share."""
        part = HashPartitioner(4)
        counts = [0] * 4
        for user in range(4000):
            counts[part.shard_of(user)] += 1
        for count in counts:
            assert 500 <= count <= 2000, counts

    def test_partition_covers_all_users_once(self):
        part = HashPartitioner(3)
        assignments = [ShardAssignment(part, s) for s in range(3)]
        for user in range(300):
            owners = [a for a in assignments if a.owns(user)]
            assert len(owners) == 1

    @given(shards=st.integers(1, 16), user=st.integers(0, 10**9))
    def test_any_user_lands_in_range(self, shards, user):
        assert 0 <= HashPartitioner(shards).shard_of(user) < shards

    def test_rejects_bad_shards(self):
        with pytest.raises(ValueError, match="got 0"):
            HashPartitioner(0)


class TestConstantPartitioner:
    def test_everything_to_target(self):
        part = ConstantPartitioner(4, target=2)
        assert {part.shard_of(u) for u in range(100)} == {2}

    def test_rejects_out_of_range_target(self):
        with pytest.raises(ValueError, match="got 4"):
            ConstantPartitioner(4, target=4)


class TestSerialization:
    def test_hash_roundtrip(self):
        part = HashPartitioner(6)
        rebuilt = partitioner_from_state(part.to_state())
        assert rebuilt == part
        assert [rebuilt.shard_of(u) for u in range(100)] == [
            part.shard_of(u) for u in range(100)
        ]

    def test_constant_roundtrip(self):
        part = ConstantPartitioner(3, target=1)
        assert partitioner_from_state(part.to_state()) == part

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError, match="unknown partitioner"):
            partitioner_from_state({"kind": "nope"})

    def test_duplicate_registration_is_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_partitioner_state("hash", lambda state: None)

    def test_assignment_roundtrip_and_equality(self):
        assignment = ShardAssignment(HashPartitioner(4), 3)
        rebuilt = assignment_from_state(assignment.to_state())
        assert rebuilt == assignment
        assert rebuilt.owns(7) == assignment.owns(7)
        assert rebuilt != ShardAssignment(HashPartitioner(4), 2)

    def test_assignment_rejects_bad_shard(self):
        with pytest.raises(ValueError, match="got 4"):
            ShardAssignment(HashPartitioner(4), 4)


class TestHeatPartitioner:
    def _skewed_heat(self):
        """A celebrity distribution: user 0 carries half the load."""
        return {0: 100.0, 1: 40.0, 2: 30.0, 3: 20.0, 4: 6.0, 5: 4.0}

    def test_hot_users_balance_within_bins(self):
        from repro.sharding.partition import HeatPartitioner

        heat = self._skewed_heat()
        part = HeatPartitioner(2, heat)
        loads = [0.0, 0.0]
        for user, load in heat.items():
            loads[part.shard_of(user)] += load
        # Greedy hottest-first packs 100 alone vs everything else (100).
        assert loads == [100.0, 100.0]

    def test_assignment_is_deterministic_across_orderings(self):
        from repro.sharding.partition import HeatPartitioner

        heat = self._skewed_heat()
        shuffled = dict(sorted(heat.items(), key=lambda kv: -kv[0]))
        a = HeatPartitioner(3, heat)
        b = HeatPartitioner(3, shuffled)
        assert [a.shard_of(u) for u in range(50)] == [
            b.shard_of(u) for u in range(50)
        ]

    def test_cold_users_fall_back_to_hash(self):
        from repro.sharding.partition import HeatPartitioner

        part = HeatPartitioner(4, self._skewed_heat())
        hashed = HashPartitioner(4)
        for user in range(100, 200):  # nobody in the heat table
            assert part.shard_of(user) == hashed.shard_of(user)

    def test_state_round_trip(self):
        from repro.sharding.partition import HeatPartitioner

        part = HeatPartitioner(3, self._skewed_heat())
        state = part.to_state()
        assert state["kind"] == "heat"
        assert set(state["heat"]) == {"0", "1", "2", "3", "4", "5"}
        restored = partitioner_from_state(state)
        assert isinstance(restored, HeatPartitioner)
        assert restored.heat == part.heat
        assert [restored.shard_of(u) for u in range(300)] == [
            part.shard_of(u) for u in range(300)
        ]

    def test_influencer_heat_counts_influence_pairs(self):
        from repro.core.actions import Action
        from repro.sharding.partition import influencer_heat

        # 1 roots; 2 responds to 1; 3 responds to 2.  Every action counts
        # its full influencer chain, actor included (self-influence).
        actions = [
            Action.root(1, 1),
            Action.response(2, 2, 1),
            Action.response(3, 3, 2),
        ]
        assert influencer_heat(actions) == {1: 3.0, 2: 2.0, 3: 1.0}

    def test_empty_heat_is_pure_hash(self):
        from repro.sharding.partition import HeatPartitioner

        part = HeatPartitioner(4, {})
        hashed = HashPartitioner(4)
        assert [part.shard_of(u) for u in range(200)] == [
            hashed.shard_of(u) for u in range(200)
        ]
