"""Routed ingest: the facade resolves once, shards apply owned records.

Covers the PR's acceptance criteria:

* **Routed ≡ broadcast equivalence matrix** — identical per-slide top-k
  values/seeds for IC + SIC at L ∈ {1, 5}, S ∈ {1, 2, 4}, hash and heat
  partitioners, across the serial/thread/process backends;
* **Accounting** — per-shard stats report routed records consumed (not
  the stream-global action count), the facade resolver position is
  exposed, and ``experiments.memory.sharded_work`` shows broadcast's S×
  replication against routed's ~1×;
* **Crash recovery on the routed WAL format** — unsealed crash + reopen
  + refeed converges, kill-at-every-slide heals in place, and a deleted
  resolver dir is refused (shards can never outrun the resolver);
* **Manifest versioning** — broadcast roots keep the format-1 manifest,
  routed roots are format 2; opening in the wrong mode refuses with a
  migration hint, and :func:`migrate_to_routed` converts in place.
"""

import json

import pytest

from repro.core.ic import InfluentialCheckpoints
from repro.core.multi import MultiQueryEngine
from repro.core.sic import SparseInfluentialCheckpoints
from repro.core.stream import batched
from repro.experiments.memory import sharded_work
from repro.faults import Fault, FaultPlan
from repro.persistence.serialize import PersistenceError
from repro.sharding.engine import ShardedEngine, migrate_to_routed
from repro.sharding.partition import HeatPartitioner, influencer_heat
from tests.conftest import random_stream

MAKERS = {
    "ic": lambda shard=None: InfluentialCheckpoints(
        window_size=40, k=3, beta=0.3, shard=shard
    ),
    "sic": lambda shard=None: SparseInfluentialCheckpoints(
        window_size=40, k=3, beta=0.3, shard=shard
    ),
}

ACTIONS = random_stream(150, 15, seed=71)


def run_mode(make, actions, slide, shards, routed, **open_kwargs):
    """Drive one engine; returns (per-slide answers, ingest mode)."""
    open_kwargs.setdefault("backend", "serial")
    answers = []
    with ShardedEngine.open(
        lambda assignment=None: make(shard=assignment),
        shards,
        routed=routed,
        **open_kwargs,
    ) as engine:
        for batch in batched(actions, slide):
            engine.process(list(batch))
            answers.append(engine.query())
        return answers, engine.ingest_mode


class TestRoutedBroadcastEquivalence:
    @pytest.mark.parametrize("algorithm", ["ic", "sic"])
    @pytest.mark.parametrize("slide", [1, 5])
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_hash_partitioner_matrix(self, algorithm, slide, shards):
        """Identical per-slide values/seeds on every matrix cell."""
        make = MAKERS[algorithm]
        broadcast, b_mode = run_mode(make, ACTIONS, slide, shards, False)
        routed, r_mode = run_mode(make, ACTIONS, slide, shards, True)
        assert b_mode == "broadcast" and r_mode == "routed"
        assert routed == broadcast

    @pytest.mark.parametrize("algorithm", ["ic", "sic"])
    @pytest.mark.parametrize("shards", [2, 4])
    def test_heat_partitioner_matrix(self, algorithm, shards):
        heat = influencer_heat(ACTIONS[:75])
        make = MAKERS[algorithm]
        broadcast, _ = run_mode(
            make, ACTIONS, 5, shards, False,
            partitioner=HeatPartitioner(shards, heat),
        )
        routed, _ = run_mode(
            make, ACTIONS, 5, shards, True,
            partitioner=HeatPartitioner(shards, heat),
        )
        assert routed == broadcast

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backends_agree_with_serial(self, backend):
        serial, _ = run_mode(MAKERS["ic"], ACTIONS, 5, 3, True)
        other, _ = run_mode(
            MAKERS["ic"], ACTIONS, 5, 3, True, backend=backend
        )
        assert other == serial

    def test_multi_board_defaults_to_routed_and_matches(self):
        def factory(assignment=None):
            return (
                MultiQueryEngine()
                .add("fast", MAKERS["ic"](shard=assignment))
                .add("sparse", MAKERS["sic"](shard=assignment))
            )

        boards = {}
        for routed in (False, True):
            with ShardedEngine.open(
                factory, 2, backend="serial", routed=routed
            ) as engine:
                for batch in batched(ACTIONS, 5):
                    engine.process(list(batch))
                boards[routed] = engine.query_all()
        assert boards[True] == boards[False]
        # Auto-detection: a capable board picks routed without being asked.
        with ShardedEngine.open(factory, 2, backend="serial") as engine:
            assert engine.ingest_mode == "routed"

    def test_unsupporting_board_refuses_forced_routed(self):
        from repro.influence.queries import TopicAwareSIM

        def factory(assignment=None):
            return MultiQueryEngine().add(
                "topic", TopicAwareSIM({"x"}, {}, window_size=20, k=2)
            )

        from repro.sharding.engine import ShardingError

        with pytest.raises(ShardingError, match="routed"):
            ShardedEngine.open(factory, 2, backend="serial", routed=True)
        # And auto-detection falls back to broadcast.
        with ShardedEngine.open(factory, 2, backend="serial") as engine:
            assert engine.ingest_mode == "broadcast"


class TestAccounting:
    def test_per_shard_stats_report_routed_records(self):
        factory = lambda a=None: MAKERS["sic"](shard=a)
        with ShardedEngine.open(
            factory, 3, backend="serial", routed=True
        ) as engine:
            for batch in batched(ACTIONS, 5):
                engine.process(list(batch))
            stats = engine.supervision_stats()
            assert stats["ingest"] == "routed"
            assert stats["resolver"]["actions_processed"] == len(ACTIONS)
            assert stats["resolver"]["now"] == 150
            per_shard = [s["routed_records"] for s in stats["shards"]]
            assert all("actions" not in s for s in stats["shards"])
            # The stream is resolved once; shards split the records (a
            # record is duplicated only when its influencer chain spans
            # shards), so total routed work stays well under S× stream.
            assert sum(per_shard) < 3 * len(ACTIONS)
            assert engine.actions_processed == len(ACTIONS)
            assert engine.shard_routed_records == per_shard
            assert engine.last_routed_records > 0

            work = sharded_work(engine)
            assert work["unit"] == "routed_records"
            assert work["per_shard"] == per_shard
            assert work["stream_actions"] == len(ACTIONS)
            assert work["replication_factor"] < 3

    def test_broadcast_replication_factor_is_shard_count(self):
        factory = lambda a=None: MAKERS["sic"](shard=a)
        with ShardedEngine.open(
            factory, 3, backend="serial", routed=False
        ) as engine:
            for batch in batched(ACTIONS, 5):
                engine.process(list(batch))
            work = sharded_work(engine)
            assert work["unit"] == "actions"
            assert work["per_shard"] == [len(ACTIONS)] * 3
            assert work["replication_factor"] == 3.0
            stats = engine.supervision_stats()
            assert stats["ingest"] == "broadcast"
            assert "resolver" not in stats


class TestRoutedRecovery:
    def _feed(self, engine, batches):
        resume = engine.now
        for batch in batches:
            if batch[-1].time <= resume:
                continue
            engine.process([a for a in batch if a.time > resume])

    def test_unsealed_crash_reopen_refeed_converges(self, tmp_path):
        actions = random_stream(200, 20, seed=72)
        batches = [list(b) for b in batched(actions, 5)]
        factory = lambda a=None: MAKERS["ic"](shard=a)
        expected, _ = run_mode(MAKERS["ic"], actions, 5, 2, False)

        state = tmp_path / "state"
        engine = ShardedEngine.open(
            factory, 2, state_dir=state, backend="serial",
            snapshot_every=7, fsync=False, routed=True,
        )
        for batch in batches[:23]:
            engine.process(batch)
        engine._backend.stop()  # crash: no seal, WAL tails remain

        recovered = ShardedEngine.open(
            factory, 2, state_dir=state, backend="serial",
            snapshot_every=7, fsync=False,
        )
        assert recovered.ingest_mode == "routed"  # manifest remembers
        assert recovered.slides_processed == 23
        self._feed(recovered, batches)
        assert recovered.query() == expected[-1]
        recovered.close()

        sealed = ShardedEngine.open(
            factory, 2, state_dir=state, backend="serial", fsync=False
        )
        assert sealed.shard_replayed_slides == [0, 0]
        assert sealed.query() == expected[-1]
        sealed.close()

    @pytest.mark.parametrize("algo", ["ic", "sic"])
    def test_kill_at_every_slide_heals_on_routed_path(self, algo, tmp_path):
        """The supervisor kill matrix rerun on the routed WAL format."""
        actions = random_stream(200, 25, seed=73)
        batches = [list(b) for b in batched(actions, 25)]
        factory = lambda a=None: MAKERS[algo](shard=a)
        expected, _ = run_mode(MAKERS[algo], actions, 25, 2, True)
        plan = FaultPlan(
            [
                Fault(kind="kill", shard=(s - 1) % 2, at_slide=s)
                for s in range(1, len(batches) + 1)
            ],
            seed=73,
        )
        engine = ShardedEngine.open(
            factory, 2, state_dir=tmp_path / "state", backend="process",
            snapshot_every=3, fsync=False, fault_plan=plan, routed=True,
        )
        try:
            for batch in batches:
                engine.process(batch)
            assert engine.query() == expected[-1]
            stats = engine.supervision_stats()
            assert stats["restarts"] == len(batches)
            assert stats["escalations"] == 0
            assert not stats["degraded"]
        finally:
            engine.close()

    def test_missing_resolver_state_is_refused(self, tmp_path):
        import shutil

        factory = lambda a=None: MAKERS["ic"](shard=a)
        state = tmp_path / "state"
        engine = ShardedEngine.open(
            factory, 2, state_dir=state, backend="serial",
            fsync=False, routed=True,
        )
        engine.process([a for a in random_stream(20, 5, seed=74)])
        engine.close()
        shutil.rmtree(state / "resolver")
        with pytest.raises(PersistenceError, match="resolver"):
            ShardedEngine.open(
                factory, 2, state_dir=state, backend="serial", fsync=False
            )


class TestManifestAndMigration:
    def _fill(self, state, routed, slides=23, seal=True):
        factory = lambda a=None: MAKERS["ic"](shard=a)
        actions = random_stream(200, 20, seed=75)
        batches = [list(b) for b in batched(actions, 5)]
        engine = ShardedEngine.open(
            factory, 2, state_dir=state, backend="serial",
            snapshot_every=7, fsync=False, routed=routed,
        )
        for batch in batches[:slides]:
            engine.process(batch)
        if seal:
            engine.close()
        else:
            engine._backend.stop()
        return factory, batches

    def test_broadcast_manifest_stays_format_1(self, tmp_path):
        state = tmp_path / "state"
        self._fill(state, routed=False)
        manifest = json.loads((state / "sharding.json").read_text())
        assert manifest["format"] == 1
        assert "ingest" not in manifest
        assert not (state / "resolver").exists()

    def test_routed_manifest_is_format_2(self, tmp_path):
        state = tmp_path / "state"
        self._fill(state, routed=True)
        manifest = json.loads((state / "sharding.json").read_text())
        assert manifest["format"] == 2
        assert manifest["ingest"] == "routed"
        assert (state / "resolver").is_dir()

    def test_mode_mismatch_refusals(self, tmp_path):
        factory, _ = self._fill(tmp_path / "broadcast", routed=False)
        with pytest.raises(PersistenceError, match="migrate_to_routed"):
            ShardedEngine.open(
                factory, 2, state_dir=tmp_path / "broadcast",
                backend="serial", fsync=False, routed=True,
            )
        self._fill(tmp_path / "routed", routed=True)
        with pytest.raises(PersistenceError, match="routed=True"):
            ShardedEngine.open(
                factory, 2, state_dir=tmp_path / "routed",
                backend="serial", fsync=False, routed=False,
            )

    @pytest.mark.parametrize("seal", [True, False])
    def test_migrate_then_continue_converges(self, tmp_path, seal):
        """In-place conversion: sealed roots and crashed roots (whose WAL
        tail seeds the resolver) both reopen routed and converge."""
        state = tmp_path / "state"
        factory, batches = self._fill(state, routed=False, seal=seal)
        expected, _ = run_mode(
            MAKERS["ic"],
            [a for batch in batches for a in batch], 5, 2, False,
        )
        summary = migrate_to_routed(state)
        assert summary["migrated"] and summary["ingest"] == "routed"
        assert summary["now"] == 115
        if not seal:
            assert summary["replayed"] > 0  # WAL tail replayed into the resolver
        # Idempotent: a second call is a no-op.
        assert migrate_to_routed(state)["migrated"] is False

        engine = ShardedEngine.open(
            factory, 2, state_dir=state, backend="serial",
            snapshot_every=7, fsync=False,
        )
        try:
            assert engine.ingest_mode == "routed"
            resume = engine.now
            for batch in batches:
                if batch[-1].time <= resume:
                    continue
                engine.process([a for a in batch if a.time > resume])
            assert engine.query() == expected[-1]
        finally:
            engine.close()

    def test_migrate_refuses_non_sharded_dirs(self, tmp_path):
        with pytest.raises(PersistenceError, match="manifest"):
            migrate_to_routed(tmp_path)
