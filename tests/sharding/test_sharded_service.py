"""The sharded serving plane: sockets, CLI, load_gen, and SIGTERM seals."""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

from repro.core.ic import InfluentialCheckpoints
from repro.core.stream import batched
from repro.faults import Fault, FaultPlan
from repro.persistence.engine import (
    RecoverableEngine,
    list_shard_state_dirs,
)
from repro.service.client import ServiceClient
from repro.service.config import ServiceConfig
from repro.service.runner import ServiceRunner
from repro.sharding.engine import ShardedEngine
from tests.conftest import parse_prometheus, random_stream

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent


def _factory(assignment=None):
    return InfluentialCheckpoints(
        window_size=60, k=3, beta=0.3, shard=assignment
    )


class TestShardedServiceInProcess:
    def test_socket_answers_match_offline_sharded_engine(self):
        """Socket ingest through a sharded engine ≡ offline sharded feed."""
        actions = random_stream(300, 20, seed=31)
        slide = 20

        offline = ShardedEngine.open(_factory, 2, backend="serial")
        answers = []
        for batch in batched(actions, slide):
            offline.process(list(batch))
            answers.append(offline.query())
        offline.close()

        engine = ShardedEngine.open(_factory, 2, backend="thread")
        config = ServiceConfig(
            port=0, slide=slide, flush_interval=60.0, shards=2
        )
        with ServiceRunner(engine, config) as runner:
            client = ServiceClient("127.0.0.1", runner.port)
            summary = client.ingest(actions)
            assert summary["accepted"] == len(actions)
            assert summary["slide"] == len(answers)
            served = client.history("main", limit=len(answers))
            status, metrics = client.http_get("/metrics")
        assert status == 200
        assert metrics["engine"]["shards"] == 2
        assert metrics["engine"]["shard_backend"] == "thread"
        assert metrics["queries"]["main"]["kind"] == "sharded"
        assert [a["time"] for a in served] == [a.time for a in answers]
        assert [a["value"] for a in served] == [a.value for a in answers]
        assert [set(a["seeds"]) for a in served] == [
            set(a.seeds) for a in answers
        ]


def _spawn_server(args, cwd):
    """Start ``repro.cli serve`` and return (process, host, port)."""
    env = dict(os.environ)
    src = str(pathlib.Path(cwd) / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        cwd=cwd,
        env=env,
    )
    line = process.stdout.readline().decode()
    assert line.startswith("listening on "), line
    address = line.split()[2]
    host, _, port = address.partition(":")
    return process, host, int(port)


class TestShardedServeSubprocess:
    def test_smoke_shards2_loadgen_sigterm_seal(self, tmp_path):
        """The CI sharded smoke: ``serve --shards 2``, 2k actions through
        ``scripts/load_gen.py``, a prometheus scrape + trace-log check,
        a flight-recorder/SLO check (a deliberately tight objective must
        fire during the burst and clear at rest), a collapsed-stack
        profile grab, a top-k read, and a SIGTERM seal leaving every
        shard's state dir replay-free."""
        state_dir = tmp_path / "state"
        report_path = tmp_path / "load_gen.json"
        trace_path = os.environ.get(
            "REPRO_SMOKE_TRACE_LOG", str(tmp_path / "trace.jsonl")
        )
        alert_path = os.environ.get(
            "REPRO_SMOKE_ALERT_LOG", str(tmp_path / "alerts.jsonl")
        )
        profile_path = os.environ.get(
            "REPRO_SMOKE_PROFILE", str(tmp_path / "profile.txt")
        )
        # Any slide at all violates threshold 0 — guaranteed to burn
        # while load_gen runs and to clear once the stream stops.
        tight_slo = (
            "smoke_tight=repro_slide_seconds:p99,threshold=0.0,"
            "objective=0.5,fast=0.5,slow=1.0,burn=1.0,severity=page,"
            "min-samples=2"
        )
        process, host, port = _spawn_server(
            [
                "--algorithm", "sic", "--window", "500", "--slide", "25",
                "-k", "5", "--beta", "0.3", "--shards", "2",
                "--shard-backend", "process", "--state-dir", str(state_dir),
                "--snapshot-every", "0", "--flush-interval", "60",
                "--trace-log", trace_path, "--slow-slide-ms", "0",
                "--sample-interval", "0.1", "--alert-log", alert_path,
                "--slo", tight_slo,
            ],
            cwd=REPO_ROOT,
        )
        try:
            env = dict(os.environ)
            env["PYTHONPATH"] = (
                str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
            )
            completed = subprocess.run(
                [
                    sys.executable,
                    str(REPO_ROOT / "scripts" / "load_gen.py"),
                    "--port", str(port), "-n", "2000", "-u", "200",
                    "--seed", "15", "--batch", "64",
                    "--output", str(report_path),
                ],
                capture_output=True,
                text=True,
                timeout=240,
                env=env,
                cwd=REPO_ROOT,
            )
            assert completed.returncode == 0, completed.stderr[-1500:]
            report = json.loads(report_path.read_text())
            assert report["actions"] == 2000
            assert report["batch"] == 64  # the batched wire format
            assert report["accepted"] == 2000
            assert report["rejected"] == 0
            assert report["slides"] == 80
            assert report["actions_per_sec"] > 0
            client = ServiceClient(host, port)
            answer = client.topk("main")
            assert answer["time"] == 2000
            assert len(answer["seeds"]) == 5
            assert answer["value"] == report["query_value"]

            # The telemetry plane under real sharded-process load: the
            # exposition parses, covers every layer, and the forced
            # slow-slide threshold traced each of the 80 slides.
            samples = parse_prometheus(client.metrics_prometheus())
            assert samples["repro_ingest_accepted_total"][""] == 2000
            assert samples["repro_slide_seconds_count"][""] == 80
            stage_counts = samples["repro_slide_stage_seconds_count"]
            assert stage_counts['{stage="shard_fanout"}'] == 80
            assert stage_counts['{stage="shard_merge"}'] == 80
            for shard in ("0", "1"):
                labels = f'{{shard="{shard}"}}'
                assert samples["repro_shard_busy_seconds_total"][labels] > 0
                assert samples["repro_shard_restarts_total"][labels] == 0
                assert samples["repro_shard_up"][labels] == 1
                # Routed ingest: each shard consumed its routed records,
                # not the broadcast stream.
                assert samples["repro_shard_routed_records_total"][labels] > 0
            assert samples["repro_shards_degraded"][""] == 0
            assert samples["repro_resolver_actions_total"][""] == 2000
            # The flight recorder's own health rides the exposition too.
            assert samples["repro_flight_samples_total"][""] >= 1
            assert "" in samples["repro_flight_sampler_lag_seconds"]
            assert '{slo="smoke_tight"}' in samples["repro_alert_active"]

            # The tight SLO burned during the load burst and must clear
            # now that the stream has stopped (idle intervals record 0).
            alert_file = pathlib.Path(alert_path)
            deadline = time.time() + 30
            kinds = []
            while time.time() < deadline:
                if alert_file.exists():
                    kinds = [
                        json.loads(line)["event"]
                        for line in alert_file.read_text().splitlines()
                        if line
                    ]
                    if "alert_cleared" in kinds:
                        break
                time.sleep(0.1)
            assert "alert_raised" in kinds, kinds
            assert "alert_cleared" in kinds, kinds
            events = [
                json.loads(line)
                for line in alert_file.read_text().splitlines()
                if line
            ]
            raised = events[kinds.index("alert_raised")]
            assert raised["slo"] == "smoke_tight"
            assert raised["severity"] == "page"
            status, health = client.http_get("/healthz")
            assert status == 200, health  # back to green after clearing

            # A two-second profile window: collapsed stacks must exist
            # and attribute samples to the (parked) ingest executor.
            status, body, _ = client.http_get_raw("/debug/profile?seconds=2")
            assert status == 200
            assert body.strip(), "empty profile"
            assert "ingest;" in body, body[:2000]
            pathlib.Path(profile_path).write_text(body)

            traced = [
                json.loads(line)
                for line in pathlib.Path(trace_path)
                .read_text()
                .strip()
                .splitlines()
            ]
            assert len(traced) == 80
            stages = set(traced[-1]["stages"])
            assert {
                "queue_wait", "coalesce", "shard_fanout",
                "shard_merge", "publish",
            } <= stages

            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        # The SIGTERM seal, per shard: snapshot at the final slide, no
        # WAL tail to replay.
        shard_dirs = list_shard_state_dirs(state_dir)
        assert len(shard_dirs) == 2
        for shard_dir in shard_dirs:
            engine = RecoverableEngine.open(shard_dir, factory=None)
            try:
                assert engine.slides_processed == 80
                assert engine.replayed_slides == 0
                assert engine.now == 2000
            finally:
                engine.close(snapshot=False)

    def test_sharded_resume_after_sigkill_converges(self, tmp_path):
        """kill -9 the whole sharded server; restart + replay converges."""
        state_dir = tmp_path / "state"
        actions = random_stream(600, 40, seed=32)
        server_args = [
            "--algorithm", "ic", "--window", "120", "--slide", "5",
            "-k", "3", "--beta", "0.3", "--shards", "2",
            "--shard-backend", "thread", "--state-dir", str(state_dir),
            "--snapshot-every", "7", "--flush-interval", "60",
        ]

        def offline_factory(assignment=None):
            return InfluentialCheckpoints(
                window_size=120, k=3, beta=0.3, shard=assignment
            )

        reference = ShardedEngine.open(offline_factory, 2, backend="serial")
        for batch in batched(actions, 5):
            reference.process(list(batch))
        expected = reference.query()
        reference.close()

        process, host, port = _spawn_server(server_args, cwd=REPO_ROOT)
        try:
            client = ServiceClient(host, port)
            summary = client.ingest(actions[:400])
            assert summary["slide"] == 80
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

        process, host, port = _spawn_server(server_args, cwd=REPO_ROOT)
        try:
            client = ServiceClient(host, port)
            summary = client.ingest(actions)  # at-least-once redelivery
            assert summary["slide"] == 120
            assert summary["time"] == 600
            answer = client.topk("main")
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

        assert answer["time"] == expected.time
        assert answer["value"] == expected.value
        assert set(answer["seeds"]) == set(expected.seeds)


class TestDegradedHealth:
    def test_healthz_degraded_after_shard_kill_then_clears(self, tmp_path):
        """SIGKILL one shard worker: reads degrade (503 "degraded" with
        the shard named), the next write heals it in place, and the
        service returns to 200 with the degraded window on record."""
        actions = random_stream(400, 30, seed=34)
        offline = ShardedEngine.open(_factory, 2, backend="serial")
        for batch in batched(actions, 20):
            offline.process(list(batch))
        expected = offline.query()
        offline.close()

        engine = ShardedEngine.open(
            _factory, 2, state_dir=tmp_path / "state",
            backend="process", snapshot_every=4,
        )
        config = ServiceConfig(
            port=0, slide=20, flush_interval=60.0,
            shards=2, shard_backend="process",
        )
        with ServiceRunner(engine, config) as runner:
            client = ServiceClient("127.0.0.1", runner.port)
            client.ingest(actions[:200])
            victim = engine.worker_pids[0]
            os.kill(victim, signal.SIGKILL)
            time.sleep(0.2)
            # A merged read notices the dead worker and degrades instead
            # of failing (reads never restart workers).
            engine.query_all()
            assert runner.degraded
            status, payload = client.http_get("/healthz")
            assert status == 503
            assert payload["status"] == "degraded"
            assert payload["degraded_shards"] == [0]
            assert payload["restarts"] == 0
            degraded = client.wait_healthy(accept_degraded=True)
            assert degraded["status"] == "degraded"
            # The next write heals the shard in place and clears the flag.
            client.ingest(actions[200:])
            assert client.wait_healthy()["status"] == "ok"
            assert not runner.degraded
            answer = client.topk("main")
            status, metrics = client.http_get("/metrics")
        assert answer["time"] == expected.time
        assert answer["value"] == expected.value
        assert set(answer["seeds"]) == set(expected.seeds)
        assert status == 200
        assert metrics["engine"]["degraded"] is False
        assert metrics["engine"]["degraded_shards"] == []
        supervision = metrics["engine"]["supervision"]
        assert supervision["restarts"] == 1
        assert supervision["degraded_windows"] == 1
        assert supervision["degraded_seconds"] > 0
        assert metrics["ingest"]["writer_retries"] == 0


class TestChaosServeSubprocess:
    def test_fault_plan_serve_shards2_converges(self, tmp_path):
        """The CI chaos smoke: ``serve --shards 2 --fault-plan`` with a
        scripted SIGKILL per shard mid-stream.  The client sees zero
        errors, the final answer matches a fault-free run, and /metrics
        records the healed degraded windows."""
        state_dir = tmp_path / "state"
        plan_path = tmp_path / "plan.json"
        FaultPlan(
            [
                Fault(kind="kill", shard=0, at_slide=6),
                Fault(kind="kill", shard=1, at_slide=14),
            ],
            seed=15,
        ).save(plan_path)
        actions = random_stream(600, 40, seed=33)

        def offline_factory(assignment=None):
            return InfluentialCheckpoints(
                window_size=120, k=3, beta=0.3, shard=assignment
            )

        reference = ShardedEngine.open(offline_factory, 2, backend="serial")
        for batch in batched(actions, 5):
            reference.process(list(batch))
        expected = reference.query()
        reference.close()

        process, host, port = _spawn_server(
            [
                "--algorithm", "ic", "--window", "120", "--slide", "5",
                "-k", "3", "--beta", "0.3", "--shards", "2",
                "--shard-backend", "process", "--state-dir", str(state_dir),
                "--snapshot-every", "5", "--flush-interval", "60",
                "--fault-plan", str(plan_path),
            ],
            cwd=REPO_ROOT,
        )
        try:
            client = ServiceClient(host, port)
            summary = client.ingest(actions)  # raises on any error line
            assert summary["slide"] == 120
            assert summary["time"] == 600
            answer = client.topk("main")
            status, payload = client.http_get("/healthz")
            assert status == 200, payload
            status, metrics = client.http_get("/metrics")
            assert status == 200
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        assert answer["time"] == expected.time
        assert answer["value"] == expected.value
        assert set(answer["seeds"]) == set(expected.seeds)
        assert metrics["engine"]["degraded"] is False
        supervision = metrics["engine"]["supervision"]
        assert supervision["restarts"] == 2
        assert supervision["degraded_windows"] == 2
        assert supervision["escalations"] == 0
        assert metrics["ingest"]["writer_retries"] == 0
