"""Unit tests for the merge-on-read top-k combiner."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.influence.functions import (
    CardinalityInfluence,
    ConformityAwareInfluence,
    WeightedCardinalityInfluence,
)
from repro.sharding.merge import (
    SeedCandidate,
    ShardAnswer,
    merge_shard_answers,
)

CARD = CardinalityInfluence()


def answer(shard, seeds_coverage, time=10):
    """A ShardAnswer whose value is the exact cardinality of the union."""
    covered = set()
    for _user, coverage in seeds_coverage:
        covered |= set(coverage)
    return ShardAnswer(
        shard=shard,
        time=time,
        seeds=frozenset(u for u, _ in seeds_coverage),
        value=float(len(covered)),
        candidates=tuple(
            SeedCandidate(user=u, coverage=frozenset(c))
            for u, c in seeds_coverage
        ),
    )


class TestModularMerge:
    def test_cross_shard_overlap_is_deducted_exactly(self):
        """Two shards covering the same users must not double count."""
        merged = merge_shard_answers(
            [
                answer(0, [(1, {100, 101, 102})]),
                answer(1, [(2, {101, 102, 103})]),
            ],
            k=2,
            func=CARD,
        )
        assert merged.seeds == {1, 2}
        assert merged.value == 4.0  # |{100,101,102,103}|, not 3+3

    def test_greedy_beats_any_single_shard(self):
        merged = merge_shard_answers(
            [
                answer(0, [(1, {100, 101}), (3, {104})]),
                answer(1, [(2, {102, 103})]),
            ],
            k=2,
            func=CARD,
        )
        # Best pair across shards is {1, 2} with 4 covered users.
        assert merged.value == 4.0
        assert merged.seeds == {1, 2}

    def test_merged_never_below_best_shard(self):
        """Pathological pools cannot drag the merge below the best shard."""
        best = answer(0, [(1, {100, 101, 102, 103, 104})])
        other = answer(1, [(2, {200}), (3, {201}), (4, {202})])
        merged = merge_shard_answers([best, other], k=1, func=CARD)
        assert merged.value >= best.value
        assert merged.seeds == {1}

    def test_pool_not_larger_than_k_returns_everything(self):
        """<= k candidates: no selection, exact union (the S=1 identity)."""
        only = answer(0, [(1, {100}), (2, {100, 101})])
        merged = merge_shard_answers([only, answer(1, [])], k=3, func=CARD)
        assert merged.seeds == {1, 2}
        assert merged.value == 2.0

    def test_k_is_respected(self):
        merged = merge_shard_answers(
            [
                answer(0, [(1, {1}), (2, {2})]),
                answer(1, [(3, {3}), (4, {4})]),
            ],
            k=2,
            func=CARD,
        )
        assert len(merged.seeds) == 2

    def test_weighted_function_uses_weights(self):
        func = WeightedCardinalityInfluence({100: 10.0}, default=1.0)
        merged = merge_shard_answers(
            [
                ShardAnswer(0, 5, frozenset({1}), 11.0, (
                    SeedCandidate(1, frozenset({100, 101})),
                )),
                ShardAnswer(1, 5, frozenset({2}), 2.0, (
                    SeedCandidate(2, frozenset({102, 103})),
                )),
            ],
            k=1,
            func=func,
        )
        assert merged.seeds == {1}
        assert merged.value == 11.0

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_lazy_greedy_matches_naive_greedy_value(self, data):
        """CELF's lazy refresh must not change the greedy outcome value."""
        n_candidates = data.draw(st.integers(1, 8))
        k = data.draw(st.integers(1, 4))
        pool = []
        for user in range(n_candidates):
            coverage = data.draw(
                st.frozensets(st.integers(0, 15), min_size=0, max_size=8)
            )
            pool.append((user, coverage))
        shards = [
            answer(0, pool[::2]),
            answer(1, pool[1::2]),
        ]
        merged = merge_shard_answers(shards, k=k, func=CARD)

        # Naive reference: exhaustive greedy (or all when pool <= k).
        candidates = {u: c for u, c in pool}
        if len(candidates) <= k:
            expected = float(len(set().union(*candidates.values())
                                 if candidates else set()))
        else:
            covered, chosen = set(), set()
            for _ in range(k):
                best_user, best_gain = None, 0.0
                for u, c in candidates.items():
                    if u in chosen:
                        continue
                    gain = len(c - covered)
                    if gain > best_gain:
                        best_user, best_gain = u, gain
                if best_user is None:
                    break
                chosen.add(best_user)
                covered |= candidates[best_user]
            best_single = max(
                (a.value for a in shards if a.seeds), default=0.0
            )
            expected = max(float(len(covered)), best_single)
        assert merged.value == expected


class TestFallbacks:
    def test_non_modular_takes_best_shard(self):
        func = ConformityAwareInfluence({}, {})
        first = ShardAnswer(0, 9, frozenset({1}), 3.0, None)
        second = ShardAnswer(1, 9, frozenset({2, 3}), 5.0, None)
        merged = merge_shard_answers([first, second], k=2, func=func)
        assert merged.seeds == {2, 3}
        assert merged.value == 5.0

    def test_missing_candidates_take_best_shard_even_when_modular(self):
        first = ShardAnswer(0, 9, frozenset({1}), 3.0, None)
        second = answer(1, [(2, {100, 101})])
        merged = merge_shard_answers([first, second], k=2, func=CARD)
        assert merged.seeds == {1}  # value 3.0 beats 2.0
        assert merged.value == 3.0

    def test_no_function_takes_best_shard(self):
        merged = merge_shard_answers(
            [answer(0, [(1, {100})]), answer(1, [(2, {101, 102})])],
            k=2,
            func=None,
        )
        assert merged.seeds == {2}

    def test_ties_break_to_lowest_shard(self):
        merged = merge_shard_answers(
            [
                ShardAnswer(0, 9, frozenset({1}), 4.0, None),
                ShardAnswer(1, 9, frozenset({2}), 4.0, None),
            ],
            k=1,
        )
        assert merged.seeds == {1}

    def test_empty_answers_give_zero_result(self):
        merged = merge_shard_answers([], k=3, func=CARD)
        assert merged.seeds == frozenset()
        assert merged.value == 0.0

    def test_single_live_shard_is_returned_verbatim(self):
        only = answer(2, [(7, {100, 101})], time=42)
        merged = merge_shard_answers(
            [ShardAnswer(0, 42, frozenset(), 0.0, ()), only], k=5, func=CARD
        )
        assert merged.seeds == only.seeds
        assert merged.value == only.value
        assert merged.time == 42

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError, match="got 0"):
            merge_shard_answers([], k=0)


class TestBound:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_merged_at_least_best_shard_and_within_opt(self, seed):
        """merged >= max_s value_s and merged <= OPT over the pool."""
        import random

        rng = random.Random(seed)
        k = rng.randint(1, 3)
        shards = []
        all_candidates = {}
        for shard in range(3):
            cands = []
            # A real shard oracle never answers more than k seeds.
            for user in range(shard * 10, shard * 10 + rng.randint(1, k)):
                coverage = frozenset(
                    rng.sample(range(30), rng.randint(0, 6))
                )
                cands.append((user, coverage))
                all_candidates[user] = coverage
            shards.append(answer(shard, cands))
        merged = merge_shard_answers(shards, k=k, func=CARD)
        assert merged.value >= max(a.value for a in shards if a.seeds)
        opt = 0.0
        users = list(all_candidates)
        for combo in itertools.combinations(users, min(k, len(users))):
            covered = set().union(*(all_candidates[u] for u in combo))
            opt = max(opt, float(len(covered)))
        assert merged.value <= opt + 1e-9
