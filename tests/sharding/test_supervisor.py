"""Shard supervision under scripted faults: heal in place, converge.

The acceptance matrix of the supervision plane: workers killed at every
slide position (cycling over the shards), hung workers tripping the call
timeout, dropped replies, and WAL-tail corruption between kill and
restart — in every case the caller must see zero
:class:`~repro.sharding.ShardingError` and the final merged answer must
equal a fault-free run of the same topology.
"""

import pytest

from repro.core.ic import InfluentialCheckpoints
from repro.core.sic import SparseInfluentialCheckpoints
from repro.core.stream import batched
from repro.faults import Fault, FaultPlan
from repro.sharding.engine import ShardedEngine
from tests.conftest import random_stream

SLIDE = 25


def _factory_for(algo):
    if algo == "ic":
        return lambda assignment=None: InfluentialCheckpoints(
            window_size=80, k=3, beta=0.3, shard=assignment
        )
    return lambda assignment=None: SparseInfluentialCheckpoints(
        window_size=80, k=3, beta=0.2, shard=assignment
    )


def _reference(factory, shards, batches):
    engine = ShardedEngine.open(factory, shards, backend="serial")
    try:
        for batch in batches:
            engine.process(batch)
        return engine.query()
    finally:
        engine.close()


def _run_faulted(factory, shards, batches, plan, state_dir, **kwargs):
    """Drive a faulted engine to the end; any ShardingError propagates."""
    engine = ShardedEngine.open(
        factory,
        shards,
        state_dir=state_dir,
        backend=kwargs.pop("backend", "process"),
        snapshot_every=kwargs.pop("snapshot_every", 3),
        fault_plan=plan,
        **kwargs,
    )
    try:
        for batch in batches:
            engine.process(batch)
        observed = engine.query()
        stats = engine.supervision_stats()
    finally:
        engine.close()
    return observed, stats


def _assert_converged(observed, expected):
    assert observed.time == expected.time
    assert observed.value == expected.value
    assert sorted(observed.seeds) == sorted(expected.seeds)


class TestKillMatrix:
    @pytest.mark.parametrize("algo", ["ic", "sic"])
    @pytest.mark.parametrize("shards", [2, 4])
    def test_kill_at_every_slide_heals_and_converges(
        self, algo, shards, tmp_path
    ):
        """One SIGKILL fires before *every* slide, cycling the target
        shard, so each slide position is exercised and every shard dies
        repeatedly — including slide 1, where the restart replays an
        empty store.  The caller never sees an error."""
        actions = random_stream(200, 25, seed=41)
        batches = [list(b) for b in batched(actions, SLIDE)]
        factory = _factory_for(algo)
        expected = _reference(factory, shards, batches)
        plan = FaultPlan(
            [
                Fault(kind="kill", shard=(s - 1) % shards, at_slide=s)
                for s in range(1, len(batches) + 1)
            ],
            seed=41,
        )
        observed, stats = _run_faulted(
            factory, shards, batches, plan, tmp_path / "state"
        )
        _assert_converged(observed, expected)
        assert stats["restarts"] == len(batches)
        assert stats["degraded_windows"] == len(batches)
        assert stats["escalations"] == 0
        assert not stats["degraded"]
        assert all(s["state"] == "up" for s in stats["shards"])


class TestTimeoutFaults:
    def test_hang_trips_timeout_and_degraded_window_clears(self, tmp_path):
        """A hung worker trips the per-call timeout, is abandoned and
        restarted; the degraded window opens, then closes on the heal."""
        actions = random_stream(150, 20, seed=42)
        batches = [list(b) for b in batched(actions, SLIDE)]
        factory = _factory_for("ic")
        expected = _reference(factory, 2, batches)
        plan = FaultPlan(
            [Fault(kind="hang", shard=1, at_slide=3, seconds=1.0)], seed=42
        )
        observed, stats = _run_faulted(
            factory,
            2,
            batches,
            plan,
            tmp_path / "state",
            backend="thread",
            call_timeout=0.2,
        )
        _assert_converged(observed, expected)
        assert stats["call_timeouts"] >= 1
        assert stats["restarts"] == 1
        assert stats["degraded_windows"] == 1
        assert stats["degraded_seconds"] > 0
        assert not stats["degraded"]

    def test_drop_reply_is_detected_and_healed(self, tmp_path):
        """A worker that swallows its reply looks identical to a hang on
        the wire: the timeout fires, the worker is fenced off (killed)
        and restarted, and the WAL-logged slide needs no redelivery."""
        actions = random_stream(150, 20, seed=43)
        batches = [list(b) for b in batched(actions, SLIDE)]
        factory = _factory_for("sic")
        expected = _reference(factory, 2, batches)
        plan = FaultPlan(
            [Fault(kind="drop_reply", shard=0, at_slide=4)], seed=43
        )
        observed, stats = _run_faulted(
            factory,
            2,
            batches,
            plan,
            tmp_path / "state",
            call_timeout=0.5,
        )
        _assert_converged(observed, expected)
        assert stats["call_timeouts"] == 1
        assert stats["restarts"] == 1
        assert not stats["degraded"]


class TestFacadeFaults:
    def test_corrupt_wal_tail_during_heal_still_converges(self, tmp_path):
        """Bit rot on the WAL tail between kill and restart: the damaged
        final record is truncated as torn, the restart recovers one
        slide earlier, and suffix redelivery heals the difference."""
        actions = random_stream(200, 25, seed=44)
        batches = [list(b) for b in batched(actions, SLIDE)]
        factory = _factory_for("ic")
        expected = _reference(factory, 2, batches)
        plan = FaultPlan(
            [
                Fault(kind="kill", shard=0, at_slide=5),
                Fault(kind="corrupt_wal_tail", shard=0),
            ],
            seed=44,
        )
        observed, stats = _run_faulted(
            factory, 2, batches, plan, tmp_path / "state"
        )
        _assert_converged(observed, expected)
        assert stats["restarts"] == 1
        assert stats["escalations"] == 0
        assert not stats["degraded"]
