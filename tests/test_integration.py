"""Cross-module integration tests: the full pipeline, end to end."""

import pytest

from repro.analysis.optimality import exact_optimum
from repro.core.greedy import WindowedGreedy
from repro.core.ic import InfluentialCheckpoints
from repro.core.sic import SparseInfluentialCheckpoints
from repro.core.stream import batched
from repro.datasets.surrogates import twitter_like
from repro.datasets.synthetic import syn_n
from repro.experiments.metrics import StreamEvaluator


class TestEndToEndPipeline:
    """Generate -> stream -> frameworks -> evaluate -> compare."""

    @pytest.fixture(scope="class")
    def setting(self):
        window, slide, k = 400, 50, 5
        actions = list(twitter_like(n_users=300, n_actions=1600, seed=21))
        algorithms = {
            "sic": SparseInfluentialCheckpoints(window_size=window, k=k, beta=0.2),
            "ic": InfluentialCheckpoints(window_size=window, k=k, beta=0.2),
            "greedy": WindowedGreedy(window_size=window, k=k),
        }
        evaluator = StreamEvaluator(window)
        values = {name: [] for name in algorithms}
        for batch in batched(actions, slide):
            evaluator.feed(batch)
            for name, algorithm in algorithms.items():
                algorithm.process(batch)
                answer = algorithm.query()
                values[name].append(evaluator.influence_value(answer.seeds))
        return algorithms, values, evaluator

    def test_all_algorithms_track_the_stream(self, setting):
        algorithms, values, _ = setting
        for name, series in values.items():
            assert len(series) == 32, name
            assert series[-1] > 0, name

    def test_greedy_dominates_on_exact_values(self, setting):
        """(1−1/e)-greedy should be the strongest on the exact metric."""
        _, values, _ = setting
        mean = {name: sum(s) / len(s) for name, s in values.items()}
        assert mean["greedy"] >= mean["sic"] * 0.99
        assert mean["greedy"] >= mean["ic"] * 0.99

    def test_checkpoint_frameworks_close_to_greedy(self, setting):
        """The paper's quality story: IC/SIC within ~10% of recompute."""
        _, values, _ = setting
        mean = {name: sum(s) / len(s) for name, s in values.items()}
        assert mean["ic"] >= 0.8 * mean["greedy"]
        assert mean["sic"] >= 0.75 * mean["greedy"]

    def test_final_window_vs_exact_optimum(self, setting):
        algorithms, values, evaluator = setting
        try:
            _, optimum = exact_optimum(evaluator.index, k=5)
        except ValueError:
            pytest.skip("window too dense for brute force")
        assert values["greedy"][-1] >= (1 - 1 / 2.718281828) * optimum


class TestLongRunSoak:
    """SIC invariants hold continuously over a long SYN-N stream."""

    def test_invariants_every_slide(self):
        import math

        window, beta, k = 300, 0.25, 4
        sic = SparseInfluentialCheckpoints(window_size=window, k=k, beta=beta)
        bound = 2 * math.log(window) / math.log(1 / (1 - beta)) + 3
        last_starts = set()
        for batch in batched(syn_n(400, 3000, seed=33), 30):
            sic.process(batch)
            # Theorem 5 population bound.
            assert sic.checkpoint_count <= bound
            # Starts strictly increase across the list.
            starts = [c.start for c in sic.checkpoints]
            assert starts == sorted(set(starts))
            # At most one expired checkpoint, and only at the head.
            expired = [
                i for i, c in enumerate(sic.checkpoints)
                if not c.covers_window(sic.now, window)
            ]
            assert expired in ([], [0])
            # The newest checkpoint always starts within the last slide.
            assert sic.checkpoints[-1].start > sic.now - 30
            # Answers always respect k.
            assert len(sic.query().seeds) <= k
            # Checkpoints only ever disappear, never resurrect.
            resurrected = set(starts) - last_starts - {sic.checkpoints[-1].start}
            if last_starts:
                assert all(s in last_starts for s in starts[:-1])
            last_starts = set(starts)

    def test_memory_stays_bounded(self):
        from repro.experiments.memory import measure_footprint

        window = 300
        sic = SparseInfluentialCheckpoints(window_size=window, k=3, beta=0.3)
        peaks = []
        for batch in batched(syn_n(400, 4000, seed=34), 50):
            sic.process(batch)
            peaks.append(measure_footprint(sic).total_entries)
        # Steady state: the second half must not keep growing.
        half = len(peaks) // 2
        assert max(peaks[half:]) <= 2.5 * (sum(peaks[half:]) / len(peaks[half:]))
