"""Table 2 ablation benchmark: the four checkpoint oracles inside SIC.

Paper's Table 2 lists quality/update/function trade-offs; this ablation
measures them empirically — the general-function threshold oracles (Sieve,
ThresholdStream) should beat the swap-based 1/4-oracles on influence value.
"""

import pytest

from repro.core.diffusion import DiffusionForest
from repro.core.influence_index import AppendOnlyInfluenceIndex
from repro.core.oracles import make_oracle
from repro.experiments import figures
from repro.experiments.config import Scale
from repro.influence.functions import CardinalityInfluence

ORACLES = ("sieve", "threshold", "blog_watch", "mkc")


@pytest.mark.parametrize("oracle_name", ORACLES)
def test_oracle_update_cost(benchmark, oracle_name, tiny_stream):
    """Raw SSM update cost of one oracle over the TINY stream prefix."""
    prefix = tiny_stream[:800]

    def run():
        forest = DiffusionForest()
        index = AppendOnlyInfluenceIndex()
        params = {"beta": 0.3} if oracle_name in ("sieve", "threshold") else {}
        oracle = make_oracle(
            oracle_name, k=5, func=CardinalityInfluence(), index=index, **params
        )
        for action in prefix:
            record = forest.add(action)
            for user in index.add(record):
                oracle.process(user, record.user)
        return oracle.value

    value = benchmark.pedantic(run, rounds=3, iterations=1)
    assert value > 0


def test_table2_quality_ordering():
    """Regenerate the Table 2 ablation and check the quality ordering."""
    table = figures.table2(scale=Scale.TINY, dataset="syn-n")
    print()
    print(table.render())
    values = dict(zip(table.column("oracle"), table.column("influence_value")))
    # The (1/2 − β) oracles should not lose to the 1/4 swap oracles by much.
    best_swap = max(values["blog_watch"], values["mkc"])
    assert values["sieve"] >= 0.8 * best_swap
    assert values["threshold"] >= 0.8 * best_swap
