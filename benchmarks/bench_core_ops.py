"""Micro-benchmarks for the hot core operations.

These bound the per-action costs that the complexity analysis talks about:
window slides, diffusion-forest resolution, window-index add/remove cycles,
and a single checkpoint's SSM update.
"""

from repro.core.checkpoint import Checkpoint, OracleSpec
from repro.core.diffusion import DiffusionForest
from repro.core.influence_index import WindowInfluenceIndex
from repro.core.window import SlidingWindow
from repro.influence.functions import CardinalityInfluence


def test_window_slide_per_action(benchmark, tiny_stream, tiny_config):
    """Deque bookkeeping for the full stream."""

    def run():
        window = SlidingWindow(tiny_config.window_size)
        for action in tiny_stream:
            window.slide([action])
        return len(window)

    assert benchmark.pedantic(run, rounds=5, iterations=1) > 0


def test_forest_resolution_per_action(benchmark, tiny_stream):
    """Ancestor resolution for the full stream."""

    def run():
        forest = DiffusionForest()
        for action in tiny_stream:
            forest.add(action)
        return forest.actions_seen

    assert benchmark.pedantic(run, rounds=5, iterations=1) > 0


def test_window_index_add_remove_cycle(benchmark, tiny_stream, tiny_config):
    """Exact influence index maintenance over the full stream."""

    def run():
        forest = DiffusionForest()
        index = WindowInfluenceIndex()
        records = []
        for action in tiny_stream:
            record = forest.add(action)
            records.append(record)
            index.add(record)
            if len(records) > tiny_config.window_size:
                index.remove(records.pop(0))
        return index.pair_count()

    assert benchmark.pedantic(run, rounds=3, iterations=1) > 0


def test_single_checkpoint_ssm_update(benchmark, tiny_stream):
    """SieveStreaming checkpoint absorbing 800 actions via SSM."""
    prefix = tiny_stream[:800]

    def run():
        forest = DiffusionForest()
        spec = OracleSpec(
            name="sieve", k=5, func=CardinalityInfluence(),
            params={"beta": 0.3},
        )
        checkpoint = Checkpoint(1, spec)
        for action in prefix:
            checkpoint.process(forest.add(action))
        return checkpoint.value

    assert benchmark.pedantic(run, rounds=3, iterations=1) > 0


def test_ic_processing_n1000_l1_shared(benchmark, tiny_stream):
    """IC over the shared versioned index at N=1000, L=1 (the headline)."""
    from repro.core.ic import InfluentialCheckpoints

    prefix = tiny_stream[:1500]

    def run():
        ic = InfluentialCheckpoints(window_size=1000, k=5, beta=0.3)
        for action in prefix:
            ic.process([action])
        return ic.query().value

    assert benchmark.pedantic(run, rounds=2, iterations=1) > 0


def test_ic_processing_n1000_l1_reference(benchmark, tiny_stream):
    """The same workload on the per-checkpoint reference indexes."""
    from repro.core.ic import InfluentialCheckpoints

    prefix = tiny_stream[:1500]

    def run():
        ic = InfluentialCheckpoints(
            window_size=1000, k=5, beta=0.3, shared_index=False
        )
        for action in prefix:
            ic.process([action])
        return ic.query().value

    assert benchmark.pedantic(run, rounds=2, iterations=1) > 0
