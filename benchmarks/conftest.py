"""Shared benchmark fixtures: cached tiny streams and configs.

Benchmarks run the same regenerators as the CLI, restricted to one dataset
and a couple of grid points per figure so that the whole
``pytest benchmarks/ --benchmark-only`` pass completes in minutes.  Full
paper grids are a CLI invocation away::

    repro-experiments all --scale small
"""

from __future__ import annotations

import pytest

from repro.experiments.config import Scale, make_config
from repro.experiments.runner import make_stream

#: Dataset used by the figure benchmarks (SYN-N: fast-moving influences,
#: the paper's most demanding setting for SIC).
BENCH_DATASET = "syn-n"


@pytest.fixture(scope="session")
def tiny_config():
    """The TINY-scale default configuration."""
    return make_config(BENCH_DATASET, Scale.TINY)


@pytest.fixture(scope="session")
def tiny_stream(tiny_config):
    """Materialised TINY stream shared by all benchmarks."""
    return list(make_stream(tiny_config))


@pytest.fixture(scope="session")
def tiny_batches(tiny_config, tiny_stream):
    """The stream pre-split into slide batches."""
    from repro.core.stream import batched

    return [list(b) for b in batched(tiny_stream, tiny_config.slide)]
