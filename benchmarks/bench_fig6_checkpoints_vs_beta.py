"""Figure 6 regenerator benchmark: number of checkpoints over β.

Paper shape: IC constant at ⌈N/L⌉; SIC at O(log N / β), decreasing in β.
"""

from repro.experiments import figures
from repro.experiments.config import Scale

from conftest import BENCH_DATASET


def test_fig6_series_shape(benchmark):
    """Regenerate Figure 6's series (timed end to end)."""

    def sweep():
        return figures.fig5_6_7(
            scale=Scale.TINY, datasets=(BENCH_DATASET,), betas=(0.1, 0.5)
        )["fig6"]

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(table.render())
    ic_counts = table.series({"algorithm": "IC"}, "checkpoints")
    sic_counts = table.series({"algorithm": "SIC"}, "checkpoints")
    assert ic_counts[0] == ic_counts[1]  # constant in beta
    assert sic_counts[1] <= sic_counts[0]  # decreasing in beta
    assert all(s < i for s, i in zip(sic_counts, ic_counts))
