"""The space side of Figure 6: SIC's footprint vs IC's.

Figure 6 counts checkpoints; this benchmark weighs them — total influence
set entries plus oracle state — confirming that SIC's sparsity translates
into proportional memory savings, and that β controls the trade-off.  The
Figure 6 story is about the paper's *per-checkpoint* index copies, so the
comparison runs in reference mode (``shared_index=False``); a second test
weighs the default shared ``VersionedInfluenceIndex``, whose physical size
is the distinct visible pairs regardless of checkpoint count.
"""

from repro.core.ic import InfluentialCheckpoints
from repro.core.sic import SparseInfluentialCheckpoints
from repro.experiments.memory import measure_footprint


def _run(framework, batches):
    for batch in batches:
        framework.process(batch)
    return framework


def test_footprint_measurement_cost(benchmark, tiny_config, tiny_batches):
    """measure_footprint itself must be cheap (pure counting)."""
    sic = _run(
        SparseInfluentialCheckpoints(
            window_size=tiny_config.window_size, k=tiny_config.k, beta=0.3
        ),
        tiny_batches,
    )
    footprint = benchmark(measure_footprint, sic)
    assert footprint.total_entries > 0


def test_sic_vs_ic_footprint(tiny_config, tiny_batches):
    """Print and assert the Figure 6 space story (reference indexes)."""
    ic = _run(
        InfluentialCheckpoints(
            window_size=tiny_config.window_size,
            k=tiny_config.k,
            beta=0.3,
            shared_index=False,
        ),
        tiny_batches,
    )
    results = {}
    for beta in (0.1, 0.3, 0.5):
        sic = _run(
            SparseInfluentialCheckpoints(
                window_size=tiny_config.window_size,
                k=tiny_config.k,
                beta=beta,
                shared_index=False,
            ),
            tiny_batches,
        )
        results[beta] = measure_footprint(sic)
    ic_footprint = measure_footprint(ic)
    print(f"\nIC : {ic_footprint.checkpoints} ckpts, "
          f"{ic_footprint.total_entries:,} entries")
    for beta, footprint in results.items():
        ratio = footprint.ratio_to(ic_footprint)
        print(
            f"SIC(beta={beta}): {footprint.checkpoints} ckpts, "
            f"{footprint.total_entries:,} entries ({ratio:.0%} of IC)"
        )
        assert ratio < 0.75
    assert results[0.5].total_entries <= results[0.1].total_entries


def test_shared_index_footprint(tiny_config, tiny_batches):
    """The shared plane stores distinct pairs once, not per checkpoint."""
    shared = _run(
        InfluentialCheckpoints(
            window_size=tiny_config.window_size, k=tiny_config.k, beta=0.3
        ),
        tiny_batches,
    )
    reference = _run(
        InfluentialCheckpoints(
            window_size=tiny_config.window_size,
            k=tiny_config.k,
            beta=0.3,
            shared_index=False,
        ),
        tiny_batches,
    )
    shared_fp = measure_footprint(shared)
    reference_fp = measure_footprint(reference)
    print(
        f"\nshared: {shared_fp.index_entries:,} pairs vs reference "
        f"{reference_fp.index_entries:,} per-checkpoint entries"
    )
    assert shared_fp.checkpoints == reference_fp.checkpoints
    assert shared_fp.index_entries * 5 < reference_fp.index_entries
