"""The space side of Figure 6: SIC's footprint vs IC's.

Figure 6 counts checkpoints; this benchmark weighs them — total influence
set entries plus oracle state — confirming that SIC's sparsity translates
into proportional memory savings, and that β controls the trade-off.
"""

from repro.core.ic import InfluentialCheckpoints
from repro.core.sic import SparseInfluentialCheckpoints
from repro.experiments.memory import measure_footprint


def _run(framework, batches):
    for batch in batches:
        framework.process(batch)
    return framework


def test_footprint_measurement_cost(benchmark, tiny_config, tiny_batches):
    """measure_footprint itself must be cheap (pure counting)."""
    sic = _run(
        SparseInfluentialCheckpoints(
            window_size=tiny_config.window_size, k=tiny_config.k, beta=0.3
        ),
        tiny_batches,
    )
    footprint = benchmark(measure_footprint, sic)
    assert footprint.total_entries > 0


def test_sic_vs_ic_footprint(tiny_config, tiny_batches):
    """Print and assert the Figure 6 space story."""
    ic = _run(
        InfluentialCheckpoints(
            window_size=tiny_config.window_size, k=tiny_config.k, beta=0.3
        ),
        tiny_batches,
    )
    results = {}
    for beta in (0.1, 0.3, 0.5):
        sic = _run(
            SparseInfluentialCheckpoints(
                window_size=tiny_config.window_size, k=tiny_config.k, beta=beta
            ),
            tiny_batches,
        )
        results[beta] = measure_footprint(sic)
    ic_footprint = measure_footprint(ic)
    print(f"\nIC : {ic_footprint.checkpoints} ckpts, "
          f"{ic_footprint.total_entries:,} entries")
    for beta, footprint in results.items():
        ratio = footprint.ratio_to(ic_footprint)
        print(
            f"SIC(beta={beta}): {footprint.checkpoints} ckpts, "
            f"{footprint.total_entries:,} entries ({ratio:.0%} of IC)"
        )
        assert ratio < 0.75
    assert results[0.5].total_entries <= results[0.1].total_entries
