"""Figure 5 regenerator benchmark: influence value of IC vs SIC over β.

Paper shape: IC ≥ SIC everywhere, SIC within ~5% of IC, both decreasing
with β.  The benchmark times one (β, algorithm) cell; the printed table is
the figure's series for the benchmark grid.
"""

from repro.experiments import figures
from repro.experiments.config import Scale
from repro.experiments.runner import build_algorithm, make_stream, run_algorithm

from conftest import BENCH_DATASET


def test_fig5_cell_sic(benchmark, tiny_config):
    """Time one SIC run of the Figure 5 sweep (β = 0.3)."""

    def cell():
        config = tiny_config.with_overrides(beta=0.3)
        return run_algorithm(
            build_algorithm("sic", config),
            make_stream(config),
            slide=config.slide,
        ).mean_influence_value

    value = benchmark.pedantic(cell, rounds=3, iterations=1)
    assert value > 0


def test_fig5_series_shape(tiny_config):
    """Regenerate the Figure 5 series and assert the paper's shape."""
    table = figures.fig5_6_7(
        scale=Scale.TINY, datasets=(BENCH_DATASET,), betas=(0.1, 0.3, 0.5)
    )["fig5"]
    print()
    print(table.render())
    for beta in (0.1, 0.3, 0.5):
        ic = table.series({"algorithm": "IC", "beta": beta}, "influence_value")[0]
        sic = table.series({"algorithm": "SIC", "beta": beta}, "influence_value")[0]
        # SIC trades ≤ a modest quality loss for sparsity (paper: ≤5%;
        # at TINY scale we allow more slack for noise).
        assert sic >= 0.7 * ic
