"""Figure 8 regenerator benchmark: MC-spread quality of all approaches vs k.

Paper shape: Greedy/IC/SIC within ~10% of IMM; UBI close at small k but
degrading as k grows.
"""

from repro.experiments import figures
from repro.experiments.config import Scale
from repro.experiments.runner import build_algorithm, make_stream, run_algorithm

from conftest import BENCH_DATASET


def test_fig8_quality_cell(benchmark, tiny_config):
    """Time one quality-evaluated SIC run (k = 5, MC rounds = 50)."""

    def cell():
        config = tiny_config.with_overrides(k=5)
        return run_algorithm(
            build_algorithm("sic", config),
            make_stream(config),
            slide=config.slide,
            evaluate_quality=True,
            mc_rounds=50,
            quality_every=4,
        ).mean_quality

    quality = benchmark.pedantic(cell, rounds=2, iterations=1)
    assert quality and quality > 0


def test_fig8_series_shape():
    """Regenerate a Figure 8 slice and assert the quality ordering."""
    table = figures.fig8_9(
        scale=Scale.TINY,
        datasets=(BENCH_DATASET,),
        ks=(5, 25),
        algorithms=("sic", "ic", "greedy"),
        mc_rounds=50,
        quality_every=4,
    )["fig8"]
    print()
    print(table.render())
    for k in (5, 25):
        greedy = table.series({"algorithm": "GREEDY", "k": k}, "spread")[0]
        sic = table.series({"algorithm": "SIC", "k": k}, "spread")[0]
        ic = table.series({"algorithm": "IC", "k": k}, "spread")[0]
        # The checkpoint frameworks stay within a modest factor of greedy.
        assert sic >= 0.5 * greedy
        assert ic >= 0.5 * greedy
