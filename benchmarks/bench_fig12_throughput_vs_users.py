"""Figure 12 regenerator benchmark: throughput vs user-universe size |U|.

Paper shape: SIC/IC/UBI get *faster* on larger universes (sparser influence
graphs per window); Greedy/IMM slow down with |U|.
"""

from repro.experiments import figures
from repro.experiments.config import Scale


def test_fig12_sweep(benchmark):
    """Regenerate a Figure 12 slice over SYN-N (timed end to end)."""

    def sweep():
        return figures.fig12(
            scale=Scale.TINY,
            datasets=("syn-n",),
            factors=(0.5, 2.0),
            algorithms=("sic", "ic"),
        )

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(table.render())
    sic = table.series({"algorithm": "SIC"}, "throughput")
    ic = table.series({"algorithm": "IC"}, "throughput")
    # SIC dominates IC at every universe size.
    assert all(s > i for s, i in zip(sic, ic))
    # More users -> sparser windows -> SIC should not get slower by much.
    assert sic[-1] >= 0.6 * sic[0]
