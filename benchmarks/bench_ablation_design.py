"""Ablation benchmarks for the design choices called out in DESIGN.md.

1. **Shared ancestor resolution** — the DiffusionForest resolves each
   action's influencer chain once and shares the record with every
   checkpoint, versus re-walking parent pointers per checkpoint.
2. **SIC pruning rule** — the paper's two-sided (1−β) rule versus a naive
   "keep every j-th checkpoint" thinning with the same average population.
3. **CELF lazy greedy** — versus the paper's naive greedy at equal output.
"""

from repro.core.diffusion import DiffusionForest
from repro.core.greedy import greedy_seed_selection
from repro.core.influence_index import WindowInfluenceIndex
from repro.core.sic import SparseInfluentialCheckpoints
from repro.influence.functions import CardinalityInfluence


# -- 1. shared ancestor resolution ------------------------------------------

def test_shared_forest_resolution(benchmark, tiny_stream):
    """One shared resolution pass (what the frameworks actually do)."""

    def run():
        forest = DiffusionForest()
        total = 0
        for action in tiny_stream:
            total += forest.add(action).fanout
        return total

    assert benchmark.pedantic(run, rounds=3, iterations=1) > 0


def test_naive_per_checkpoint_resolution(benchmark, tiny_stream):
    """Re-walking parent chains per 'checkpoint' (8 simulated consumers)."""
    by_time = {a.time: a for a in tiny_stream}

    def walk(action):
        users = set()
        current = action
        while True:
            users.add(current.user)
            if current.is_root or current.parent not in by_time:
                break
            current = by_time[current.parent]
        return len(users)

    def run():
        total = 0
        for action in tiny_stream:
            for _consumer in range(8):  # simulated checkpoint population
                total += walk(action)
        return total

    assert benchmark.pedantic(run, rounds=1, iterations=1) > 0


# -- 2. SIC pruning rule ------------------------------------------------------

def test_sic_two_sided_pruning_quality(tiny_config, tiny_batches):
    """The paper's rule must beat naive thinning at equal sparsity."""
    sic = SparseInfluentialCheckpoints(
        window_size=tiny_config.window_size, k=tiny_config.k, beta=0.3
    )
    for batch in tiny_batches:
        sic.process(batch)
    paper_count = sic.checkpoint_count
    paper_value = sic.query().value

    # Naive thinning: IC but only instantiate every j-th checkpoint so the
    # population matches SIC's.
    from repro.core.ic import InfluentialCheckpoints

    ic = InfluentialCheckpoints(
        window_size=tiny_config.window_size, k=tiny_config.k, beta=0.3
    )
    stride = max(1, (tiny_config.window_size // tiny_config.slide) // paper_count)
    kept_batches = 0
    for i, batch in enumerate(tiny_batches):
        ic.process(batch)
        kept_batches += 1
    # Compare answers: naive thinning answers from a checkpoint up to
    # stride*L actions younger than the window -> systematically lower value.
    answers = [c.value for c in ic.checkpoints][::stride]
    naive_value = answers[0] if answers else 0.0
    print(
        f"\nSIC: {paper_count} ckpts value={paper_value:.1f} | "
        f"naive stride={stride} value={naive_value:.1f}"
    )
    assert paper_value >= 0.8 * naive_value


# -- 3. CELF vs naive greedy ---------------------------------------------------

def _window_index(tiny_stream, size):
    forest = DiffusionForest()
    index = WindowInfluenceIndex()
    records = []
    for action in tiny_stream:
        record = forest.add(action)
        records.append(record)
        index.add(record)
        if len(records) > size:
            index.remove(records.pop(0))
    return index


def test_greedy_celf(benchmark, tiny_stream, tiny_config):
    """CELF lazy greedy on the final window."""
    index = _window_index(tiny_stream, tiny_config.window_size)
    candidates = list(index.influencers())

    def run():
        return greedy_seed_selection(
            index, candidates, 25, CardinalityInfluence(), lazy=True
        )[1]

    assert benchmark.pedantic(run, rounds=5, iterations=1) > 0


def test_greedy_naive(benchmark, tiny_stream, tiny_config):
    """The paper's plain greedy on the same window (same output value)."""
    index = _window_index(tiny_stream, tiny_config.window_size)
    candidates = list(index.influencers())
    lazy_value = greedy_seed_selection(
        index, candidates, 25, CardinalityInfluence(), lazy=True
    )[1]

    def run():
        return greedy_seed_selection(
            index, candidates, 25, CardinalityInfluence(), lazy=False
        )[1]

    naive_value = benchmark.pedantic(run, rounds=3, iterations=1)
    assert naive_value == lazy_value
