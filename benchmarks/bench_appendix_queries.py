"""Appendix A benchmarks: filtered (topic/location) SIM query overhead.

The appendix claims topic/location-aware SIM is "IC/SIC over a sub-stream";
these benchmarks measure what that costs in practice: observing the full
stream while maintaining one, four, or a board of filtered queries, versus
the unfiltered baseline.
"""

import random

from repro.core.multi import MultiQueryEngine
from repro.core.sic import SparseInfluentialCheckpoints
from repro.influence.queries import FilteredSIM, TopicAwareSIM

TOPICS = ("a", "b", "c", "d")


def _topic_oracle(stream, seed=5):
    rng = random.Random(seed)
    topics = {}
    for action in stream:
        if action.is_root or action.parent not in topics:
            topics[action.time] = {rng.choice(TOPICS)}
        else:
            topics[action.time] = topics[action.parent]
    return topics


def test_unfiltered_baseline(benchmark, tiny_config, tiny_stream):
    """SIC over the raw stream (reference cost)."""

    def run():
        sic = SparseInfluentialCheckpoints(
            window_size=tiny_config.window_size, k=tiny_config.k, beta=0.3
        )
        for action in tiny_stream:
            sic.process([action])
        return sic.query().value

    assert benchmark.pedantic(run, rounds=2, iterations=1) > 0


def test_single_topic_query(benchmark, tiny_config, tiny_stream):
    """One topic query sees ~1/4 of the stream: cheaper than baseline."""
    topics = _topic_oracle(tiny_stream)

    def run():
        query = TopicAwareSIM(
            {"a"}, topics, window_size=tiny_config.window_size,
            k=tiny_config.k, batch_size=16,
        )
        for action in tiny_stream:
            query.observe(action)
        return query.query().value

    assert benchmark.pedantic(run, rounds=2, iterations=1) > 0


def test_four_topic_board(benchmark, tiny_config, tiny_stream):
    """A full per-topic board through the multi-query engine."""
    topics = _topic_oracle(tiny_stream)

    def run():
        engine = MultiQueryEngine()
        for topic in TOPICS:
            engine.add(
                topic,
                TopicAwareSIM(
                    {topic}, topics, window_size=tiny_config.window_size,
                    k=tiny_config.k, batch_size=16,
                ),
            )
        engine.process(tiny_stream)
        return sum(answer.value for answer in engine.query_all().values())

    assert benchmark.pedantic(run, rounds=2, iterations=1) > 0


def test_predicate_overhead_only(benchmark, tiny_stream):
    """An always-false filter isolates pure predicate/bookkeeping cost."""

    def run():
        query = FilteredSIM(lambda a: False, window_size=500, k=5)
        for action in tiny_stream:
            query.observe(action)
        return query.observed

    assert benchmark.pedantic(run, rounds=3, iterations=1) == len(tiny_stream)
