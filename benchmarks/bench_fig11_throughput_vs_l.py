"""Figure 11 regenerator benchmark: throughput vs slide length L.

Paper shape: IC's throughput grows ~linearly with L (⌈N/L⌉ checkpoints);
SIC stays above IC throughout.
"""

from repro.experiments import figures
from repro.experiments.config import Scale

from conftest import BENCH_DATASET


def test_fig11_sweep(benchmark):
    """Regenerate a Figure 11 slice (timed end to end)."""

    def sweep():
        return figures.fig11(
            scale=Scale.TINY,
            datasets=(BENCH_DATASET,),
            fractions=(0.01, 0.02, 0.04),
            algorithms=("sic", "ic"),
        )

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(table.render())
    ic = table.series({"algorithm": "IC"}, "throughput")
    sic = table.series({"algorithm": "SIC"}, "throughput")
    # IC throughput improves as L grows.
    assert ic[-1] > ic[0]
    # SIC stays on top for every L.
    assert all(s > i * 0.9 for s, i in zip(sic, ic))
