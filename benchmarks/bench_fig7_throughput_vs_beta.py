"""Figure 7 regenerator benchmark: throughput of IC vs SIC over β.

Paper shape: throughput grows with β for both; SIC dominates IC (up to ~8×
at the paper's scale).
"""

from repro.core.ic import InfluentialCheckpoints
from repro.core.sic import SparseInfluentialCheckpoints
from repro.experiments import figures
from repro.experiments.config import Scale

from conftest import BENCH_DATASET


def test_fig7_sic_processing(benchmark, tiny_config, tiny_batches):
    """Time SIC maintenance over the full TINY stream (β = 0.3)."""

    def run():
        sic = SparseInfluentialCheckpoints(
            window_size=tiny_config.window_size, k=tiny_config.k, beta=0.3
        )
        for batch in tiny_batches:
            sic.process(batch)
        return sic

    sic = benchmark.pedantic(run, rounds=3, iterations=1)
    assert sic.query().value > 0


def test_fig7_ic_processing(benchmark, tiny_config, tiny_batches):
    """Time IC maintenance over the same stream (the Figure 7 partner)."""

    def run():
        ic = InfluentialCheckpoints(
            window_size=tiny_config.window_size, k=tiny_config.k, beta=0.3
        )
        for batch in tiny_batches:
            ic.process(batch)
        return ic

    ic = benchmark.pedantic(run, rounds=2, iterations=1)
    assert ic.query().value > 0


def test_fig7_series_shape():
    """Regenerate Figure 7's series and assert the paper's shape."""
    table = figures.fig5_6_7(
        scale=Scale.TINY, datasets=(BENCH_DATASET,), betas=(0.1, 0.5)
    )["fig7"]
    print()
    print(table.render())
    for algorithm in ("IC", "SIC"):
        series = table.series({"algorithm": algorithm}, "throughput")
        assert series[1] > series[0]  # grows with beta
    for beta in (0.1, 0.5):
        ic = table.series({"algorithm": "IC", "beta": beta}, "throughput")[0]
        sic = table.series({"algorithm": "SIC", "beta": beta}, "throughput")[0]
        assert sic > ic
