"""Table 3 regenerator benchmark: dataset statistics.

Checks that each generated dataset reproduces the original's cascade shape
(mean depth, relative response distance) and times the generators.
"""

import pytest

from repro.datasets.surrogates import reddit_like, twitter_like
from repro.datasets.synthetic import syn_n, syn_o
from repro.experiments import figures
from repro.experiments.config import Scale

GENERATORS = {
    "reddit": reddit_like,
    "twitter": twitter_like,
    "syn-o": syn_o,
    "syn-n": syn_n,
}

#: Table 3's average cascade depth per dataset.
PAPER_DEPTH = {"reddit": 4.58, "twitter": 1.87, "syn-o": 2.5, "syn-n": 2.59}


@pytest.mark.parametrize("dataset", sorted(GENERATORS))
def test_generator_throughput(benchmark, dataset):
    """Time generating a 5K-action stream of each dataset."""
    maker = GENERATORS[dataset]

    def run():
        return sum(1 for _ in maker(n_users=1_000, n_actions=5_000, seed=7))

    count = benchmark.pedantic(run, rounds=3, iterations=1)
    assert count == 5_000


def test_table3_depth_shapes():
    """Regenerate Table 3 and compare depths against the paper."""
    table = figures.table3(scale=Scale.SMALL)
    print()
    print(table.render())
    depths = dict(zip(table.column("dataset"), table.column("avg_depth")))
    for dataset, expected in PAPER_DEPTH.items():
        assert depths[dataset] == pytest.approx(expected, rel=0.3), dataset
