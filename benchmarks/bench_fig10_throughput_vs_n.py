"""Figure 10 regenerator benchmark: throughput vs window size N.

Paper shape: all approaches slow down as N grows; SIC degrades only
logarithmically, so the IC↔SIC gap widens with N.
"""

from repro.experiments import figures
from repro.experiments.config import Scale

from conftest import BENCH_DATASET


def test_fig10_sweep(benchmark):
    """Regenerate a Figure 10 slice (timed end to end)."""

    def sweep():
        return figures.fig10(
            scale=Scale.TINY,
            datasets=(BENCH_DATASET,),
            factors=(0.5, 1.0, 2.0),
            algorithms=("sic", "ic"),
        )

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(table.render())
    sic = table.series({"algorithm": "SIC"}, "throughput")
    ic = table.series({"algorithm": "IC"}, "throughput")
    # Both decrease with N...
    assert ic[-1] < ic[0]
    # ...and SIC dominates IC at every N.
    assert all(s > i for s, i in zip(sic, ic))
    # The relative gap should not shrink as N doubles (log vs linear).
    assert sic[-1] / ic[-1] >= 0.8 * (sic[0] / ic[0])
