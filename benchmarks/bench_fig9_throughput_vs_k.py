"""Figure 9 regenerator benchmark: throughput of all approaches vs k.

Paper shape: throughput inversely related to k; SIC dominates everything
(up to 2 orders of magnitude over Greedy/IMM at paper scale).
"""

from repro.experiments import figures
from repro.experiments.config import Scale
from repro.experiments.runner import build_algorithm, make_stream, run_algorithm

from conftest import BENCH_DATASET


def test_fig9_baseline_cell_greedy(benchmark, tiny_config):
    """Time the naive-greedy baseline cell (the paper's slow recompute)."""

    def cell():
        config = tiny_config.with_overrides(k=5)
        return run_algorithm(
            build_algorithm("greedy", config),
            make_stream(config),
            slide=config.slide,
        ).throughput

    throughput = benchmark.pedantic(cell, rounds=2, iterations=1)
    assert throughput > 0


def test_fig9_series_shape():
    """Regenerate a Figure 9 slice with all five approaches (k = 5, 25)."""
    table = figures.fig8_9(
        scale=Scale.TINY,
        datasets=(BENCH_DATASET,),
        ks=(5, 25),
        algorithms=("sic", "ic", "greedy", "imm", "ubi"),
        mc_rounds=20,
        quality_every=100,
    )["fig9"]
    print()
    print(table.render())
    for k in (5, 25):
        rows = {
            algorithm: table.series({"algorithm": algorithm, "k": k}, "throughput")[0]
            for algorithm in ("SIC", "IC", "GREEDY", "IMM", "UBI")
        }
        # SIC leads IC and the recompute baselines.
        assert rows["SIC"] > rows["IC"]
        assert rows["SIC"] > rows["IMM"]
        assert rows["SIC"] > rows["UBI"]
    # Throughput decreases (weakly) with k for the checkpoint frameworks.
    sic_series = table.series({"algorithm": "SIC"}, "throughput")
    assert sic_series[1] <= sic_series[0] * 1.5
