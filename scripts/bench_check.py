#!/usr/bin/env python
"""Benchmark regression gate: fail CI when tracked throughput drops.

Compares a fresh ``bench_smoke.py`` run (typically CI's ``--quick`` run)
against the committed baseline ``BENCH_core_ops.json`` and exits non-zero
when any tracked throughput metric dropped by more than ``--tolerance``
(default 30%, generous enough for shared-runner noise while still
catching real hot-path regressions)::

    PYTHONPATH=src python scripts/bench_smoke.py --quick --output /tmp/b.json
    python scripts/bench_check.py --baseline BENCH_core_ops.json \\
        --current /tmp/b.json

Tracked metrics are every ``*_per_sec`` figure in the baseline (rates,
where higher is better; latencies and byte sizes are reported but never
gated — they scale with ``--quick``'s shorter stream) plus the floor
*ratios* in :data:`GATED_SUFFIXES` — ``shard_scaling.implied_speedup_at_s4``
(the routed-ingest pipeline bottleneck vs the unsharded engine),
``shard_scaling.routed_speedup_vs_broadcast`` (what routing the stream
bought over broadcasting it), and
``ic_n1000_l1.speedup_vs_object_plane``.  Those live in sections whose
raw sub-second rates are too noisy to gate, but the ratio is the signal:
it cancels the machine speed and still catches a scaling or kernel
regression.  A tracked metric missing from the current run fails the gate
too: silently losing coverage is itself a regression.

``--load-gen REPORT`` additionally holds a ``scripts/load_gen.py``
``--output`` report against the baseline's ``service_ingest`` rate — the
sharded service smoke reuses it as an end-to-end throughput floor.
"""

from __future__ import annotations

import argparse
import json
import pathlib

__all__ = ["collect_rates", "compare", "main"]

#: Metric-name suffixes the gate tracks: throughput rates plus the floor
#: ratios whose sections are otherwise too noisy to gate rate-by-rate
#: (the ratio cancels machine speed, so it stays comparable).
GATED_SUFFIXES = (
    "_per_sec",
    "implied_speedup_at_s4",
    "routed_speedup_vs_broadcast",
    "speedup_vs_object_plane",
)


def collect_rates(
    document: dict, prefix: str = "", suffixes=GATED_SUFFIXES
) -> dict:
    """Flatten every tracked metric into ``{dotted.path: value}``."""
    rates = {}
    for key, value in document.items():
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            rates.update(collect_rates(value, path, suffixes))
        elif isinstance(value, (int, float)) and any(
            key.endswith(suffix) for suffix in suffixes
        ):
            rates[path] = float(value)
    return rates


#: Noise-exempt sections: *rates* derived from sub-second timings whose
#: run-to-run swing exceeds any reasonable tolerance.  They stay in the
#: report but never fail CI — only their floor ratios (see
#: :data:`GATED_SUFFIXES`) are gated.
DEFAULT_IGNORED_PREFIXES = ("shard_scaling", "chaos_recovery")


def _is_gated(path: str, ignored, hard_ignored) -> bool:
    """Whether a tracked metric can fail the gate.

    ``hard_ignored`` prefixes exempt everything beneath them (used for
    hardware-dependent sections under a CPU-count mismatch); ``ignored``
    prefixes exempt only the noisy raw rates, not the floor ratios.
    """
    if any(path.startswith(prefix) for prefix in hard_ignored):
        return False
    if path.endswith("_per_sec") and any(
        path.startswith(prefix) for prefix in ignored
    ):
        return False
    return True


def compare(
    baseline: dict,
    current: dict,
    tolerance: float,
    ignored_prefixes=DEFAULT_IGNORED_PREFIXES,
    hard_ignored_prefixes=(),
) -> list:
    """Regressions of ``current`` vs ``baseline``: ``[(path, base, now), ...]``.

    A metric regresses when it is missing from the current run or when
    ``now < base * (1 - tolerance)``.  Metrics only present in the current
    run never fail the gate (new coverage is welcome before the baseline
    is refreshed).  Raw rates under ``ignored_prefixes`` are reported but
    never gated — their floor ratios still are — while everything under
    ``hard_ignored_prefixes`` is fully exempt.
    """
    baseline_rates = collect_rates(baseline)
    current_rates = collect_rates(current)
    ignored = tuple(ignored_prefixes)
    hard_ignored = tuple(hard_ignored_prefixes)
    if baseline.get("cpus") != current.get("cpus"):
        # The sharded socket rate is a hardware property (a 4-shard
        # process engine on 1 CPU runs *below* the single rate; on 4+
        # cores above it).  Across machines with different core counts
        # the comparison is meaningless, so it is only gated like-for-like.
        hard_ignored += ("service_ingest_sharded",)
    regressions = []
    for path, base in sorted(baseline_rates.items()):
        if not _is_gated(path, ignored, hard_ignored):
            continue
        now = current_rates.get(path)
        if now is None:
            regressions.append((path, base, None))
        elif now < base * (1.0 - tolerance):
            regressions.append((path, base, now))
    return regressions


def main(argv=None) -> int:
    """Run the gate; returns the process exit code (0 = no regression)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_core_ops.json",
        help="committed benchmark baseline (default: repo BENCH_core_ops.json)",
    )
    parser.add_argument(
        "--current",
        type=pathlib.Path,
        default=None,
        help="fresh bench_smoke.py report to hold against the baseline",
    )
    parser.add_argument(
        "--load-gen",
        type=pathlib.Path,
        default=None,
        help="a load_gen.py --output report; its actions_per_sec is held "
        "against the baseline's service_ingest rate",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional drop before the gate fails (default 0.30)",
    )
    args = parser.parse_args(argv)
    if args.current is None and args.load_gen is None:
        parser.error("nothing to check: pass --current and/or --load-gen")
    if not 0.0 <= args.tolerance < 1.0:
        parser.error(f"tolerance must be in [0, 1), got {args.tolerance}")

    baseline = json.loads(args.baseline.read_text())
    failed = False

    if args.current is not None:
        current = json.loads(args.current.read_text())
        hard_ignored = ()
        if baseline.get("cpus") != current.get("cpus"):
            hard_ignored = ("service_ingest_sharded",)
        regressions = compare(
            baseline,
            current,
            args.tolerance,
            hard_ignored_prefixes=hard_ignored,
        )
        tracked = collect_rates(baseline)
        current_rates = collect_rates(current)
        print(
            f"bench gate: {len(tracked)} tracked rates, tolerance "
            f"{args.tolerance:.0%} (baseline {args.baseline})"
        )
        for path, base in sorted(tracked.items()):
            now = current_rates.get(path)
            status = "MISSING" if now is None else f"{now:>12,.1f}"
            if not _is_gated(path, DEFAULT_IGNORED_PREFIXES, hard_ignored):
                marker = "  (not gated)"
            elif (path, base, now) in regressions:
                marker = "  !! REGRESSION"
            else:
                marker = ""
            print(f"  {path:<55} {base:>12,.1f} -> {status}{marker}")
        if regressions:
            failed = True
            print(f"FAIL: {len(regressions)} tracked rate(s) regressed >30%"
                  if args.tolerance == 0.30
                  else f"FAIL: {len(regressions)} tracked rate(s) regressed")

    if args.load_gen is not None:
        report = json.loads(args.load_gen.read_text())
        rate = float(report["actions_per_sec"])
        base = float(baseline["service_ingest"]["actions_per_sec"])
        floor = base * (1.0 - args.tolerance)
        verdict = "ok" if rate >= floor else "REGRESSION"
        print(
            f"load_gen service rate: {rate:,.1f} actions/s vs baseline "
            f"{base:,.1f} (floor {floor:,.1f}) -> {verdict}"
        )
        if rate < floor:
            failed = True

    if failed:
        print("bench gate failed")
        return 1
    print("bench gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
