#!/usr/bin/env python
"""Load generator for the serving plane: hammer a ``repro-stream serve``.

Generates a synthetic action stream and pushes it over the ingest line
protocol, then reports sustained throughput and the server's final board::

    # terminal 1
    PYTHONPATH=src python -m repro.cli serve --window 1000 -k 5 --slide 50

    # terminal 2
    PYTHONPATH=src python scripts/load_gen.py --port 7077 -n 20000

The generator ends with a ``sync`` barrier, so the reported rate covers
everything through the last slide's processing — it measures the system
(socket + coalescing + engine), not just the client's send loop.

The report uses the same JSON shape as ``bench_smoke.py``'s
``service_ingest`` section (``actions``/``seconds``/``actions_per_sec``/
``slides``/``query_value``), so ``scripts/bench_check.py`` can hold a live
run against the committed baseline; ``--seed`` makes runs reproducible and
``--output`` writes the report to a file for the CI gate.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.datasets.surrogates import reddit_like, twitter_like  # noqa: E402
from repro.datasets.synthetic import syn_n, syn_o  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

_GENERATORS = {
    "reddit": reddit_like,
    "twitter": twitter_like,
    "syn-o": syn_o,
    "syn-n": syn_n,
}


def main(argv=None):
    """Run the load generator; prints a JSON report to stdout."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7077)
    parser.add_argument("--dataset", choices=sorted(_GENERATORS), default="syn-n")
    parser.add_argument("-n", "--actions", type=int, default=10_000)
    parser.add_argument("-u", "--users", type=int, default=2_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--offset",
        type=int,
        default=0,
        help="shift action times by this much (continue an earlier run "
        "against a server that already ingested `offset` actions)",
    )
    parser.add_argument(
        "--chunk", type=int, default=256, help="lines per socket write"
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=0,
        help="send one JSON array of N actions per line (the batched wire "
        "format) instead of one action per line; 0 = unbatched",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        help="also write the JSON report to this file (for bench_check.py)",
    )
    args = parser.parse_args(argv)

    actions = list(
        _GENERATORS[args.dataset](
            n_users=args.users, n_actions=args.actions, seed=args.seed
        )
    )
    if args.offset:
        from repro.core.actions import ROOT, Action

        actions = [
            Action(
                time=a.time + args.offset,
                user=a.user,
                parent=a.parent if a.parent == ROOT else a.parent + args.offset,
            )
            for a in actions
        ]

    client = ServiceClient(args.host, args.port, timeout=120.0)
    health = client.wait_healthy()
    started = time.perf_counter()
    if args.batch > 0:
        summary = client.send_batch(actions, batch=args.batch, sync=True)
    else:
        summary = client.ingest(actions, sync=True, chunk=args.chunk)
    elapsed = time.perf_counter() - started

    board = {}
    for name in health["queries"]:
        answer = client.topk(name)
        board[name] = {
            "time": answer["time"],
            "value": answer["value"],
            "seeds": answer["seeds"],
        }
    first = board[min(board)] if board else {"value": 0.0}
    # Mirrors bench_smoke.py's service_ingest shape so the CI regression
    # gate (scripts/bench_check.py) can consume either report.
    report = {
        "actions": len(actions),
        "batch": args.batch,
        "seed": args.seed,
        "seconds": round(elapsed, 3),
        "actions_per_sec": round(len(actions) / elapsed, 1),
        "slides": summary["slide"],
        "query_value": first["value"],
        "accepted": summary["accepted"],
        "dropped_stale": summary["dropped_stale"],
        "rejected": summary["rejected"],
        "board": board,
    }
    print(json.dumps(report, indent=2))
    if args.output is not None:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
    return report


if __name__ == "__main__":
    main()
