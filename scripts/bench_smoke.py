#!/usr/bin/env python
"""Smoke benchmark: track the hot-path perf trajectory PR-over-PR.

Runs the same workloads as ``benchmarks/bench_core_ops.py`` and
``benchmarks/bench_fig7_throughput_vs_beta.py`` on the TINY scale, plus the
headline shared-vs-reference comparison (IC at N=1000, L=1), and writes the
results to ``BENCH_core_ops.json`` at the repository root so successive PRs
leave a comparable perf record::

    PYTHONPATH=src python scripts/bench_smoke.py [--quick] [--output PATH]

Reported figures:

* ``ic_n1000_l1`` — actions/sec of IC (sieve, k=5, β=0.3) over a syn-n
  stream with window 1000 and slide 1, for the shared
  ``VersionedInfluenceIndex`` data plane and the per-checkpoint reference
  (``shared_index=False``), plus the speedup ratio;
* ``ic_n1000_l5`` — the same workload at slide 5, comparing the batched
  dispatch plane (one merged ``process_batch`` per checkpoint per slide)
  against unbatched per-delta delivery (``batch_feeds=False``);
* ``fig7_tiny`` — IC and SIC throughput at the TINY preset (β=0.3);
* ``core_ops`` — per-action costs of the window index cycle and a single
  checkpoint's SSM update;
* ``memory`` — peak index entries: shared distinct pairs vs the reference
  sum of per-checkpoint suffix sizes on the same stream;
* ``snapshot_restore`` — persistence-plane costs at N=1000: snapshot
  write, snapshot-only restore, and WAL-tail replay, so the durability
  overhead stays visible in the perf trajectory;
* ``service_ingest`` — sustained socket ingest through the serving plane
  (asyncio server + line protocol + coalescing ingest loop) on the IC
  N=1000 workload, measured client-side through a ``sync`` barrier so the
  rate covers processing, not just transport;
* ``service_ingest_sharded`` — the same socket workload with the write
  plane split over 4 influencer-partitioned shard engines in forked
  worker processes (``repro.sharding``) on the legacy *broadcast* ingest
  (every shard consumes the whole stream), plus the speedup over the
  single-shard rate.  On single-core runners (the report records
  ``cpus``) the ratio mostly measures dispatch overhead — the parallel
  win needs >= 4 cores;
* ``service_ingest_sharded_routed`` — the same sharded socket workload on
  *routed* ingest: the facade resolves each slide once and sends every
  shard only its owned influence records, so per-shard work shrinks with
  S instead of replicating;
* ``shard_scaling`` — the hardware-independent scaling witness for the
  routed ingest plane.  The unsharded engine is timed against the routed
  pipeline's two stages: the facade's resolve+partition pass (stream-
  global, runs once) and each shard's apply pass over only its routed
  records.  ``implied_speedup_at_s4`` = single seconds / max(resolver
  seconds, slowest shard apply seconds) — the pipeline bottleneck an
  otherwise-idle 4-core machine would see, measurable even on 1 CPU.
  The broadcast-era numbers (each shard consuming the full stream and
  discarding unowned pairs) are kept under ``broadcast_*`` keys, and
  ``routed_speedup_vs_broadcast`` is the gated ratio of the two
  bottlenecks;
* ``chaos_recovery`` — the supervision-plane cost: a scripted SIGKILL of
  one process-backend shard mid-stream, reporting the time the in-place
  heal took (restore + WAL-tail replay + suffix redelivery), the degraded
  window, and whether the final answer converged to the fault-free run.
  Reported but never gated (sub-second timings on shared runners);
* ``observability_overhead`` — the ``service_ingest`` workload with the
  flight recorder + sampling profiler fully on vs fully off, reporting
  the relative throughput cost (the DESIGN.md contract note: single-digit
  percent).  Keys deliberately avoid the gated ``_per_sec`` suffix —
  run-to-run noise on a shared runner exceeds the effect being measured.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.core.diffusion import DiffusionForest  # noqa: E402
from repro.core.ic import InfluentialCheckpoints  # noqa: E402
from repro.core.influence_index import WindowInfluenceIndex  # noqa: E402
from repro.core.sic import SparseInfluentialCheckpoints  # noqa: E402
from repro.core.checkpoint import Checkpoint, OracleSpec  # noqa: E402
from repro.core.stream import batched  # noqa: E402
from repro.experiments.config import Scale, make_config  # noqa: E402
from repro.experiments.memory import measure_footprint  # noqa: E402
from repro.experiments.runner import make_stream  # noqa: E402
from repro.influence.functions import CardinalityInfluence  # noqa: E402


def time_framework(framework, batches):
    """Drive ``framework`` over ``batches``; return (elapsed, framework)."""
    started = time.perf_counter()
    for batch in batches:
        framework.process(batch)
    return time.perf_counter() - started, framework


def bench_ic_n1000_l1(stream, n_actions, repeats=2):
    """The acceptance workload: IC, window 1000, slide 1, three planes.

    ``shared`` is the default engine (shared index + columnar oracle
    kernel), ``object`` pins the shared index to per-checkpoint object
    oracles (``columnar=False``), and ``reference`` is the per-checkpoint
    index copy mode.  Each mode reports its best of ``repeats`` runs
    (scheduler noise on a ~10 s single-shot run can swing throughput by
    >10%).
    """
    actions = stream[:n_actions]
    batches = [[a] for a in actions]
    results = {}
    modes = (
        ("shared", True, None),
        ("object", True, False),
        ("reference", False, None),
    )
    for label, shared, columnar in modes:
        best = None
        for _ in range(repeats):
            elapsed, ic = time_framework(
                InfluentialCheckpoints(
                    window_size=1000,
                    k=5,
                    beta=0.3,
                    shared_index=shared,
                    columnar=columnar,
                ),
                batches,
            )
            if best is None or elapsed < best:
                best = elapsed
        elapsed = best
        footprint = measure_footprint(ic)
        results[label] = {
            "seconds": round(elapsed, 3),
            "actions_per_sec": round(len(actions) / elapsed, 1),
            "index_entries": footprint.index_entries,
            "checkpoints": footprint.checkpoints,
            "query_value": ic.query().value,
        }
    # NB: "reference" is the in-tree per-checkpoint mode, which already
    # benefits from the oracle fast paths; the original seed implementation
    # measured ~84 actions/s on this workload (see CHANGES.md).
    results["speedup_vs_reference_mode"] = round(
        results["shared"]["actions_per_sec"]
        / results["reference"]["actions_per_sec"],
        2,
    )
    results["speedup_vs_object_plane"] = round(
        results["shared"]["actions_per_sec"]
        / results["object"]["actions_per_sec"],
        2,
    )
    return results


def bench_ic_n1000_l5(stream, n_actions, repeats=3):
    """The batching workload: IC at slide 5, batched vs per-delta feeds.

    The two modes differ by a few percent, which single-shot timings can
    invert under scheduler noise; each mode reports its best of
    ``repeats`` runs.
    """
    actions = stream[:n_actions]
    batches = [actions[i : i + 5] for i in range(0, len(actions), 5)]
    results = {}
    for label, batch_feeds in (("batched", True), ("unbatched", False)):
        best = None
        for _ in range(repeats):
            elapsed, ic = time_framework(
                InfluentialCheckpoints(
                    window_size=1000, k=5, beta=0.3, batch_feeds=batch_feeds
                ),
                batches,
            )
            if best is None or elapsed < best:
                best = elapsed
        results[label] = {
            "seconds": round(best, 3),
            "actions_per_sec": round(len(actions) / best, 1),
            "query_value": ic.query().value,
        }
    # NB: both modes share the merged-delta dispatch plane; the PR 1
    # per-event dispatch measured ~2500 actions/s on this workload (see
    # CHANGES.md), so the trajectory win lives in this section's absolute
    # numbers rather than the batched/unbatched ratio.
    results["speedup_vs_unbatched"] = round(
        results["batched"]["actions_per_sec"]
        / results["unbatched"]["actions_per_sec"],
        2,
    )
    return results


def bench_fig7_tiny(config, batches):
    """IC and SIC maintenance throughput at the TINY preset (β = 0.3)."""
    results = {}
    for name, maker in (
        (
            "ic",
            lambda: InfluentialCheckpoints(
                window_size=config.window_size, k=config.k, beta=0.3
            ),
        ),
        (
            "sic",
            lambda: SparseInfluentialCheckpoints(
                window_size=config.window_size, k=config.k, beta=0.3
            ),
        ),
    ):
        elapsed, framework = time_framework(maker(), batches)
        total = sum(len(b) for b in batches)
        footprint = measure_footprint(framework)
        results[name] = {
            "seconds": round(elapsed, 3),
            "actions_per_sec": round(total / elapsed, 1),
            "checkpoints": footprint.checkpoints,
            "index_entries": footprint.index_entries,
            "query_value": framework.query().value,
        }
    return results


def bench_core_ops(stream, config):
    """Per-action costs of the remaining core ops (bench_core_ops.py twins)."""
    results = {}

    started = time.perf_counter()
    forest = DiffusionForest()
    index = WindowInfluenceIndex()
    records = []
    for action in stream:
        record = forest.add(action)
        records.append(record)
        index.add(record)
        if len(records) > config.window_size:
            index.remove(records.pop(0))
    elapsed = time.perf_counter() - started
    results["window_index_cycle"] = {
        "seconds": round(elapsed, 3),
        "actions_per_sec": round(len(stream) / elapsed, 1),
        "peak_pairs": index.pair_count(),
    }

    prefix = stream[:800]
    started = time.perf_counter()
    forest = DiffusionForest()
    spec = OracleSpec(
        name="sieve", k=5, func=CardinalityInfluence(), params={"beta": 0.3}
    )
    checkpoint = Checkpoint(1, spec)
    for action in prefix:
        checkpoint.process(forest.add(action))
    elapsed = time.perf_counter() - started
    results["single_checkpoint_ssm"] = {
        "seconds": round(elapsed, 3),
        "actions_per_sec": round(len(prefix) / elapsed, 1),
        "value": checkpoint.value,
    }
    return results


def bench_snapshot_restore(stream, n_actions):
    """Persistence-plane costs on the N=1000 workload (IC sieve k=5 β=0.3).

    Reports, for an engine snapshotted every 500 slides:

    * ``snapshot_write`` — seconds and bytes of one full-state snapshot;
    * ``restore_snapshot_only`` — reopening right after a snapshot
      (zero-replay warm restart);
    * ``restore_with_wal_tail`` — reopening after a simulated crash with a
      WAL tail behind the last snapshot, plus the per-slide replay rate.

    fsync is disabled so the figures measure the software path, not the
    test machine's disk sync latency.
    """
    import shutil
    import tempfile

    from repro.persistence.engine import RecoverableEngine

    actions = stream[:n_actions]
    batches = [[a] for a in actions]

    def factory():
        return InfluentialCheckpoints(window_size=1000, k=5, beta=0.3)

    results = {}
    root = pathlib.Path(tempfile.mkdtemp(prefix="bench-snapshot-"))
    try:
        state_dir = root / "state"
        engine = RecoverableEngine.open(
            state_dir, factory, snapshot_every=500, fsync=False
        )
        for batch in batches:
            engine.process(batch)
        started = time.perf_counter()
        engine.snapshot()
        write_elapsed = time.perf_counter() - started
        snapshot_path = engine.store.snapshots.path_for(len(batches))
        results["snapshot_write"] = {
            "seconds": round(write_elapsed, 4),
            "bytes": snapshot_path.stat().st_size,
        }
        engine.close(snapshot=False)

        started = time.perf_counter()
        warm = RecoverableEngine.open(state_dir, factory, fsync=False)
        restore_elapsed = time.perf_counter() - started
        results["restore_snapshot_only"] = {
            "seconds": round(restore_elapsed, 4),
            "replayed_slides": warm.replayed_slides,
        }
        warm.close(snapshot=False)

        # Crash with a WAL tail: snapshot exactly at len - 500, then a
        # snapshot-free tail of 500 slides (the cadence equals the split
        # point, so no later slide hits it again within the stream).
        tail_dir = root / "tail"
        split = max(len(batches) - 500, 1)
        doomed = RecoverableEngine.open(
            tail_dir, factory, snapshot_every=split, fsync=False
        )
        for batch in batches:
            doomed.process(batch)
        doomed.close(snapshot=False)
        started = time.perf_counter()
        recovered = RecoverableEngine.open(tail_dir, factory, fsync=False)
        tail_elapsed = time.perf_counter() - started
        results["restore_with_wal_tail"] = {
            "seconds": round(tail_elapsed, 4),
            "replayed_slides": recovered.replayed_slides,
            "replay_slides_per_sec": round(
                recovered.replayed_slides / tail_elapsed, 1
            ),
        }
        recovered.close(snapshot=False)
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return results


def bench_service_ingest(stream, n_actions):
    """Sustained socket ingest on the N=1000 IC workload (sieve k=5 β=0.3).

    Runs a full in-process server (thread-hosted event loop), streams the
    actions over a real TCP connection with a final ``sync`` barrier, and
    reports end-to-end actions/second plus the slide count and published
    answer — the serving-plane counterpart of ``ic_n1000_l1``.  The ingest
    loop coalesces slides of 50, so the engine runs in its batched regime.
    """
    from repro.persistence.engine import RecoverableEngine
    from repro.service.client import ServiceClient
    from repro.service.config import ServiceConfig
    from repro.service.runner import ServiceRunner

    actions = stream[:n_actions]
    engine = RecoverableEngine.open(
        None, lambda: InfluentialCheckpoints(window_size=1000, k=5, beta=0.3)
    )
    config = ServiceConfig(
        port=0, slide=50, flush_interval=60.0, queue_capacity=8192
    )
    with ServiceRunner(engine, config) as runner:
        client = ServiceClient("127.0.0.1", runner.port, timeout=300.0)
        client.wait_healthy()
        started = time.perf_counter()
        summary = client.ingest(actions, sync=True)
        elapsed = time.perf_counter() - started
        answer = client.topk("main")
        _, metrics = client.http_get("/metrics")
    slide_seconds = metrics["telemetry"]["metrics"]["repro_slide_seconds"]
    return {
        "actions": len(actions),
        "slide": 50,
        "seconds": round(elapsed, 3),
        "actions_per_sec": round(len(actions) / elapsed, 1),
        "slides": summary["slide"],
        "query_value": answer["value"],
        # Informational (not gated): per-slide latency digest from the
        # telemetry plane's own histogram.
        "slide_p50_ms": round(slide_seconds["p50"] * 1000.0, 3),
        "slide_p99_ms": round(slide_seconds["p99"] * 1000.0, 3),
    }


def bench_service_ingest_sharded(stream, n_actions, shards=4, routed=False):
    """Socket ingest with the write plane sharded over worker processes.

    Identical client workload to :func:`bench_service_ingest`, but the
    served engine is a ``ShardedEngine``.  With ``routed=False`` the
    stream is broadcast to ``shards`` forked workers, each indexing only
    its owned influencers; with ``routed=True`` the facade resolves each
    slide once and ships every worker only its owned influence records.
    Every slide publishes a merge-on-read answer board either way.
    """
    from repro.service.client import ServiceClient
    from repro.service.config import ServiceConfig
    from repro.service.runner import ServiceRunner
    from repro.sharding.engine import ShardedEngine

    actions = stream[:n_actions]
    engine = ShardedEngine.open(
        lambda assignment=None: InfluentialCheckpoints(
            window_size=1000, k=5, beta=0.3, shard=assignment
        ),
        shards,
        backend="process",
        routed=routed,
    )
    config = ServiceConfig(
        port=0, slide=50, flush_interval=60.0, queue_capacity=8192,
        shards=shards, shard_backend="process",
    )
    with ServiceRunner(engine, config) as runner:
        client = ServiceClient("127.0.0.1", runner.port, timeout=300.0)
        client.wait_healthy()
        started = time.perf_counter()
        summary = client.ingest(actions, sync=True)
        elapsed = time.perf_counter() - started
        answer = client.topk("main")
    return {
        "actions": len(actions),
        "slide": 50,
        "shards": shards,
        "backend": "process",
        "ingest": "routed" if routed else "broadcast",
        "seconds": round(elapsed, 3),
        "actions_per_sec": round(len(actions) / elapsed, 1),
        "slides": summary["slide"],
        "query_value": answer["value"],
    }


def bench_shard_scaling(stream, n_actions, shards=4):
    """Per-shard work reduction: the scaling witness that needs no cores.

    Runs the unsharded IC engine over the stream, then both sharded
    ingest planes on the same batches:

    * **routed** (the default ingest): one facade pass resolves each
      slide through the diffusion forest and partitions the influence
      records by influencer owner, then each shard applies only its
      routed share.  Resolver and shards pipeline, so the bottleneck is
      ``max(resolver seconds, slowest shard apply seconds)`` and
      ``implied_speedup_at_s4 = single seconds / bottleneck`` — the
      ingest speedup S parallel workers would reach on idle cores,
      honest on any machine, including single-CPU CI runners;
    * **broadcast** (legacy): each shard engine standalone consumes the
      *whole* stream and discards unowned pairs — full forest/window
      bookkeeping replicated S times.  Kept under ``broadcast_*`` keys so
      ``routed_speedup_vs_broadcast`` (the gated ratio of the two
      bottlenecks) records what the routing redesign bought.

    Both planes run the load-aware :class:`HeatPartitioner` (warmed on
    the measured stream's influence pairs) — per-shard work, not just the
    stream, is what must balance for the bottleneck to shrink with S.

    Two regimes are reported: the per-slide-overhead-bound ``l1`` (one
    checkpoint opened per action — the kernel's fixed slide cost is
    replicated on every shard and caps the ratio) and the service plane's
    coalesced ``l50`` (20 checkpoints, where the oracle work dominates
    and partitions well).  The section's *top-level*
    ``implied_speedup_at_s4``/``routed_speedup_vs_broadcast`` are the
    ``l50`` figures — the regime the serving plane actually runs — and
    are the gated witness of the routing redesign.
    """
    from repro.core.resolve import SlideResolver, partition_slide
    from repro.sharding.partition import (
        HeatPartitioner,
        ShardAssignment,
        influencer_heat,
    )

    def build(assignment=None):
        return InfluentialCheckpoints(
            window_size=1000, k=5, beta=0.3, shard=assignment
        )

    def measure(batches, repeats):
        def best_of(make):
            best = None
            for _ in range(repeats):
                elapsed, framework = time_framework(make(), batches)
                if best is None or elapsed < best[0]:
                    best = (elapsed, framework)
            return best

        total = sum(len(b) for b in batches)
        single_elapsed, single = best_of(build)
        partitioner = HeatPartitioner(
            shards, influencer_heat(a for batch in batches for a in batch)
        )

        # Broadcast: each shard standalone over the full stream.
        broadcast_seconds = []
        for shard in range(shards):
            assignment = ShardAssignment(partitioner, shard)
            elapsed, _framework = best_of(lambda: build(assignment))
            broadcast_seconds.append(round(elapsed, 4))
        broadcast_bottleneck = max(broadcast_seconds)

        # Routed stage 1: the facade's resolve+partition pass.
        resolver_elapsed = None
        routed_parts = None
        for _ in range(repeats):
            resolver = SlideResolver()
            started = time.perf_counter()
            parts = [
                partition_slide(resolver.resolve(batch), partitioner)
                for batch in batches
            ]
            elapsed = time.perf_counter() - started
            if resolver_elapsed is None or elapsed < resolver_elapsed:
                resolver_elapsed, routed_parts = elapsed, parts

        # Routed stage 2: each shard applies only its routed records.
        apply_seconds = []
        for shard in range(shards):
            best = None
            for _ in range(repeats):
                framework = build(ShardAssignment(partitioner, shard))
                started = time.perf_counter()
                for slide_parts in routed_parts:
                    framework.apply_resolved(slide_parts[shard])
                elapsed = time.perf_counter() - started
                if best is None or elapsed < best:
                    best = elapsed
            apply_seconds.append(round(best, 4))
        routed_bottleneck = max(resolver_elapsed, max(apply_seconds))

        return {
            "shards": shards,
            "single_seconds": round(single_elapsed, 4),
            "single_actions_per_sec": round(total / single_elapsed, 1),
            "resolver_seconds": round(resolver_elapsed, 4),
            "shard_apply_seconds": apply_seconds,
            "max_shard_apply_seconds": round(max(apply_seconds), 4),
            "routed_bottleneck_seconds": round(routed_bottleneck, 4),
            "implied_speedup_at_s4": round(
                single_elapsed / routed_bottleneck, 2
            ),
            "broadcast_shard_seconds": broadcast_seconds,
            "broadcast_max_shard_seconds": round(broadcast_bottleneck, 4),
            "broadcast_implied_speedup": round(
                single_elapsed / broadcast_bottleneck, 2
            ),
            "routed_speedup_vs_broadcast": round(
                broadcast_bottleneck / routed_bottleneck, 2
            ),
            "query_value": single.query().value,
        }

    actions = stream[:n_actions]
    # L=1 is slow per action; half the stream keeps the section bounded
    # while still covering a full window plus steady-state slides.
    # best-of-N: the gated implied-speedup ratio divides two timings, so
    # single-shot scheduler noise on a shared runner hits it twice.
    l1_actions = actions[: max(len(actions) // 2, 1)]
    report = {
        "l1": measure([[a] for a in l1_actions], repeats=2),
        "l50": measure(
            [actions[i : i + 50] for i in range(0, len(actions), 50)],
            repeats=4,
        ),
    }
    # The canonical gated witness: the serving plane's coalesced regime.
    report["implied_speedup_at_s4"] = report["l50"]["implied_speedup_at_s4"]
    report["routed_speedup_vs_broadcast"] = report["l50"][
        "routed_speedup_vs_broadcast"
    ]
    return report


def bench_observability_overhead(stream, n_actions):
    """Recorder + profiler cost on the service ingest path (never gated).

    Runs the :func:`bench_service_ingest` workload twice — observability
    fully off (no flight recorder, no profiler) and fully on (recorder at
    4x the default cadence plus the 100 Hz continuous profiler) — and
    reports the relative throughput cost.  ``overhead_pct`` can go
    slightly negative under scheduler noise; the contract target is
    single-digit percent, checked by eye in the perf trajectory rather
    than gated.
    """
    from repro.persistence.engine import RecoverableEngine
    from repro.service.client import ServiceClient
    from repro.service.config import ServiceConfig
    from repro.service.runner import ServiceRunner

    actions = stream[:n_actions]

    def run(**overrides):
        engine = RecoverableEngine.open(
            None,
            lambda: InfluentialCheckpoints(window_size=1000, k=5, beta=0.3),
        )
        config = ServiceConfig(
            port=0,
            slide=50,
            flush_interval=60.0,
            queue_capacity=8192,
            **overrides,
        )
        with ServiceRunner(engine, config) as runner:
            client = ServiceClient("127.0.0.1", runner.port, timeout=300.0)
            client.wait_healthy()
            started = time.perf_counter()
            client.ingest(actions, sync=True)
            return len(actions) / (time.perf_counter() - started)

    base = run(flight_recorder=False)
    full = run(flight_recorder=True, sample_interval=0.25, profile=True)
    return {
        "actions": len(actions),
        "base_aps": round(base, 1),
        "full_aps": round(full, 1),
        "sample_interval": 0.25,
        "profile_hz": 100.0,
        "overhead_pct": round((base - full) / base * 100.0, 2),
    }


def bench_chaos_recovery(stream, n_actions, shards=2):
    """Time-to-heal a SIGKILLed process-backend shard mid-stream.

    Runs :func:`repro.experiments.chaos.chaos_run` with a one-kill
    :class:`~repro.faults.FaultPlan` on the IC N=1000 workload at the
    service plane's slide of 50.  The scenario's correctness verdict
    (``identical`` + zero caller errors) is asserted — a bench run that
    failed to converge would otherwise record a meaningless timing.
    """
    import shutil
    import tempfile

    from repro.experiments.chaos import chaos_run
    from repro.faults import Fault, FaultPlan

    actions = stream[:n_actions]
    slides_total = max(len(actions) // 50, 2)
    plan = FaultPlan(
        [Fault(kind="kill", shard=0, at_slide=max(slides_total // 2, 2))],
        seed=7,
    )
    root = pathlib.Path(tempfile.mkdtemp(prefix="bench-chaos-"))
    try:
        report = chaos_run(
            lambda assignment=None: InfluentialCheckpoints(
                window_size=1000, k=5, beta=0.3, shard=assignment
            ),
            actions,
            slide=50,
            shards=shards,
            plan=plan,
            state_dir=root / "state",
            backend="process",
            snapshot_every=8,
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    assert report.identical and report.caller_errors == 0, report
    return {
        "shards": shards,
        "backend": report.backend,
        "slides": report.slides_total,
        "kill_at_slide": max(slides_total // 2, 2),
        "restarts": report.restarts,
        "heal_seconds": round(report.heal_seconds, 4),
        "degraded_windows": report.degraded_windows,
        "degraded_seconds": round(report.degraded_seconds, 4),
        "caller_errors": report.caller_errors,
        "identical": report.identical,
    }


def main(argv=None):
    """Run the smoke benchmarks and write BENCH_core_ops.json."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="halve the N=1000 stream for a faster (noisier) run",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_core_ops.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    config = make_config("syn-n", Scale.TINY)
    stream = list(make_stream(config))
    batches = [list(b) for b in batched(stream, config.slide)]

    import os

    n_actions = 1500 if args.quick else 3000
    report = {
        "scale": "tiny",
        "dataset": config.dataset,
        "cpus": os.cpu_count(),
        "ic_n1000_l1": bench_ic_n1000_l1(stream, min(n_actions, len(stream))),
        "ic_n1000_l5": bench_ic_n1000_l5(stream, min(n_actions, len(stream))),
        "fig7_tiny": bench_fig7_tiny(config, batches),
        "core_ops": bench_core_ops(stream, config),
        "snapshot_restore": bench_snapshot_restore(
            stream, min(n_actions, len(stream))
        ),
        "service_ingest": bench_service_ingest(
            stream, min(n_actions, len(stream))
        ),
        "service_ingest_sharded": bench_service_ingest_sharded(
            stream, min(n_actions, len(stream)), routed=False
        ),
        "service_ingest_sharded_routed": bench_service_ingest_sharded(
            stream, min(n_actions, len(stream)), routed=True
        ),
        "shard_scaling": bench_shard_scaling(
            stream, min(n_actions, len(stream))
        ),
        "chaos_recovery": bench_chaos_recovery(
            stream, min(n_actions, len(stream))
        ),
        "observability_overhead": bench_observability_overhead(
            stream, min(n_actions, len(stream))
        ),
    }
    for section in ("service_ingest_sharded", "service_ingest_sharded_routed"):
        report[section]["speedup_vs_single"] = round(
            report[section]["actions_per_sec"]
            / report["service_ingest"]["actions_per_sec"],
            2,
        )
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    headline = report["ic_n1000_l1"]
    print(f"IC N=1000 L=1 shared:    {headline['shared']['actions_per_sec']:>10,.1f} actions/s "
          f"({headline['shared']['index_entries']:,} index entries)")
    print(f"IC N=1000 L=1 object:    {headline['object']['actions_per_sec']:>10,.1f} actions/s "
          f"(columnar kernel off)")
    print(f"IC N=1000 L=1 reference: {headline['reference']['actions_per_sec']:>10,.1f} actions/s "
          f"({headline['reference']['index_entries']:,} index entries)")
    print(f"speedup vs in-tree reference mode: "
          f"{headline['speedup_vs_reference_mode']}x")
    l5 = report["ic_n1000_l5"]
    print(f"IC N=1000 L=5 batched:   {l5['batched']['actions_per_sec']:>10,.1f} actions/s")
    print(f"IC N=1000 L=5 unbatched: {l5['unbatched']['actions_per_sec']:>10,.1f} actions/s")
    persistence = report["snapshot_restore"]
    print(f"snapshot write:          {persistence['snapshot_write']['seconds']:>10.4f} s "
          f"({persistence['snapshot_write']['bytes']:,} bytes)")
    print(f"restore (snapshot only): {persistence['restore_snapshot_only']['seconds']:>10.4f} s")
    print(f"restore (+500 WAL tail): {persistence['restore_with_wal_tail']['seconds']:>10.4f} s "
          f"({persistence['restore_with_wal_tail']['replayed_slides']} slides replayed)")
    service = report["service_ingest"]
    print(f"service socket ingest:   {service['actions_per_sec']:>10,.1f} actions/s "
          f"({service['actions']} actions, {service['slides']} slides)")
    sharded = report["service_ingest_sharded"]
    print(f"service ingest S=4 bcast:{sharded['actions_per_sec']:>10,.1f} actions/s "
          f"({sharded['speedup_vs_single']}x vs single on {report['cpus']} cpu(s))")
    routed = report["service_ingest_sharded_routed"]
    print(f"service ingest S=4 routed:{routed['actions_per_sec']:>9,.1f} actions/s "
          f"({routed['speedup_vs_single']}x vs single on {report['cpus']} cpu(s))")
    for regime in ("l1", "l50"):
        scaling = report["shard_scaling"][regime]
        print(f"shard work split {regime:>4}:   single "
              f"{scaling['single_seconds']}s, routed bottleneck "
              f"{scaling['routed_bottleneck_seconds']}s -> implied "
              f"{scaling['implied_speedup_at_s4']}x on idle 4 cores "
              f"({scaling['routed_speedup_vs_broadcast']}x vs broadcast)")
    chaos = report["chaos_recovery"]
    print(f"chaos shard SIGKILL:     healed in {chaos['heal_seconds']}s "
          f"({chaos['restarts']} restart(s), degraded "
          f"{chaos['degraded_seconds']}s, converged={chaos['identical']})")
    obs = report["observability_overhead"]
    print(f"observability overhead:  {obs['base_aps']:,.1f} -> "
          f"{obs['full_aps']:,.1f} actions/s with recorder+profiler on "
          f"({obs['overhead_pct']}%)")
    print(f"report written to {args.output}")
    return report


if __name__ == "__main__":
    main()
