"""Regenerate every figure/table and archive the results under results/.

This is the driver behind EXPERIMENTS.md: figures 5-7 run at SMALL scale,
the five-algorithm sweeps (8-12) at TINY scale so the whole pass finishes
in well under an hour on a laptop.  Pass --scale to override both.

Usage::

    python scripts/run_experiments.py [--scale small|tiny] [--out results]
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.experiments import figures
from repro.experiments.config import Scale


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", default="results")
    parser.add_argument("--beta-scale", default="small")
    parser.add_argument("--sweep-scale", default="tiny")
    parser.add_argument(
        "--only", nargs="+", default=None,
        help="restrict to these artefacts (e.g. fig11 fig12)",
    )
    args = parser.parse_args()
    wanted = set(args.only) if args.only else None

    def skip(name):
        return wanted is not None and name not in wanted
    out = pathlib.Path(args.out)
    out.mkdir(exist_ok=True)
    beta_scale = Scale(args.beta_scale)
    sweep_scale = Scale(args.sweep_scale)

    def save(name, table):
        (out / f"{name}.csv").write_text(table.to_csv())
        (out / f"{name}.txt").write_text(table.render() + "\n")
        print(f"[{time.strftime('%H:%M:%S')}] wrote {name}", flush=True)

    start = time.time()
    if not skip("table3"):
        save("table3", figures.table3(scale=beta_scale))
    if not skip("table2"):
        save("table2", figures.table2(scale=beta_scale))

    if not (skip("fig5") and skip("fig6") and skip("fig7")):
        beta_tables = figures.fig5_6_7(scale=beta_scale)
        for name, table in beta_tables.items():
            save(name, table)

    if not (skip("fig8") and skip("fig9")):
        k_tables = figures.fig8_9(
            scale=sweep_scale, mc_rounds=100, quality_every=4
        )
        for name, table in k_tables.items():
            save(name, table)

    if not skip("fig10"):
        save("fig10", figures.fig10(scale=sweep_scale))
    if not skip("fig11"):
        # The paper's smallest L/N (0.002) maps to a slide of ~1 action at
        # reduced scale, where the per-query recompute baselines dominate
        # wall-clock; start the grid at 0.005 and extend the top instead.
        save(
            "fig11",
            figures.fig11(
                scale=sweep_scale,
                fractions=(0.005, 0.01, 0.02, 0.03, 0.04),
            ),
        )
    if not skip("fig12"):
        save("fig12", figures.fig12(scale=sweep_scale))

    print(f"total {time.time() - start:.0f}s", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
