"""Reading and writing action streams on disk.

Real deployments replay logged events — the paper's own datasets were a
Kaggle dump plus API crawls.  Two interchange formats are supported:

* **JSONL** — one object per line: ``{"t": 3, "u": 7, "p": 1}`` (``p``
  omitted or ``null`` for roots).  Self-describing, diff-friendly.
* **CSV** — header ``time,user,parent`` with an empty parent for roots.
  Loads into spreadsheets and pandas directly.

Both readers are streaming (constant memory) and validate the stream
contract on the fly.  :func:`ingest_events` converts *raw* logs — arbitrary
ids, possibly out-of-order parents — into a valid stream by renumbering, so
a scraped Reddit/Twitter export can be replayed through the frameworks with
one call.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple, Union

from repro.core.actions import Action
from repro.core.stream import validate_stream

__all__ = [
    "write_jsonl",
    "read_jsonl",
    "write_csv",
    "read_csv",
    "ingest_events",
]

PathLike = Union[str, pathlib.Path]


def write_jsonl(actions: Iterable[Action], path: PathLike) -> int:
    """Write a stream as JSON lines; returns the number of actions."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for action in actions:
            record = {"t": action.time, "u": action.user}
            if not action.is_root:
                record["p"] = action.parent
            handle.write(json.dumps(record, separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: PathLike) -> Iterator[Action]:
    """Stream actions back from a JSONL file (validates on the fly)."""

    def parse() -> Iterator[Action]:
        with open(path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    time, user = record["t"], record["u"]
                except (json.JSONDecodeError, KeyError, TypeError) as exc:
                    raise ValueError(
                        f"{path}:{line_number}: malformed record ({exc})"
                    ) from exc
                parent = record.get("p")
                if parent is None:
                    yield Action.root(time, user)
                else:
                    yield Action.response(time, user, parent)

    return validate_stream(parse())


def write_csv(actions: Iterable[Action], path: PathLike) -> int:
    """Write a stream as ``time,user,parent`` CSV; returns the count."""
    count = 0
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "user", "parent"])
        for action in actions:
            writer.writerow(
                [action.time, action.user, "" if action.is_root else action.parent]
            )
            count += 1
    return count


def read_csv(path: PathLike) -> Iterator[Action]:
    """Stream actions back from a CSV file (validates on the fly)."""

    def parse() -> Iterator[Action]:
        with open(path, "r", encoding="utf-8", newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header != ["time", "user", "parent"]:
                raise ValueError(
                    f"{path}: expected header 'time,user,parent', got {header}"
                )
            for row_number, row in enumerate(reader, start=2):
                if not row:
                    continue
                if len(row) != 3:
                    raise ValueError(
                        f"{path}:{row_number}: expected 3 columns, got {len(row)}"
                    )
                time_text, user_text, parent_text = row
                try:
                    time, user = int(time_text), int(user_text)
                except ValueError as exc:
                    raise ValueError(
                        f"{path}:{row_number}: non-integer field"
                    ) from exc
                if parent_text == "":
                    yield Action.root(time, user)
                else:
                    yield Action.response(time, user, int(parent_text))

    return validate_stream(parse())


def ingest_events(
    events: Iterable[Tuple[Hashable, Optional[Hashable]]],
) -> Tuple[List[Action], Dict[Hashable, int]]:
    """Normalise a raw event log into a valid stream.

    Args:
        events: ``(user_id, parent_event_key)`` pairs in arrival order,
            where ``parent_event_key`` is the 0-based position of the parent
            event or any previously assigned external key — here: the
            position, matching typical "reply to message #i" exports.
            User ids may be arbitrary hashables (usernames, uuids).

    Returns:
        ``(actions, user_mapping)`` — the renumbered stream plus the
        external-user-id → integer mapping used.

    Events whose parent position is unknown or in the future are demoted to
    roots (matching how a crawl with missing ancestors behaves).
    """
    user_of: Dict[Hashable, int] = {}
    actions: List[Action] = []
    for position, (raw_user, parent_pos) in enumerate(events):
        user = user_of.setdefault(raw_user, len(user_of))
        time = position + 1
        if (
            isinstance(parent_pos, int)
            and 0 <= parent_pos < position
        ):
            actions.append(Action.response(time, user, parent_pos + 1))
        else:
            actions.append(Action.root(time, user))
    return actions, user_of
