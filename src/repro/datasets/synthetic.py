"""SYN-O / SYN-N synthetic action streams (Section 6.1).

The paper synthesises two action streams over R-MAT power-law graphs of
1M–5M users.  Each of the 10M actions is performed by a randomly selected
user and is either a *post* (root) or a *follow* (response).  A follow
responds to the action at response distance ``Δ = t − t'`` drawn from an
exponential distribution:

* **SYN-O** — ``Δ ~ exp(λ = 2.0e-6)`` (mean 500,000): "old posts get more
  followers";
* **SYN-N** — ``Δ ~ exp(λ = 2.0e-4)`` (mean 5,000): "recent posts get more
  followers".

The follower graph shapes *who* responds: the performer of a follow action
is drawn from the followers of the target action's performer (uniform
fallback when there are none), so influence cascades respect the social
graph.  A follow probability of 0.6 yields the ~2.5 average cascade depth
reported in Table 3 (in steady state the mean depth is ``1/(1−p)`` for
follow probability ``p``).

Everything is deterministic under ``seed`` and scales linearly, so the same
generator serves both the paper-scale and the laptop-scale experiments.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.core.actions import Action
from repro.graphs.rmat import rmat_edges

__all__ = ["SyntheticConfig", "synthetic_stream", "syn_o", "syn_n"]

#: Paper ratio: SYN-O's mean response distance is 5% of the 10M-action
#: stream (λ = 2e-6 → mean 500,000).
SYN_O_DISTANCE_FRACTION = 0.05
#: SYN-N's mean distance is 0.05% of the stream (λ = 2e-4 → mean 5,000).
SYN_N_DISTANCE_FRACTION = 5e-4


class SyntheticConfig:
    """Parameters of one synthetic stream (documented defaults = paper's)."""

    def __init__(
        self,
        n_users: int,
        n_actions: int,
        mean_response_distance: float,
        follow_probability: float = 0.6,
        edges_per_user: float = 5.0,
        seed: Optional[int] = None,
    ):
        if n_users < 2:
            raise ValueError(f"need at least 2 users, got {n_users}")
        if n_actions <= 0:
            raise ValueError(f"need a positive action count, got {n_actions}")
        if mean_response_distance <= 0:
            raise ValueError(
                f"mean response distance must be positive, "
                f"got {mean_response_distance}"
            )
        if not 0.0 <= follow_probability < 1.0:
            raise ValueError(
                f"follow probability must be in [0, 1), got {follow_probability}"
            )
        self.n_users = n_users
        self.n_actions = n_actions
        self.mean_response_distance = mean_response_distance
        self.follow_probability = follow_probability
        self.edges_per_user = edges_per_user
        self.seed = seed


def _follower_map(config: SyntheticConfig, rng: np.random.Generator) -> Dict[int, List[int]]:
    """Reverse R-MAT adjacency: user -> users who follow them."""
    n_edges = int(config.n_users * config.edges_per_user)
    seed = int(rng.integers(0, 2**31 - 1))
    followers: Dict[int, List[int]] = {}
    for follower, followee in rmat_edges(config.n_users, n_edges, seed=seed):
        followers.setdefault(followee, []).append(follower)
    return followers


def synthetic_stream(config: SyntheticConfig) -> Iterator[Action]:
    """Generate the action stream described by ``config``.

    Yields actions with contiguous timestamps ``1..n_actions``.
    """
    rng = np.random.default_rng(config.seed)
    followers = _follower_map(config, rng)
    performers = np.empty(config.n_actions + 1, dtype=np.int64)
    # Pre-draw the cheap vectorisable randomness.
    is_follow = rng.random(config.n_actions + 1) < config.follow_probability
    distances = rng.exponential(
        config.mean_response_distance, config.n_actions + 1
    )
    uniform_users = rng.integers(0, config.n_users, config.n_actions + 1)
    follower_picks = rng.random(config.n_actions + 1)

    for t in range(1, config.n_actions + 1):
        if t == 1 or not is_follow[t]:
            user = int(uniform_users[t])
            performers[t] = user
            yield Action.root(t, user)
            continue
        delta = max(1, min(t - 1, int(round(distances[t]))))
        parent = t - delta
        parent_user = int(performers[parent])
        candidates = followers.get(parent_user)
        if candidates:
            user = candidates[int(follower_picks[t] * len(candidates))]
        else:
            user = int(uniform_users[t])
        performers[t] = user
        yield Action.response(t, user, parent)


def syn_o(
    n_users: int = 2_000_000,
    n_actions: int = 10_000_000,
    seed: Optional[int] = None,
) -> Iterator[Action]:
    """SYN-O: exponential response distances favouring *old* posts.

    Defaults are paper scale; pass smaller values for laptop runs — the
    mean distance keeps the paper's 5% ratio to the stream length.
    """
    config = SyntheticConfig(
        n_users=n_users,
        n_actions=n_actions,
        mean_response_distance=max(1.0, SYN_O_DISTANCE_FRACTION * n_actions),
        seed=seed,
    )
    return synthetic_stream(config)


def syn_n(
    n_users: int = 2_000_000,
    n_actions: int = 10_000_000,
    seed: Optional[int] = None,
) -> Iterator[Action]:
    """SYN-N: exponential response distances favouring *recent* posts."""
    config = SyntheticConfig(
        n_users=n_users,
        n_actions=n_actions,
        mean_response_distance=max(1.0, SYN_N_DISTANCE_FRACTION * n_actions),
        seed=seed,
    )
    return synthetic_stream(config)
