"""Stream statistics — the regenerator for the paper's Table 3.

:func:`stream_statistics` consumes any action stream once and reports the
four columns of Table 3: distinct users, action count, mean response
distance of non-root actions, and mean cascade depth (resolved through a
:class:`~repro.core.diffusion.DiffusionForest`, so indirect chains count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.actions import Action
from repro.core.diffusion import DiffusionForest

__all__ = ["StreamStatistics", "stream_statistics"]


@dataclass(frozen=True, slots=True)
class StreamStatistics:
    """Table 3 row for one dataset.

    Attributes:
        users: Number of distinct users.
        actions: Number of actions.
        mean_response_distance: Average ``Δ = t − t'`` over response actions
            (0.0 when the stream has no responses).
        mean_depth: Average response-chain depth over all actions.
        max_depth: Deepest observed chain.
        root_fraction: Fraction of root actions.
    """

    users: int
    actions: int
    mean_response_distance: float
    mean_depth: float
    max_depth: int
    root_fraction: float

    def as_row(self, name: str) -> str:
        """Format as an aligned Table 3 style row."""
        return (
            f"{name:<12}{self.users:>10,}{self.actions:>14,}"
            f"{self.mean_response_distance:>14.1f}{self.mean_depth:>12.2f}"
        )


def stream_statistics(actions: Iterable[Action]) -> StreamStatistics:
    """Single-pass computation of Table 3's statistics for a stream."""
    forest = DiffusionForest()
    users = set()
    count = 0
    roots = 0
    distance_sum = 0
    responses = 0
    for action in actions:
        forest.add(action)
        users.add(action.user)
        count += 1
        if action.is_root:
            roots += 1
        else:
            distance_sum += action.response_distance
            responses += 1
    return StreamStatistics(
        users=len(users),
        actions=count,
        mean_response_distance=(distance_sum / responses) if responses else 0.0,
        mean_depth=forest.mean_depth,
        max_depth=forest.max_depth,
        root_fraction=(roots / count) if count else 0.0,
    )
