"""Surrogate streams standing in for the paper's Reddit and Twitter crawls.

The evaluation's real-world datasets are unavailable offline (the Reddit
May-2015 Kaggle dump plus Reddit API posts; a week of Twitter streaming API
on 2016 trending topics).  These surrogates generate streams matching the
*observable statistics the frameworks are sensitive to* (Table 3):

==========  ==========  ===========  ====================  ===========
dataset     users       actions      resp. distance        avg depth
==========  ==========  ===========  ====================  ===========
Reddit      2,628,904   48,104,875   404,714.9 (0.84%)     4.58
Twitter     2,881,154   9,724,908    294,609.4 (3.03%)     1.87
==========  ==========  ===========  ====================  ===========

Design of the substitution:

* **cascade depth** — with follow probability ``p`` the steady-state mean
  depth is ``1/(1−p)``; Reddit's 4.58 needs ``p ≈ 0.7817``, Twitter's 1.87
  needs ``p ≈ 0.4652``.
* **response distance** — exponential with the dataset's mean, expressed as
  a fraction of the stream so that scaled-down runs keep the same shape
  (this is what determines how often influence chains straddle window
  boundaries).
* **user activity** — Zipf-like (s = 1.1) rather than uniform, reproducing
  the heavy-tailed activity of real forums, which concentrates influence on
  few users and makes seed selection non-trivial.

Default sizes are scaled to 1/1000 of the originals so that examples run in
seconds; pass explicit sizes for larger studies.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.core.actions import Action
from repro.graphs.rmat import rmat_edges

__all__ = ["reddit_like", "twitter_like", "heavy_tail_stream"]


def heavy_tail_stream(
    n_users: int,
    n_actions: int,
    follow_probability: float,
    mean_distance_fraction: float,
    zipf_exponent: float = 1.1,
    edges_per_user: float = 5.0,
    seed: Optional[int] = None,
) -> Iterator[Action]:
    """Generate a stream with Zipf user activity and graph-shaped cascades.

    Args:
        n_users: Size of the user universe.
        n_actions: Stream length.
        follow_probability: Probability an action responds to an earlier
            one (mean cascade depth ``1/(1−p)``).
        mean_distance_fraction: Mean response distance as a fraction of
            ``n_actions``.
        zipf_exponent: Exponent of the activity distribution (> 1).
        edges_per_user: Average R-MAT follower edges per user.
        seed: RNG seed.
    """
    if not 0.0 <= follow_probability < 1.0:
        raise ValueError(
            f"follow probability must be in [0, 1), got {follow_probability}"
        )
    if zipf_exponent <= 1.0:
        raise ValueError(f"zipf exponent must exceed 1, got {zipf_exponent}")
    rng = np.random.default_rng(seed)
    mean_distance = max(1.0, mean_distance_fraction * n_actions)

    # Heavy-tailed activity: user ids permuted so rank != id.
    ranks = rng.permutation(n_users)
    zipf_draws = rng.zipf(zipf_exponent, n_actions + 1)
    active_users = ranks[np.minimum(zipf_draws - 1, n_users - 1)]

    n_edges = int(n_users * edges_per_user)
    followers: Dict[int, List[int]] = {}
    for follower, followee in rmat_edges(
        n_users, n_edges, seed=int(rng.integers(0, 2**31 - 1))
    ):
        followers.setdefault(followee, []).append(follower)

    is_follow = rng.random(n_actions + 1) < follow_probability
    distances = rng.exponential(mean_distance, n_actions + 1)
    follower_picks = rng.random(n_actions + 1)
    performers = np.empty(n_actions + 1, dtype=np.int64)

    for t in range(1, n_actions + 1):
        if t == 1 or not is_follow[t]:
            user = int(active_users[t])
            performers[t] = user
            yield Action.root(t, user)
            continue
        delta = max(1, min(t - 1, int(round(distances[t]))))
        parent = t - delta
        candidates = followers.get(int(performers[parent]))
        if candidates:
            user = candidates[int(follower_picks[t] * len(candidates))]
        else:
            user = int(active_users[t])
        performers[t] = user
        yield Action.response(t, user, parent)


def reddit_like(
    n_users: int = 2_629,
    n_actions: int = 48_105,
    seed: Optional[int] = None,
) -> Iterator[Action]:
    """Reddit surrogate: deep cascades, activity-heavy tail.

    Defaults are 1/1000 of Table 3's Reddit; the response-distance fraction
    (0.84% of the stream) and target mean depth (4.58) match the original.
    """
    return heavy_tail_stream(
        n_users=n_users,
        n_actions=n_actions,
        follow_probability=1.0 - 1.0 / 4.58,
        mean_distance_fraction=404_714.9 / 48_104_875,
        seed=seed,
    )


def twitter_like(
    n_users: int = 2_881,
    n_actions: int = 9_725,
    seed: Optional[int] = None,
) -> Iterator[Action]:
    """Twitter surrogate: shallow cascades, longer relative distances."""
    return heavy_tail_stream(
        n_users=n_users,
        n_actions=n_actions,
        follow_probability=1.0 - 1.0 / 1.87,
        mean_distance_fraction=294_609.4 / 9_724_908,
        seed=seed,
    )
