"""Dataset generators: SYN-O/SYN-N, Reddit/Twitter surrogates, statistics."""

from repro.datasets.stats import StreamStatistics, stream_statistics
from repro.datasets.surrogates import heavy_tail_stream, reddit_like, twitter_like
from repro.datasets.synthetic import (
    SyntheticConfig,
    syn_n,
    syn_o,
    synthetic_stream,
)

__all__ = [
    "StreamStatistics",
    "SyntheticConfig",
    "heavy_tail_stream",
    "reddit_like",
    "stream_statistics",
    "syn_n",
    "syn_o",
    "synthetic_stream",
    "twitter_like",
]
