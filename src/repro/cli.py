"""``repro-stream`` — work with action streams from the shell.

Subcommands:

* ``generate`` — synthesise a dataset (reddit/twitter/syn-o/syn-n) to
  JSONL/CSV;
* ``stats`` — print Table 3-style statistics for a stream file;
* ``convert`` — transcode between JSONL and CSV;
* ``track`` — replay a stream file through SIC (or IC/greedy) and print
  the evolving top-k influencers.  With ``--state-dir`` the run is
  crash-recoverable: slides are WAL-logged, state is snapshotted every
  ``--snapshot-every`` slides, and re-running the same command after a
  kill resumes mid-stream with identical answers;
* ``snapshot`` — inspect (``info``), roll forward (``save``), verify
  (``restore``), or tighten retention (``prune``) on a ``--state-dir``
  created by ``track`` or ``serve``;
* ``serve`` — run the online serving plane: an asyncio TCP server that
  coalesces socket-ingested actions into slides, feeds a board of named
  queries, and answers ``/queries/<name>/topk``, ``/metrics`` and
  ``/healthz`` from an immutable answer cache.  With ``--state-dir`` the
  server is crash-recoverable and SIGTERM seals a final snapshot.  With
  ``--shards N`` the write plane is partitioned by influencer over N
  shard engines (``--shard-backend process`` for one worker process per
  shard) and answers merge on read; ``track`` accepts the same flags.
  With ``--trace-log`` + ``--slow-slide-ms`` slow slides emit per-stage
  JSONL traces;
* ``trace`` — ``tail`` or ``summarize`` a ``--trace-log`` file: the
  per-stage latency breakdown of traced slides;
* ``top`` — live terminal console over a running server: sparkline
  panels of ingest rate, slide latency quantiles and per-shard busy
  time from ``/metrics/history``, with active SLO alerts inline
  (``--once`` renders one frame for CI/no-TTY use);
* ``profile`` — fetch a collapsed-stack wall-clock profile from a
  running server's ``/debug/profile`` endpoint (flamegraph.pl /
  speedscope input).

Examples::

    repro-stream generate --dataset reddit -n 20000 -o reddit.jsonl
    repro-stream stats reddit.jsonl
    repro-stream convert reddit.jsonl reddit.csv
    repro-stream track reddit.jsonl --window 5000 --slide 500 --k 10
    repro-stream track reddit.jsonl --state-dir state/ --format json
    repro-stream snapshot info state/
    repro-stream snapshot prune state/ --keep 1
    repro-stream serve --window 5000 -k 10 --state-dir state/ \\
        --query "precise=sic,beta=0.1" --query "fast=ic,oracle=mkc"
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

from repro.core.stream import batched
from repro.datasets.io import read_csv, read_jsonl, write_csv, write_jsonl

__all__ = ["main", "build_parser"]

_GENERATORS = ("reddit", "twitter", "syn-o", "syn-n")
_ALGORITHMS = ("sic", "ic", "greedy")
_ORACLES = ("sieve", "threshold", "blog_watch", "mkc", "greedy")
_FORMATS = ("text", "json")
_SHARD_BACKENDS = ("serial", "thread", "process")


def _reader_for(path: pathlib.Path):
    if path.suffix == ".jsonl":
        return read_jsonl(path)
    if path.suffix == ".csv":
        return read_csv(path)
    raise ValueError(f"unsupported extension {path.suffix!r} (use .jsonl/.csv)")


def _writer_for(path: pathlib.Path):
    if path.suffix == ".jsonl":
        return write_jsonl
    if path.suffix == ".csv":
        return write_csv
    raise ValueError(f"unsupported extension {path.suffix!r} (use .jsonl/.csv)")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-stream", description="Action-stream toolbox."
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="synthesise a dataset")
    generate.add_argument("--dataset", choices=_GENERATORS, default="syn-n")
    generate.add_argument("-n", "--actions", type=int, default=10_000)
    generate.add_argument("-u", "--users", type=int, default=2_000)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("-o", "--output", required=True)

    stats = commands.add_parser("stats", help="Table 3 statistics of a file")
    stats.add_argument("file")

    convert = commands.add_parser("convert", help="transcode jsonl <-> csv")
    convert.add_argument("source")
    convert.add_argument("target")

    track = commands.add_parser("track", help="replay a file through SIM")
    track.add_argument("file")
    track.add_argument("--algorithm", choices=_ALGORITHMS, default="sic")
    track.add_argument("--window", type=int, default=5_000)
    track.add_argument("--slide", type=int, default=500)
    track.add_argument("-k", type=int, default=10)
    track.add_argument("--beta", type=float, default=0.2)
    track.add_argument(
        "--oracle",
        choices=_ORACLES,
        default="sieve",
        help="checkpoint oracle for ic/sic (default: sieve)",
    )
    track.add_argument(
        "--checkpoint-interval",
        type=int,
        default=1,
        help="ic only: open a checkpoint every this many slides",
    )
    track.add_argument(
        "--shared-index",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="share one versioned influence index across checkpoints "
        "(--no-shared-index restores per-checkpoint reference indexes)",
    )
    track.add_argument(
        "--format",
        choices=_FORMATS,
        default="text",
        help="per-slide output: aligned text or one JSON object per line",
    )
    track.add_argument(
        "--state-dir",
        default=None,
        help="durable state directory; re-running resumes after the last "
        "recoverable slide instead of replaying from t=0",
    )
    track.add_argument(
        "--snapshot-every",
        type=int,
        default=16,
        help="slides between automatic snapshots (0 disables; "
        "requires --state-dir)",
    )
    track.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition influencers over this many shard engines and "
        "merge answers on read (ic/sic only)",
    )
    track.add_argument(
        "--shard-backend",
        choices=_SHARD_BACKENDS,
        default="thread",
        help="worker backend for --shards > 1 (process = one forked "
        "worker per shard, real multi-core)",
    )
    _add_supervision_arguments(track)

    snapshot = commands.add_parser(
        "snapshot", help="inspect or manage a track/serve --state-dir"
    )
    snapshot_commands = snapshot.add_subparsers(
        dest="snapshot_command", required=True
    )
    info = snapshot_commands.add_parser(
        "info", help="list snapshots and WAL segments"
    )
    info.add_argument("state_dir")
    save = snapshot_commands.add_parser(
        "save", help="roll the WAL tail into a fresh snapshot"
    )
    save.add_argument("state_dir")
    restore = snapshot_commands.add_parser(
        "restore", help="recover the engine and print its current answer"
    )
    restore.add_argument("state_dir")
    prune = snapshot_commands.add_parser(
        "prune",
        help="drop snapshots/WAL segments older than the newest --keep",
    )
    prune.add_argument("state_dir")
    prune.add_argument(
        "--keep",
        type=int,
        default=1,
        help="newest snapshots to retain (default: 1)",
    )

    serve = commands.add_parser(
        "serve", help="run the online ingest/query server"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=7077,
        help="listen port (0 lets the OS pick; the bound port is printed)",
    )
    serve.add_argument("--algorithm", choices=_ALGORITHMS, default="sic")
    serve.add_argument("--window", type=int, default=5_000)
    serve.add_argument(
        "--slide",
        type=int,
        default=32,
        help="max actions coalesced into one slide before flushing",
    )
    serve.add_argument("-k", type=int, default=10)
    serve.add_argument("--beta", type=float, default=0.2)
    serve.add_argument("--oracle", choices=_ORACLES, default="sieve")
    serve.add_argument("--checkpoint-interval", type=int, default=1)
    serve.add_argument(
        "--shared-index",
        action=argparse.BooleanOptionalAction,
        default=True,
    )
    serve.add_argument(
        "--query",
        action="append",
        default=None,
        metavar="NAME=ALGO[,key=value...]",
        help="add a named query to the board (repeatable); keys: window, "
        "k, beta, oracle, checkpoint-interval — unset keys fall back to "
        "the top-level flags.  Without --query the board is one query "
        "named 'main' built from the top-level flags",
    )
    serve.add_argument(
        "--flush-interval",
        type=float,
        default=0.5,
        help="seconds before a partial slide is flushed to the engine",
    )
    serve.add_argument(
        "--queue-capacity",
        type=int,
        default=4096,
        help="ingest queue bound (backpressure threshold)",
    )
    serve.add_argument(
        "--ack-every",
        type=int,
        default=1000,
        help="ingest lines per batched ack",
    )
    serve.add_argument(
        "--history",
        type=int,
        default=128,
        help="published answer boards kept for /history reads",
    )
    serve.add_argument(
        "--state-dir",
        default=None,
        help="durable state directory; restart resumes and SIGTERM seals "
        "a final snapshot",
    )
    serve.add_argument(
        "--snapshot-every",
        type=int,
        default=16,
        help="slides between automatic snapshots (0 disables; "
        "requires --state-dir)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition influencers over this many shard engines behind "
        "the ingest loop; answers merge on read (ic/sic queries only)",
    )
    serve.add_argument(
        "--shard-backend",
        choices=_SHARD_BACKENDS,
        default="thread",
        help="worker backend for --shards > 1 (process = one forked "
        "worker per shard, real multi-core)",
    )
    serve.add_argument(
        "--trace-log",
        default=None,
        metavar="PATH",
        help="append slow-slide stage traces to this JSONL file "
        "(see --slow-slide-ms)",
    )
    serve.add_argument(
        "--slow-slide-ms",
        type=float,
        default=None,
        metavar="N",
        help="emit a stage trace for slides slower than N ms "
        "(0 traces every slide; default: off)",
    )
    serve.add_argument(
        "--trace-ring",
        type=int,
        default=64,
        help="recent slide traces kept in memory (default: 64)",
    )
    serve.add_argument(
        "--flight-recorder",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="sample metrics into retained time-series for "
        "/metrics/history and SLO alerting (fixed memory; default: on)",
    )
    serve.add_argument(
        "--sample-interval",
        type=float,
        default=1.0,
        metavar="S",
        help="seconds between flight-recorder samples (default: 1.0)",
    )
    serve.add_argument(
        "--alert-log",
        default=None,
        metavar="PATH",
        help="append SLO alert raise/clear events to this JSONL file",
    )
    serve.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="NAME=SERIES,threshold=T[,key=value...]",
        help="add an SLO objective over a retained series (repeatable); "
        "keys: threshold (required), objective, fast, slow, burn, "
        "severity (page|ticket), min-samples",
    )
    serve.add_argument(
        "--slo-defaults",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="evaluate the stock serving-plane objectives (default: on)",
    )
    serve.add_argument(
        "--profile",
        action="store_true",
        help="run the continuous sampling profiler from boot "
        "(GET /debug/profile works either way)",
    )
    serve.add_argument(
        "--profile-hz",
        type=float,
        default=100.0,
        help="wall-clock profiler sampling rate (default: 100)",
    )
    _add_supervision_arguments(serve)

    top = commands.add_parser(
        "top", help="live terminal console over a running server"
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=7077)
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between frames (default: 2.0)",
    )
    top.add_argument(
        "--window",
        type=float,
        default=120.0,
        help="history window per sparkline panel (default: 120 s)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="render one frame without clearing the screen and exit "
        "(CI / no-TTY use)",
    )

    profile = commands.add_parser(
        "profile", help="collapsed-stack profile of a running server"
    )
    profile.add_argument("--host", default="127.0.0.1")
    profile.add_argument("--port", type=int, default=7077)
    profile.add_argument(
        "--seconds",
        type=float,
        default=2.0,
        help="profiling window length (default: 2.0)",
    )
    profile.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the collapsed stacks here instead of stdout "
        "(feed to flamegraph.pl / speedscope)",
    )

    trace = commands.add_parser(
        "trace", help="inspect a serve --trace-log JSONL file"
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    tail = trace_commands.add_parser(
        "tail", help="print the last N trace events"
    )
    tail.add_argument("file")
    tail.add_argument(
        "-n", type=int, default=10, help="events to print (default: 10)"
    )
    summarize = trace_commands.add_parser(
        "summarize", help="per-stage latency breakdown of a trace log"
    )
    summarize.add_argument("file")
    return parser


def _add_supervision_arguments(command) -> None:
    """Shard-supervision knobs shared by ``track`` and ``serve``."""
    command.add_argument(
        "--shard-retries",
        type=int,
        default=3,
        help="in-place restarts attempted per failed shard before a "
        "slide escalates ShardingError (0 = fail fast)",
    )
    command.add_argument(
        "--shard-call-timeout",
        type=float,
        default=30.0,
        help="seconds a shard may take to answer one command before it "
        "is declared hung, killed and restarted",
    )
    command.add_argument(
        "--fault-plan",
        default=None,
        metavar="PLAN.json",
        help="scripted fault-injection plan (repro.faults.FaultPlan "
        "JSON) armed in the shard workers — chaos testing only",
    )


def _cmd_generate(args) -> int:
    from repro.datasets.surrogates import reddit_like, twitter_like
    from repro.datasets.synthetic import syn_n, syn_o

    makers = {
        "reddit": reddit_like,
        "twitter": twitter_like,
        "syn-o": syn_o,
        "syn-n": syn_n,
    }
    output = pathlib.Path(args.output)
    writer = _writer_for(output)
    stream = makers[args.dataset](
        n_users=args.users, n_actions=args.actions, seed=args.seed
    )
    count = writer(stream, output)
    print(f"wrote {count} {args.dataset} actions to {output}")
    return 0


def _cmd_stats(args) -> int:
    from repro.datasets.stats import stream_statistics

    path = pathlib.Path(args.file)
    stats = stream_statistics(_reader_for(path))
    print(f"{'users':<22}{stats.users:,}")
    print(f"{'actions':<22}{stats.actions:,}")
    print(f"{'mean resp. distance':<22}{stats.mean_response_distance:.1f}")
    print(f"{'mean cascade depth':<22}{stats.mean_depth:.2f}")
    print(f"{'max cascade depth':<22}{stats.max_depth}")
    print(f"{'root fraction':<22}{stats.root_fraction:.2%}")
    return 0


def _cmd_convert(args) -> int:
    source = pathlib.Path(args.source)
    target = pathlib.Path(args.target)
    writer = _writer_for(target)
    count = writer(_reader_for(source), target)
    print(f"converted {count} actions: {source} -> {target}")
    return 0


def _make_track_factory(args):
    """Framework constructor from track CLI arguments.

    The returned factory takes an optional shard assignment (``None``
    builds the unsharded engine) so the same recipe serves both
    ``RecoverableEngine.open`` (which calls it with no arguments) and the
    sharded plane (which builds one engine per shard).
    """
    from repro.core.greedy import WindowedGreedy
    from repro.core.ic import InfluentialCheckpoints
    from repro.core.sic import SparseInfluentialCheckpoints

    if args.shards > 1 and args.algorithm == "greedy":
        raise ValueError(
            "--shards requires a checkpoint algorithm (ic or sic); "
            "greedy has no shardable oracle plane"
        )
    if args.algorithm == "sic":
        return lambda assignment=None: SparseInfluentialCheckpoints(
            window_size=args.window,
            k=args.k,
            beta=args.beta,
            oracle=args.oracle,
            shared_index=args.shared_index,
            shard=assignment,
        )
    if args.algorithm == "ic":
        return lambda assignment=None: InfluentialCheckpoints(
            window_size=args.window,
            k=args.k,
            beta=args.beta,
            oracle=args.oracle,
            shared_index=args.shared_index,
            checkpoint_interval=args.checkpoint_interval,
            shard=assignment,
        )
    return lambda assignment=None: WindowedGreedy(
        window_size=args.window, k=args.k
    )


def _open_engine(args, factory):
    """Open the engine the track/serve flags describe (sharded or not)."""
    from repro.persistence.engine import RecoverableEngine

    if args.shards > 1:
        from repro.sharding.engine import ShardedEngine

        fault_plan = None
        if getattr(args, "fault_plan", None):
            from repro.faults import FaultPlan

            fault_plan = FaultPlan.load(args.fault_plan)
        return ShardedEngine.open(
            factory,
            args.shards,
            state_dir=args.state_dir,
            backend=args.shard_backend,
            snapshot_every=args.snapshot_every,
            retries=args.shard_retries,
            call_timeout=args.shard_call_timeout,
            fault_plan=fault_plan,
        )
    return RecoverableEngine.open(
        args.state_dir,
        factory,
        snapshot_every=args.snapshot_every,
    )


def _emit_answer(answer, output_format: str) -> None:
    """Print one per-slide answer in the requested format."""
    if output_format == "json":
        print(
            json.dumps(
                {
                    "time": answer.time,
                    "value": answer.value,
                    "seeds": sorted(answer.seeds),
                },
                separators=(",", ":"),
            )
        )
    else:
        seeds = ",".join(str(u) for u in sorted(answer.seeds))
        print(f"{answer.time:>10}  {answer.value:>10.0f}  [{seeds}]")


def _check_resumed_config(engine, factory) -> None:
    """Reject a resume whose CLI flags disagree with the stored state.

    Delegates to the persistence plane's single definition of "same
    config" (:func:`repro.persistence.serialize.ensure_same_engine_config`),
    shared with the sharded plane's per-shard check.
    """
    from repro.persistence.serialize import ensure_same_engine_config

    ensure_same_engine_config(engine.algorithm, factory(), where="state dir")


def _cmd_track(args) -> int:
    path = pathlib.Path(args.file)
    factory = _make_track_factory(args)
    engine = _open_engine(args, factory)
    try:
        if engine.slides_processed and args.shards == 1:
            # Sharded engines validate per-shard configs at open time.
            _check_resumed_config(engine, factory)
        resume_time = engine.now
        if resume_time:
            print(
                f"resumed at time {resume_time} "
                f"(slide {engine.slides_processed}; replayed "
                f"{engine.replayed_slides} slides from the WAL tail)",
                file=sys.stderr,
            )
        if args.format == "text":
            print(f"{'time':>10}  {'influence':>10}  seeds")
        for batch in batched(_reader_for(path), args.slide):
            if batch[-1].time <= resume_time:
                continue  # fully covered by the recovered state
            if batch[0].time <= resume_time:
                # Partially covered (slide size changed between runs):
                # feed only the unseen suffix.
                batch = [a for a in batch if a.time > resume_time]
            engine.process(batch)
            _emit_answer(engine.query(), args.format)
    except BaseException:
        engine.close(snapshot=False)
        raise
    engine.close()
    return 0


def _prune_store(state_dir, keep: int) -> None:
    """Prune one snapshot+WAL store and report what was dropped."""
    from repro.persistence.engine import StateStore

    store = StateStore(state_dir)
    try:
        dropped = store.snapshots.prune(keep)
        retained = store.snapshots.sequences()
        segments = 0
        if retained:
            # WAL records covered by the oldest retained snapshot can
            # never be replayed again; drop their whole segments.
            segments = store.wal.prune_through(min(retained))
        print(
            f"dropped {len(dropped)} snapshots and {segments} WAL "
            f"segments; kept {len(retained)} snapshots"
        )
    finally:
        store.close()


def _describe_partitioner(state: dict) -> str:
    """A one-line partitioner identity; heat tables are summarized."""
    kind = state.get("kind")
    if kind == "heat":
        heat = state.get("heat", {})
        total = sum(heat.values())
        return (
            f"heat (shards={state.get('shards')}, {len(heat)} hot users, "
            f"total heat {total:g})"
        )
    return str(state)


def _shard_routed_tuples(shard_dir) -> tuple:
    """``(consumed_at_snapshot, wal_records, wal_tuples)`` for one shard.

    ``consumed_at_snapshot`` is the routed records the shard had absorbed
    when its newest snapshot was taken; the WAL numbers cover the
    replayable tail beyond it (routed-tuple batches only — broadcast-era
    action records in a mixed log are not counted here).
    """
    from repro.core.resolve import ResolvedSlide
    from repro.persistence.engine import StateStore

    store = StateStore(shard_dir)
    try:
        latest = store.snapshots.load_latest()
        snap_seq = 0
        consumed = 0
        if latest is not None:
            snap_seq, document = latest
            algorithm = document["algorithm"]
            if algorithm.get("algorithm") == "multi":
                consumed = algorithm.get("actions_processed", 0)
            else:
                consumed = algorithm.get("base", {}).get(
                    "actions_processed", 0
                )
        wal_records = 0
        wal_tuples = 0
        for _seq, payload in store.wal.replay(after=snap_seq):
            if isinstance(payload, ResolvedSlide):
                wal_records += 1
                wal_tuples += len(payload.records)
    finally:
        store.close()
    return consumed, wal_records, wal_tuples


def _cmd_snapshot(args) -> int:
    from repro.persistence.engine import (
        RecoverableEngine,
        StateStore,
        list_shard_state_dirs,
    )
    from repro.persistence.serialize import PersistenceError

    root = pathlib.Path(args.state_dir)
    if not root.is_dir():
        # Inspection must not mkdir a state tree at a typoed path.
        raise PersistenceError(f"no state directory at {args.state_dir}")
    shard_dirs = list_shard_state_dirs(root)
    manifest_path = root / "sharding.json"
    if shard_dirs or manifest_path.exists():
        # A sharded root: recurse over the per-shard stores.  A crash can
        # leave this tree partial — a shard dir missing entirely, or with
        # a corrupt WAL tail — so every per-shard step reports unhealthy
        # state and continues instead of aborting the whole inspection.
        expected = None
        routed = False
        if manifest_path.exists():
            try:
                manifest = json.loads(manifest_path.read_text())
                expected = int(manifest["shards"])
                routed = manifest.get("ingest") == "routed"
                ingest = "routed" if routed else "broadcast"
                print(
                    f"sharded root   {root}  ({manifest['shards']} shards, "
                    f"{ingest} ingest, partitioner "
                    f"{_describe_partitioner(manifest['partitioner'])})"
                )
            except (ValueError, KeyError, TypeError) as error:
                print(f"unhealthy      corrupt sharding.json: {error}")
        if routed and args.snapshot_command == "info":
            resolver_dir = root / "resolver"
            if resolver_dir.is_dir():
                store = StateStore(resolver_dir)
                try:
                    retained = store.snapshots.sequences()
                    newest = max(retained) if retained else 0
                    print(
                        f"resolver       snapshot slide {newest}, "
                        f"wal last seq {store.wal.last_seq}"
                    )
                finally:
                    store.close()
            else:
                print("unhealthy      routed manifest but no resolver/ dir")
        if args.snapshot_command not in ("info", "prune"):
            example = shard_dirs[0] if shard_dirs else root / "shard-0"
            raise PersistenceError(
                f"snapshot {args.snapshot_command} works on one engine's "
                f"state dir; {root} is a sharded root — run it against a "
                f"single shard, e.g. {example}"
            )
        known = {path.name: path for path in shard_dirs}
        names = list(known)
        if expected is not None:
            # The manifest is authoritative: surface shard dirs it
            # promises but the tree lacks, alongside any strays.
            names = [f"shard-{i}" for i in range(expected)]
            names.extend(sorted(set(known) - set(names)))
        unhealthy = 0
        for name in names:
            print(f"--- {name} ---")
            shard_dir = known.get(name)
            if shard_dir is None:
                print(f"unhealthy      missing shard state dir {root / name}")
                unhealthy += 1
                continue
            try:
                if args.snapshot_command == "info":
                    _cmd_snapshot(
                        argparse.Namespace(
                            state_dir=str(shard_dir), snapshot_command="info"
                        )
                    )
                    if routed:
                        consumed, records, tuples = _shard_routed_tuples(
                            shard_dir
                        )
                        print(
                            f"routed tuples  {consumed:,} consumed at "
                            f"snapshot + {tuples:,} in {records} WAL "
                            "record(s)"
                        )
                else:
                    _prune_store(shard_dir, args.keep)
            except (PersistenceError, OSError) as error:
                print(f"unhealthy      {error}")
                unhealthy += 1
        if unhealthy:
            print(f"{unhealthy} of {len(names)} shard state dirs unhealthy")
        return 0
    if args.snapshot_command == "prune":
        _prune_store(args.state_dir, args.keep)
        return 0
    if args.snapshot_command == "info":
        store = StateStore(args.state_dir)
        try:
            sequences = store.snapshots.sequences()
            print(f"state dir      {store.root}")
            for seq in sequences:
                snapshot_path = store.snapshots.path_for(seq)
                print(
                    f"snapshot       slide {seq:>8}  "
                    f"{snapshot_path.stat().st_size:>10,} bytes"
                )
            for segment in store.wal.segments():
                print(
                    f"wal segment    {segment.name}  "
                    f"{segment.stat().st_size:>10,} bytes"
                )
            print(f"wal last seq   {store.wal.last_seq}")
            latest = store.snapshots.load_latest()
            if latest is not None:
                seq, document = latest
                algorithm = document["algorithm"].get("algorithm")
                print(f"algorithm      {algorithm}")
                tail = max(store.wal.last_seq - seq, 0)
                print(f"recoverable    slide {max(store.wal.last_seq, seq)} "
                      f"(snapshot {seq} + {tail} WAL slides)")
            elif store.wal.last_seq:
                print(f"recoverable    slide {store.wal.last_seq} "
                      "(full WAL replay, no snapshot)")
            else:
                print("recoverable    nothing stored yet")
        finally:
            store.close()
        return 0

    # save / restore both recover the engine first.
    engine = RecoverableEngine.open(args.state_dir, factory=None)
    try:
        if args.snapshot_command == "save":
            engine.snapshot()
            print(
                f"snapshot written at slide {engine.slides_processed} "
                f"(replayed {engine.replayed_slides} WAL slides)"
            )
        else:  # restore
            from repro.core.multi import MultiQueryEngine

            algorithm = engine.algorithm
            position = {
                "slide": engine.slides_processed,
                "replayed": engine.replayed_slides,
            }
            if isinstance(algorithm, MultiQueryEngine):
                # A serve state dir holds a whole board; print every query.
                position["queries"] = {
                    name: {
                        "time": answer.time,
                        "value": answer.value,
                        "seeds": sorted(answer.seeds),
                    }
                    for name, answer in algorithm.query_all().items()
                }
            else:
                answer = engine.query()
                position.update(
                    {
                        "time": answer.time,
                        "value": answer.value,
                        "seeds": sorted(answer.seeds),
                    }
                )
            print(json.dumps(position, separators=(",", ":")))
    finally:
        engine.close(snapshot=False)
    return 0


def _parse_query_spec(spec: str, defaults) -> tuple:
    """``NAME=ALGO[,key=value...]`` → ``(name, constructor_kwargs)``.

    Unset keys fall back to the top-level serve flags in ``defaults``.
    """
    name, separator, rest = spec.partition("=")
    name = name.strip()
    if not separator or not name:
        raise ValueError(
            f"bad --query spec {spec!r}; expected NAME=ALGO[,key=value...]"
        )
    fields = [f.strip() for f in rest.split(",") if f.strip()]
    if not fields:
        raise ValueError(f"--query spec {spec!r} names no algorithm")
    algorithm = fields[0]
    if algorithm not in _ALGORITHMS:
        raise ValueError(
            f"--query spec {spec!r}: unknown algorithm {algorithm!r} "
            f"(choose from {', '.join(_ALGORITHMS)})"
        )
    options = {
        "algorithm": algorithm,
        "window": defaults.window,
        "k": defaults.k,
        "beta": defaults.beta,
        "oracle": defaults.oracle,
        "checkpoint_interval": defaults.checkpoint_interval,
    }
    parsers = {
        "window": int,
        "k": int,
        "beta": float,
        "oracle": str,
        "checkpoint_interval": int,
    }
    # Keys each algorithm's constructor actually consumes; accepting an
    # inapplicable key would silently serve default settings instead.
    applicable = {
        "sic": {"window", "k", "beta", "oracle"},
        "ic": {"window", "k", "beta", "oracle", "checkpoint_interval"},
        "greedy": {"window", "k"},
    }
    for field in fields[1:]:
        key, separator, value = field.partition("=")
        key = key.strip().replace("-", "_")
        if not separator or key not in parsers:
            raise ValueError(
                f"--query spec {spec!r}: bad option {field!r} "
                f"(known: {', '.join(parsers)})"
            )
        if key not in applicable[algorithm]:
            raise ValueError(
                f"--query spec {spec!r}: option {key!r} does not apply to "
                f"{algorithm!r} (accepted: "
                f"{', '.join(sorted(applicable[algorithm]))})"
            )
        if key == "oracle" and value not in _ORACLES:
            raise ValueError(
                f"--query spec {spec!r}: unknown oracle {value!r} "
                f"(choose from {', '.join(_ORACLES)})"
            )
        options[key] = parsers[key](value)
    return name, options


def _make_serve_factory(args):
    """MultiQueryEngine board constructor from serve CLI arguments.

    The returned factory takes an optional shard assignment (``None``
    builds the unsharded board): every ic/sic query on the board receives
    the assignment, so one shard's board covers exactly the influencers
    that shard owns.
    """
    from repro.core.greedy import WindowedGreedy
    from repro.core.ic import InfluentialCheckpoints
    from repro.core.multi import MultiQueryEngine
    from repro.core.sic import SparseInfluentialCheckpoints

    specs = [
        _parse_query_spec(spec, args)
        for spec in (args.query or [f"main={args.algorithm}"])
    ]
    names = [name for name, _ in specs]
    duplicates = sorted({n for n in names if names.count(n) > 1})
    if duplicates:
        raise ValueError(f"duplicate --query names: {duplicates}")
    if args.shards > 1:
        unshardable = sorted(
            name for name, options in specs if options["algorithm"] == "greedy"
        )
        if unshardable:
            raise ValueError(
                f"--shards requires checkpoint algorithms (ic or sic); "
                f"greedy queries cannot be sharded: {unshardable}"
            )

    def build(options, assignment):
        if options["algorithm"] == "sic":
            return SparseInfluentialCheckpoints(
                window_size=options["window"],
                k=options["k"],
                beta=options["beta"],
                oracle=options["oracle"],
                shared_index=args.shared_index,
                shard=assignment,
            )
        if options["algorithm"] == "ic":
            return InfluentialCheckpoints(
                window_size=options["window"],
                k=options["k"],
                beta=options["beta"],
                oracle=options["oracle"],
                shared_index=args.shared_index,
                checkpoint_interval=options["checkpoint_interval"],
                shard=assignment,
            )
        return WindowedGreedy(window_size=options["window"], k=options["k"])

    def factory(assignment=None):
        engine = MultiQueryEngine()
        for name, options in specs:
            engine.add(name, build(options, assignment))
        return engine

    return factory


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service.config import ServiceConfig
    from repro.service.server import ReproService

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        slide=args.slide,
        flush_interval=args.flush_interval,
        queue_capacity=args.queue_capacity,
        ack_every=args.ack_every,
        history=args.history,
        shards=args.shards,
        shard_backend=args.shard_backend,
        trace_log=args.trace_log,
        slow_slide_ms=args.slow_slide_ms,
        trace_ring=args.trace_ring,
        flight_recorder=args.flight_recorder,
        sample_interval=args.sample_interval,
        alert_log=args.alert_log,
        slo_defaults=args.slo_defaults,
        slo_specs=tuple(args.slo or ()),
        profile=args.profile,
        profile_hz=args.profile_hz,
    )
    factory = _make_serve_factory(args)
    engine = _open_engine(args, factory)
    try:
        if engine.slides_processed:
            if args.shards == 1:
                # Sharded engines validate per-shard configs at open time.
                _check_resumed_config(engine, factory)
            print(
                f"resumed at time {engine.now} "
                f"(slide {engine.slides_processed}; replayed "
                f"{engine.replayed_slides} slides from the WAL tail)",
                file=sys.stderr,
            )
    except BaseException:
        engine.close(snapshot=False)
        raise

    def announce(service: ReproService) -> None:
        queries = ",".join(service.query_names())
        print(
            f"listening on {service.host}:{service.port} "
            f"(queries: {queries})",
            flush=True,
        )

    service = ReproService(engine, config)
    try:
        asyncio.run(service.run(on_ready=announce))
    except BaseException:
        # A failed bind/serve must not seal state the loop never owned.
        engine.close(snapshot=False)
        raise
    print(
        f"stopped after {engine.slides_processed} slides "
        f"({service.ingest.stats.accepted} actions ingested)",
        file=sys.stderr,
    )
    return 0


def _read_trace_events(path: pathlib.Path) -> List[dict]:
    """Parse a ``--trace-log`` JSONL file, skipping torn/foreign lines.

    A crash can leave a torn final line and operators sometimes point
    the command at a mixed log; both are survivable, so bad lines are
    counted on stderr instead of aborting.
    """
    events: List[dict] = []
    skipped = 0
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                document = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if isinstance(document, dict) and "stages" in document:
                events.append(document)
            else:
                skipped += 1
    if skipped:
        print(f"skipped {skipped} unparseable line(s)", file=sys.stderr)
    return events


def _cmd_top(args) -> int:
    from repro.service.client import ServiceClient
    from repro.telemetry.console import run_top

    client = ServiceClient(args.host, args.port, timeout=10.0)
    try:
        run_top(
            client,
            interval=args.interval,
            window=args.window,
            iterations=1 if args.once else None,
            clear=not args.once,
        )
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_profile(args) -> int:
    from repro.service.client import ServiceClient

    client = ServiceClient(args.host, args.port, timeout=args.seconds + 30.0)
    status, body, _ = client.http_get_raw(
        f"/debug/profile?seconds={args.seconds:g}"
    )
    if status != 200:
        print(f"error: profile -> {status}: {body[:200]}", file=sys.stderr)
        return 1
    if args.output:
        pathlib.Path(args.output).write_text(body, encoding="utf-8")
        print(
            f"wrote {len(body.splitlines())} collapsed stacks to "
            f"{args.output}",
            file=sys.stderr,
        )
    else:
        sys.stdout.write(body)
    return 0


def _cmd_trace(args) -> int:
    from repro.telemetry import STAGES

    path = pathlib.Path(args.file)
    if not path.exists():
        # A missing log is an ordinary state (the server writes it
        # lazily, and slow-slide emission may simply never have fired) —
        # report it plainly and succeed rather than stack-tracing.
        print(f"no trace log at {path} (no slow slides recorded yet)")
        return 0
    events = _read_trace_events(path)
    if not events:
        print(f"no trace events in {path}")
        return 0
    if args.trace_command == "tail":
        for event in events[-args.n:]:
            stages = ", ".join(
                f"{name}={doc['seconds'] * 1000.0:.2f}ms"
                for name, doc in event.get("stages", {}).items()
            )
            print(
                f"slide {event.get('slide'):>8}  "
                f"{event.get('actions', 0):>6} actions  "
                f"{event.get('total_seconds', 0.0) * 1000.0:>9.2f}ms  "
                f"[{stages}]"
            )
        return 0

    # summarize: per-stage aggregate over every event in the file.
    totals: dict = {}
    for event in events:
        for name, doc in event.get("stages", {}).items():
            entry = totals.setdefault(
                name, {"count": 0, "seconds": 0.0, "max": 0.0, "items": 0}
            )
            entry["count"] += 1
            entry["seconds"] += doc.get("seconds", 0.0)
            entry["max"] = max(entry["max"], doc.get("seconds", 0.0))
            entry["items"] += doc.get("items", 0)
    grand_total = sum(entry["seconds"] for entry in totals.values()) or 1.0
    order = {name: i for i, name in enumerate(STAGES)}
    print(f"{len(events)} traced slides in {path}")
    print(
        f"{'stage':<14}{'count':>7}{'total s':>10}{'mean ms':>10}"
        f"{'max ms':>10}{'items':>10}{'share':>8}"
    )
    for name in sorted(totals, key=lambda n: (order.get(n, len(order)), n)):
        entry = totals[name]
        mean_ms = entry["seconds"] / entry["count"] * 1000.0
        print(
            f"{name:<14}{entry['count']:>7}{entry['seconds']:>10.3f}"
            f"{mean_ms:>10.3f}{entry['max'] * 1000.0:>10.3f}"
            f"{entry['items']:>10}{entry['seconds'] / grand_total:>8.1%}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    from repro.sharding.engine import ShardingError

    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "stats": _cmd_stats,
        "convert": _cmd_convert,
        "track": _cmd_track,
        "snapshot": _cmd_snapshot,
        "serve": _cmd_serve,
        "trace": _cmd_trace,
        "top": _cmd_top,
        "profile": _cmd_profile,
    }
    try:
        return handlers[args.command](args)
    except (ValueError, OSError, ShardingError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
