"""``repro-stream`` — work with action streams from the shell.

Subcommands:

* ``generate`` — synthesise a dataset (reddit/twitter/syn-o/syn-n) to
  JSONL/CSV;
* ``stats`` — print Table 3-style statistics for a stream file;
* ``convert`` — transcode between JSONL and CSV;
* ``track`` — replay a stream file through SIC (or IC/greedy) and print
  the evolving top-k influencers.

Examples::

    repro-stream generate --dataset reddit -n 20000 -o reddit.jsonl
    repro-stream stats reddit.jsonl
    repro-stream convert reddit.jsonl reddit.csv
    repro-stream track reddit.jsonl --window 5000 --slide 500 --k 10
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.core.stream import batched
from repro.datasets.io import read_csv, read_jsonl, write_csv, write_jsonl

__all__ = ["main", "build_parser"]

_GENERATORS = ("reddit", "twitter", "syn-o", "syn-n")
_ALGORITHMS = ("sic", "ic", "greedy")


def _reader_for(path: pathlib.Path):
    if path.suffix == ".jsonl":
        return read_jsonl(path)
    if path.suffix == ".csv":
        return read_csv(path)
    raise ValueError(f"unsupported extension {path.suffix!r} (use .jsonl/.csv)")


def _writer_for(path: pathlib.Path):
    if path.suffix == ".jsonl":
        return write_jsonl
    if path.suffix == ".csv":
        return write_csv
    raise ValueError(f"unsupported extension {path.suffix!r} (use .jsonl/.csv)")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-stream", description="Action-stream toolbox."
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="synthesise a dataset")
    generate.add_argument("--dataset", choices=_GENERATORS, default="syn-n")
    generate.add_argument("-n", "--actions", type=int, default=10_000)
    generate.add_argument("-u", "--users", type=int, default=2_000)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("-o", "--output", required=True)

    stats = commands.add_parser("stats", help="Table 3 statistics of a file")
    stats.add_argument("file")

    convert = commands.add_parser("convert", help="transcode jsonl <-> csv")
    convert.add_argument("source")
    convert.add_argument("target")

    track = commands.add_parser("track", help="replay a file through SIM")
    track.add_argument("file")
    track.add_argument("--algorithm", choices=_ALGORITHMS, default="sic")
    track.add_argument("--window", type=int, default=5_000)
    track.add_argument("--slide", type=int, default=500)
    track.add_argument("-k", type=int, default=10)
    track.add_argument("--beta", type=float, default=0.2)
    return parser


def _cmd_generate(args) -> int:
    from repro.datasets.surrogates import reddit_like, twitter_like
    from repro.datasets.synthetic import syn_n, syn_o

    makers = {
        "reddit": reddit_like,
        "twitter": twitter_like,
        "syn-o": syn_o,
        "syn-n": syn_n,
    }
    output = pathlib.Path(args.output)
    writer = _writer_for(output)
    stream = makers[args.dataset](
        n_users=args.users, n_actions=args.actions, seed=args.seed
    )
    count = writer(stream, output)
    print(f"wrote {count} {args.dataset} actions to {output}")
    return 0


def _cmd_stats(args) -> int:
    from repro.datasets.stats import stream_statistics

    path = pathlib.Path(args.file)
    stats = stream_statistics(_reader_for(path))
    print(f"{'users':<22}{stats.users:,}")
    print(f"{'actions':<22}{stats.actions:,}")
    print(f"{'mean resp. distance':<22}{stats.mean_response_distance:.1f}")
    print(f"{'mean cascade depth':<22}{stats.mean_depth:.2f}")
    print(f"{'max cascade depth':<22}{stats.max_depth}")
    print(f"{'root fraction':<22}{stats.root_fraction:.2%}")
    return 0


def _cmd_convert(args) -> int:
    source = pathlib.Path(args.source)
    target = pathlib.Path(args.target)
    writer = _writer_for(target)
    count = writer(_reader_for(source), target)
    print(f"converted {count} actions: {source} -> {target}")
    return 0


def _cmd_track(args) -> int:
    from repro.core.greedy import WindowedGreedy
    from repro.core.ic import InfluentialCheckpoints
    from repro.core.sic import SparseInfluentialCheckpoints

    path = pathlib.Path(args.file)
    if args.algorithm == "sic":
        algorithm = SparseInfluentialCheckpoints(
            window_size=args.window, k=args.k, beta=args.beta
        )
    elif args.algorithm == "ic":
        algorithm = InfluentialCheckpoints(
            window_size=args.window, k=args.k, beta=args.beta
        )
    else:
        algorithm = WindowedGreedy(window_size=args.window, k=args.k)
    print(f"{'time':>10}  {'influence':>10}  seeds")
    for batch in batched(_reader_for(path), args.slide):
        algorithm.process(batch)
        answer = algorithm.query()
        seeds = ",".join(str(u) for u in sorted(answer.seeds))
        print(f"{answer.time:>10}  {answer.value:>10.0f}  [{seeds}]")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "stats": _cmd_stats,
        "convert": _cmd_convert,
        "track": _cmd_track,
    }
    try:
        return handlers[args.command](args)
    except (ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
