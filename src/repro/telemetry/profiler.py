"""Continuous wall-clock sampling profiler (collapsed stacks, bounded).

A daemon thread wakes every ``1 / hz`` seconds, snapshots
``sys._current_frames()``, and folds each thread's stack into a
collapsed-stack counter — the ``semicolon;separated;frames count``
format flamegraph tooling consumes directly.  Stacks are prefixed with a
*thread tag* derived from the thread's name (``repro-ingest`` executor
threads → ``ingest``, the service event loop → ``server``,
``repro-shard-<i>`` workers → ``shard-<i>``, the sampler itself is
skipped), so a profile answers "where does the ingest loop spend its
wall time" without symbol archaeology.

Memory is bounded: at most ``max_stacks`` distinct collapsed stacks are
retained; further novel stacks fold into a per-tag ``<other>`` bucket
(counted, never silently dropped).  Frames deeper than ``max_depth``
truncate with a ``<truncated>`` marker.

Wall-clock sampling observes *all* threads every tick — including ones
blocked on locks, sockets, or the GIL — which is exactly what a latency
investigation wants; it is not a CPU profiler.  Overhead at the default
100 Hz is one ``sys._current_frames()`` sweep plus a few dict updates
per tick (see the non-gated ``observability_overhead`` figure in
``BENCH_core_ops.json``).

``window(seconds)`` profiles a fresh interval by snapshot-diffing the
counters — the ``GET /debug/profile?seconds=N`` endpoint and the
``repro-stream profile`` CLI both read this.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["SamplingProfiler", "DEFAULT_THREAD_TAGS", "collapse_counts"]

#: thread-name prefix -> tag, first match wins (checked in order).
DEFAULT_THREAD_TAGS: Tuple[Tuple[str, str], ...] = (
    ("repro-ingest", "ingest"),
    ("repro-shard", ""),  # empty tag: keep the full repro-shard-<i> name
    ("repro-service", "server"),
    ("repro-flight-recorder", "recorder"),
    ("MainThread", "main"),
    ("asyncio", "executor"),
)

_SELF_THREAD = "repro-profiler"


def collapse_counts(counts: Dict[str, int]) -> str:
    """Render a counts dict as collapsed-stack text, most samples first."""
    lines = [
        f"{stack} {count}"
        for stack, count in sorted(
            counts.items(), key=lambda kv: (-kv[1], kv[0])
        )
    ]
    return "\n".join(lines) + ("\n" if lines else "")


class SamplingProfiler:
    """Bounded collapsed-stack aggregation over ``sys._current_frames()``.

    Single writer (the sampler thread, or a test calling
    :meth:`sample_once`); readers snapshot-copy the counts dict.

    Args:
        hz: Target samples per second.
        max_stacks: Distinct collapsed stacks retained before novel ones
            fold into ``<tag>;<other>``.
        max_depth: Frames kept per stack (deepest-first truncation).
        tags: ``(thread-name-prefix, tag)`` pairs; an empty tag keeps the
            thread's own name.  Unmatched threads tag as ``other``.
        clock: Monotonic clock (injectable for tests).
    """

    def __init__(
        self,
        hz: float = 100.0,
        max_stacks: int = 10_000,
        max_depth: int = 64,
        tags: Tuple[Tuple[str, str], ...] = DEFAULT_THREAD_TAGS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if hz <= 0:
            raise ValueError(f"hz must be positive, got {hz}")
        if max_stacks < 1:
            raise ValueError(f"max_stacks must be >= 1, got {max_stacks}")
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.hz = float(hz)
        self.max_stacks = max_stacks
        self.max_depth = max_depth
        self.tags = tuple(tags)
        self._clock = clock
        self._counts: Dict[str, int] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.samples = 0  # sweeps taken
        self.stack_samples = 0  # thread-stacks folded in
        self.overflow_samples = 0  # samples folded into <other>
        self.started_monotonic: Optional[float] = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the sampler daemon thread is live."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start the sampler daemon (idempotent)."""
        if self.running:
            return
        self._stop.clear()
        if self.started_monotonic is None:
            self.started_monotonic = self._clock()
        self._thread = threading.Thread(
            target=self._run, name=_SELF_THREAD, daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop and join the sampler daemon (idempotent)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout)
        self._thread = None

    def _run(self) -> None:
        period = 1.0 / self.hz
        next_due = self._clock() + period
        while not self._stop.wait(max(next_due - self._clock(), 0.0)):
            try:
                self.sample_once()
            except Exception:  # a dying thread mid-walk must not stop us
                pass
            next_due += period
            if next_due < self._clock():
                # Behind schedule (GIL contention, suspend): skip the
                # missed ticks instead of burst-sampling the same instant.
                next_due = self._clock() + period

    # -- sampling ----------------------------------------------------------

    def _tag_for(self, name: str) -> str:
        for prefix, tag in self.tags:
            if name.startswith(prefix):
                return tag or name
        return "other"

    def sample_once(self) -> int:
        """Take one sweep over every live thread; returns stacks folded."""
        # Thread names, resolved per sweep: threads can be born or die
        # between sweeps, and a missing entry (died mid-sample) is skipped.
        names = {t.ident: t.name for t in threading.enumerate()}
        frames = sys._current_frames()
        folded = 0
        for ident, frame in frames.items():
            name = names.get(ident)
            if name is None or name == _SELF_THREAD:
                continue
            tag = self._tag_for(name)
            parts: List[str] = []
            depth = 0
            while frame is not None:
                if depth >= self.max_depth:
                    parts.append("<truncated>")
                    break
                code = frame.f_code
                parts.append(f"{code.co_name} ({code.co_filename.rsplit('/', 1)[-1]})")
                frame = frame.f_back
                depth += 1
            parts.append(tag)
            stack = ";".join(reversed(parts))
            if stack in self._counts:
                self._counts[stack] += 1
            elif len(self._counts) < self.max_stacks:
                self._counts[stack] = 1
            else:
                overflow = f"{tag};<other>"
                self._counts[overflow] = self._counts.get(overflow, 0) + 1
                self.overflow_samples += 1
            folded += 1
        self.samples += 1
        self.stack_samples += folded
        return folded

    # -- read path ---------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """A point-in-time copy of the collapsed-stack counters."""
        return dict(self._counts)

    def collapsed(self) -> str:
        """All retained stacks as collapsed text (whole profiler lifetime)."""
        return collapse_counts(self._counts)

    def window(self, seconds: float) -> str:
        """Collapsed stacks of a fresh ``seconds``-long window (blocking).

        Snapshot-diffs the counters around a sleep; the sampler keeps
        running throughout, so concurrent whole-lifetime readers are
        unaffected.  With the sampler stopped, the window is sampled
        inline at the configured rate so the call still returns data.
        """
        if seconds <= 0:
            raise ValueError(f"seconds must be positive, got {seconds}")
        before = self.counts()
        if self.running:
            time.sleep(seconds)
        else:
            deadline = self._clock() + seconds
            period = 1.0 / self.hz
            while self._clock() < deadline:
                self.sample_once()
                time.sleep(period)
        after = self.counts()
        delta = {
            stack: count - before.get(stack, 0)
            for stack, count in after.items()
            if count - before.get(stack, 0) > 0
        }
        return collapse_counts(delta)

    def stats(self) -> Dict[str, object]:
        """Profiler health counters for ``/metrics``."""
        elapsed = (
            self._clock() - self.started_monotonic
            if self.started_monotonic is not None
            else 0.0
        )
        return {
            "running": self.running,
            "hz": self.hz,
            "samples": self.samples,
            "stack_samples": self.stack_samples,
            "distinct_stacks": len(self._counts),
            "max_stacks": self.max_stacks,
            "overflow_samples": self.overflow_samples,
            "effective_hz": round(self.samples / elapsed, 1) if elapsed else 0.0,
        }
