"""Metric primitives and a labeled registry.

Overhead contract (see DESIGN.md "Telemetry plane"):

- ``Histogram.observe`` is a bisect into a **preallocated** bucket-count
  list plus three scalar updates — no allocation, no lock.
- Metrics assume the repo-wide single-writer invariant: one thread
  mutates a given metric.  Readers (the HTTP scrape path) only ever
  copy scalars and lists, which is safe under CPython without locks;
  a snapshot is internally consistent per metric, not across metrics.
- Registry *creation* (get-or-create of a labeled child) takes a small
  lock; wire-up happens at construction time, not per slide.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

# Log-spaced 1/2.5/5 ladder from 100 microseconds to one minute.  Fixed
# at module import so every histogram shares one bounds tuple and the
# prometheus ``le`` labels line up across scrapes.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0,
    10.0, 30.0, 60.0,
)


class Counter:
    """Monotone counter (floats allowed: busy-seconds accumulate here)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount


class Gauge:
    """Point-in-time value (queue depth, shards degraded, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the gauge."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` (default 1) from the gauge."""
        self.value -= amount


class Histogram:
    """Fixed-bucket latency histogram with exact count/sum/max.

    Bucket counts are *non-cumulative* internally (one ``+= 1`` per
    observe); cumulative sums are computed at snapshot/render time,
    off the hot path.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "max")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be strictly increasing")
        self.bounds = bounds
        # One extra slot for the +Inf overflow bucket.
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        """Record one value: one bucket bump plus count/sum/max updates."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value > self.max:
            self.max = value

    def percentile(self, q: float) -> float:
        """Linear-interpolated quantile estimate, ``q`` in [0, 1].

        Within a bucket the mass is assumed uniform between the previous
        bound and the bucket's own bound; the overflow bucket reports
        the observed max.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        total = self.count
        if total == 0:
            return 0.0
        rank = q * total
        seen = 0
        lo = 0.0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                if i < len(self.bounds):
                    lo = self.bounds[i]
                continue
            if seen + bucket_count >= rank:
                if i >= len(self.bounds):  # overflow bucket
                    return self.max
                hi = self.bounds[i]
                fraction = (rank - seen) / bucket_count
                return min(lo + (hi - lo) * fraction, self.max if self.max else hi)
            seen += bucket_count
            lo = self.bounds[i] if i < len(self.bounds) else lo
        return self.max

    def summary(self) -> Dict[str, float]:
        """JSON-friendly digest: count, sum, mean, p50/p95/p99, max."""
        count = self.count
        return {
            "count": count,
            "sum": round(self.sum, 6),
            "mean": round(self.sum / count, 6) if count else 0.0,
            "p50": round(self.percentile(0.50), 6),
            "p95": round(self.percentile(0.95), 6),
            "p99": round(self.percentile(0.99), 6),
            "max": round(self.max, 6),
        }

    def cumulative_counts(self) -> List[int]:
        """Prometheus-style running bucket totals (last = total count)."""
        out: List[int] = []
        running = 0
        for bucket_count in self.counts:
            running += bucket_count
            out.append(running)
        return out


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

LabelPairs = Tuple[Tuple[str, str], ...]


class _Family:
    """All children of one metric name, keyed by sorted label pairs."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        buckets: Optional[Sequence[float]],
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.children: Dict[LabelPairs, object] = {}

    def child(self, labels: LabelPairs):
        metric = self.children.get(labels)
        if metric is None:
            if self.kind == "histogram":
                metric = Histogram(self.buckets or DEFAULT_LATENCY_BUCKETS)
            else:
                metric = _KINDS[self.kind]()
            self.children[labels] = metric
        return metric


def _label_key(labels: Dict[str, str]) -> LabelPairs:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Get-or-create registry of labeled metric families.

    ``counter`` / ``gauge`` / ``histogram`` return the live metric
    object; hold on to it at wire-up time rather than re-resolving
    per observation.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        buckets: Optional[Sequence[float]] = None,
    ) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}"
                )
            return family

    def counter(self, name: str, help_text: str = "", **labels: str) -> Counter:
        """Get or create the counter ``name`` with these labels."""
        family = self._family(name, "counter", help_text)
        with self._lock:
            return family.child(_label_key(labels))  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str = "", **labels: str) -> Gauge:
        """Get or create the gauge ``name`` with these labels."""
        family = self._family(name, "gauge", help_text)
        with self._lock:
            return family.child(_label_key(labels))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Optional[Sequence[float]] = None,
        **labels: str,
    ) -> Histogram:
        """Get or create the histogram ``name`` with these labels."""
        family = self._family(name, "histogram", help_text, buckets)
        with self._lock:
            return family.child(_label_key(labels))  # type: ignore[return-value]

    def attach(
        self,
        name: str,
        kind: str,
        metric,
        help_text: str = "",
        **labels: str,
    ):
        """Adopt an externally-owned metric (e.g. a layer's histogram).

        Layers that cannot see the registry at construction time own
        their metric objects directly; the server grafts them in here so
        one snapshot/exposition covers everything.
        """
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        family = self._family(
            name, kind, help_text, getattr(metric, "bounds", None)
        )
        with self._lock:
            family.children[_label_key(labels)] = metric
        return metric

    def families(self) -> Iterable[_Family]:
        """A point-in-time copy of every registered family."""
        with self._lock:
            return list(self._families.values())

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly snapshot: histograms as p50/p95/p99 summaries."""
        out: Dict[str, object] = {}
        for family in self.families():
            entries = {}
            for labels, metric in list(family.children.items()):
                key = ",".join(f"{k}={v}" for k, v in labels) or "_"
                if isinstance(metric, Histogram):
                    entries[key] = metric.summary()
                else:
                    value = metric.value  # type: ignore[attr-defined]
                    entries[key] = round(value, 6)
            out[family.name] = entries if set(entries) != {"_"} else entries["_"]
        return out
