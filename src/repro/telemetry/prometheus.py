"""Prometheus text exposition (version 0.0.4) for a ``MetricsRegistry``.

Renders ``# HELP`` / ``# TYPE`` headers and one sample line per child;
histograms expand into cumulative ``_bucket{le=...}`` series plus
``_sum`` and ``_count``, matching what a stock Prometheus scraper
expects from a ``/metrics`` endpoint.
"""

from __future__ import annotations

from typing import List

from repro.telemetry.metrics import Histogram, MetricsRegistry

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(labels, extra: str = "") -> str:
    parts = [f'{name}="{_escape_label_value(value)}"' for name, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The whole registry as one prometheus text-exposition document.

    Families render in name order with ``# HELP`` / ``# TYPE`` headers;
    histogram children expand into cumulative ``_bucket{le=...}`` series
    plus exact ``_sum`` / ``_count``.  The result always ends with a
    trailing newline, as the exposition format requires.
    """
    lines: List[str] = []
    for family in sorted(registry.families(), key=lambda f: f.name):
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, metric in sorted(family.children.items()):
            if isinstance(metric, Histogram):
                cumulative = metric.cumulative_counts()
                for bound, running in zip(metric.bounds, cumulative):
                    label_str = _format_labels(labels, f'le="{_format_value(bound)}"')
                    lines.append(f"{family.name}_bucket{label_str} {running}")
                inf_labels = _format_labels(labels, 'le="+Inf"')
                lines.append(f"{family.name}_bucket{inf_labels} {cumulative[-1]}")
                label_str = _format_labels(labels)
                lines.append(f"{family.name}_sum{label_str} {repr(metric.sum)}")
                lines.append(f"{family.name}_count{label_str} {metric.count}")
            else:
                label_str = _format_labels(labels)
                value = _format_value(metric.value)  # type: ignore[attr-defined]
                lines.append(f"{family.name}{label_str} {value}")
    return "\n".join(lines) + "\n"
