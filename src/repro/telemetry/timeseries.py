"""The metrics flight recorder: retained time-series over the registry.

PR 8's telemetry plane is *instantaneous* — a scrape shows the state now.
The :class:`MetricsFlightRecorder` adds memory: a background sampler
visits the :class:`~repro.telemetry.metrics.MetricsRegistry` on a fixed
interval and appends one point per derived series into multi-resolution
ring buffers, so the system itself can answer "what did slide p99 look
like over the last ten minutes" — the sensor layer the SLO monitor
(:mod:`repro.telemetry.slo`) and the ``repro-stream top`` console read.

Derivation per metric kind, at each sample tick:

* **counter** — the raw cumulative value is kept (series ``name``) and a
  windowed rate is derived from the delta against the previous sample
  (series ``name:rate``, per second);
* **gauge** — stored as-is (series ``name``);
* **histogram** — the *delta* histogram against the previous sample's
  bucket counts yields interval-local ``:p50``/``:p95``/``:p99`` series
  plus an observation ``:rate``; an interval with no observations
  records 0 (nothing happened, nothing violated).

Labeled children become separate series keyed ``name{k="v",...}`` with
the derivation suffix appended after the label block.

Memory bound (see DESIGN.md): every ring is a preallocated
``capacity``-slot array pair; the recorder's footprint is
``series x resolutions x capacity`` floats plus one previous-sample
scalar (or bucket list) per raw metric — nothing grows with uptime.

Clock contract: sample timestamps are taken from ``time.monotonic()``
and exported as wall-clock times through a single ``(wall, monotonic)``
anchor captured at construction, so an NTP step mid-run shifts *no*
retained point and never reorders a series.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "Resolution",
    "SeriesRing",
    "MetricsFlightRecorder",
    "DEFAULT_RESOLUTIONS",
    "resolutions_for",
]

#: Multi-resolution retention ladder: 1 s points for the last 2 minutes,
#: 10 s points for the last hour, 60 s points for the last 12 hours.
DEFAULT_RESOLUTIONS: Tuple[Tuple[float, int], ...] = (
    (1.0, 120),
    (10.0, 360),
    (60.0, 720),
)


def resolutions_for(
    interval: float,
    defaults: Tuple[Tuple[float, int], ...] = DEFAULT_RESOLUTIONS,
) -> Tuple[Tuple[float, int], ...]:
    """A retention ladder whose base level matches the sampling interval.

    Keeps every default coarse level that is still strictly coarser than
    the base, so a fast-sampling server (tests, smoke runs) gets the same
    ladder shape without violating the strictly-increasing contract.
    """
    ladder = [(float(interval), defaults[0][1])]
    ladder.extend((i, c) for i, c in defaults[1:] if i > float(interval))
    return tuple(ladder)

_QUANTILE_SUFFIXES = (":p50", ":p95", ":p99")


class Resolution:
    """One retention level: points every ``interval`` s, ``capacity`` kept."""

    __slots__ = ("interval", "capacity")

    def __init__(self, interval: float, capacity: int) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.interval = float(interval)
        self.capacity = int(capacity)

    @property
    def window_seconds(self) -> float:
        """The span this level retains."""
        return self.interval * self.capacity


class SeriesRing:
    """Fixed-memory ring of ``(monotonic_time, value)`` points.

    Preallocated at construction; ``append`` overwrites the oldest slot.
    Writers are the sampler thread only; readers copy via :meth:`points`
    (CPython list reads are atomic per-slot, so a reader sees a possibly
    off-by-one-point but never torn ring).
    """

    __slots__ = ("capacity", "_times", "_values", "_next", "count")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._times: List[float] = [0.0] * capacity
        self._values: List[float] = [0.0] * capacity
        self._next = 0
        self.count = 0

    def append(self, t: float, value: float) -> None:
        """Store one point, evicting the oldest when full."""
        slot = self._next
        self._times[slot] = t
        self._values[slot] = value
        self._next = (slot + 1) % self.capacity
        if self.count < self.capacity:
            self.count += 1

    def points(self, since: Optional[float] = None) -> List[Tuple[float, float]]:
        """Retained points oldest-first, optionally only those at/after ``since``."""
        if self.count < self.capacity:
            start, n = 0, self.count
        else:
            start, n = self._next, self.capacity
        out = []
        for i in range(n):
            slot = (start + i) % self.capacity
            t = self._times[slot]
            if since is None or t >= since:
                out.append((t, self._values[slot]))
        return out

    def latest(self) -> Optional[Tuple[float, float]]:
        """The newest point, or None when empty."""
        if self.count == 0:
            return None
        slot = (self._next - 1) % self.capacity
        return (self._times[slot], self._values[slot])


class _Series:
    """One derived series: a ring per resolution plus aggregation state.

    ``agg`` is how fine points fold into a coarse point: ``"mean"`` for
    rates/gauges/raw counters, ``"max"`` for latency quantiles (a mean of
    p99s would bury exactly the spike the retention exists to show).
    """

    __slots__ = ("key", "agg", "rings", "_pending")

    def __init__(self, key: str, agg: str, resolutions: Sequence[Resolution]):
        self.key = key
        self.agg = agg
        self.rings: List[SeriesRing] = [
            SeriesRing(r.capacity) for r in resolutions
        ]
        # Per coarse level: [accumulated value, points, bucket_start].
        self._pending: List[List[float]] = [
            [0.0, 0.0, -1.0] for _ in resolutions
        ]

    def record(self, t: float, value: float, resolutions: Sequence[Resolution]) -> None:
        """Append to the base ring; roll completed coarse buckets up."""
        self.rings[0].append(t, value)
        for level in range(1, len(resolutions)):
            interval = resolutions[level].interval
            pending = self._pending[level]
            bucket = t - (t % interval)
            if pending[2] < 0:
                pending[2] = bucket
            elif bucket != pending[2]:
                # The previous coarse bucket is complete: emit one point
                # stamped at its start, then begin the new bucket.
                if pending[1]:
                    self.rings[level].append(
                        pending[2],
                        pending[0] / pending[1]
                        if self.agg == "mean"
                        else pending[0],
                    )
                pending[0] = 0.0
                pending[1] = 0.0
                pending[2] = bucket
            if self.agg == "mean":
                pending[0] += value
            else:
                pending[0] = max(pending[0], value) if pending[1] else value
            pending[1] += 1.0


def _labels_suffix(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in labels) + "}"


def _delta_percentile(
    bounds: Sequence[float],
    delta_counts: Sequence[int],
    delta_max: float,
    q: float,
) -> float:
    """Interpolated quantile of a delta histogram (bucket counts diff)."""
    total = sum(delta_counts)
    if total == 0:
        return 0.0
    rank = q * total
    seen = 0
    lo = 0.0
    for i, bucket_count in enumerate(delta_counts):
        if bucket_count == 0:
            if i < len(bounds):
                lo = bounds[i]
            continue
        if seen + bucket_count >= rank:
            if i >= len(bounds):  # overflow bucket
                return delta_max
            hi = bounds[i]
            fraction = (rank - seen) / bucket_count
            value = lo + (hi - lo) * fraction
            return min(value, delta_max) if delta_max else value
        seen += bucket_count
        lo = bounds[i] if i < len(bounds) else lo
    return delta_max


class MetricsFlightRecorder:
    """Sample a registry into fixed-memory multi-resolution time-series.

    Single sampler writer: either the internal daemon thread
    (:meth:`start`) or a test driving :meth:`sample_once` — never both at
    once.  Readers (:meth:`history`, :meth:`export`, the SLO monitor) are
    lock-free copies.

    Args:
        registry: The live registry to sample.
        interval: Base sampling cadence in seconds.
        resolutions: ``(interval, capacity)`` ladder; the first entry is
            the base resolution and its interval should equal ``interval``.
        pre_sample: Called before each sample (the server passes its
            ``_sync_registry`` so scalar mirrors are fresh).
        post_sample: Called after each sample with the sample's monotonic
            time (the SLO monitor evaluates here, on the sampler thread).
        clock: Monotonic clock (injectable for tests).
        wall_clock: Wall clock used once for the export anchor.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        interval: float = 1.0,
        resolutions: Sequence[Tuple[float, int]] = DEFAULT_RESOLUTIONS,
        pre_sample: Optional[Callable[[], None]] = None,
        post_sample: Optional[Callable[[float], None]] = None,
        clock: Callable[[], float] = time.monotonic,
        wall_clock: Callable[[], float] = time.time,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if not resolutions:
            raise ValueError("at least one resolution level is required")
        self.interval = float(interval)
        self.resolutions = [Resolution(i, c) for i, c in resolutions]
        for prev, nxt in zip(self.resolutions, self.resolutions[1:]):
            if nxt.interval <= prev.interval:
                raise ValueError(
                    "resolution intervals must be strictly increasing, got "
                    f"{[r.interval for r in self.resolutions]}"
                )
        self._registry = registry
        self._pre_sample = pre_sample
        self._post_sample = post_sample
        self._clock = clock
        # One anchor pair for the recorder's lifetime: every exported
        # timestamp is anchor_wall + (t_mono - anchor_mono).  An NTP step
        # after construction cannot reorder or shift retained points.
        self.anchor_monotonic = clock()
        self.anchor_wall = wall_clock()
        self._series: Dict[str, _Series] = {}
        # Raw previous-sample state per metric child, for deltas.
        self._prev_counter: Dict[str, float] = {}
        self._prev_hist: Dict[str, Tuple[List[int], int, float]] = {}
        self._prev_t: Optional[float] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.samples_taken = 0
        self.last_sample_seconds = 0.0  # how long the last sweep took
        self.sampler_lag_seconds = 0.0  # how far behind schedule it ran

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the sampler daemon thread is live."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start the sampler daemon (idempotent)."""
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-flight-recorder", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop and join the sampler daemon (idempotent)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout)
        self._thread = None

    def _run(self) -> None:
        next_due = self._clock() + self.interval
        while not self._stop.wait(max(next_due - self._clock(), 0.0)):
            started = self._clock()
            self.sampler_lag_seconds = max(started - next_due, 0.0)
            try:
                self.sample_once(started)
            except Exception:  # one bad sweep must not kill retention
                pass
            next_due += self.interval
            if next_due < self._clock() - self.interval:
                # Fell more than a full period behind (suspend, GC storm):
                # resynchronise instead of burst-sampling stale intervals.
                next_due = self._clock() + self.interval

    # -- sampling ----------------------------------------------------------

    def sample_once(self, now: Optional[float] = None) -> None:
        """Take one sample sweep over the registry (sampler thread/tests)."""
        if self._pre_sample is not None:
            self._pre_sample()
        t = self._clock() if now is None else now
        sweep_started = time.perf_counter()
        dt = None if self._prev_t is None else t - self._prev_t
        for family in self._registry.families():
            for labels, metric in list(family.children.items()):
                key = family.name + _labels_suffix(labels)
                if isinstance(metric, Histogram):
                    self._sample_histogram(key, metric, t)
                elif isinstance(metric, Counter):
                    self._sample_counter(key, metric.value, t, dt)
                elif isinstance(metric, Gauge):
                    self._record(key, "mean", t, float(metric.value))
        self._prev_t = t
        self.samples_taken += 1
        self.last_sample_seconds = time.perf_counter() - sweep_started
        if self._post_sample is not None:
            self._post_sample(t)

    def _sample_counter(
        self, key: str, value: float, t: float, dt: Optional[float]
    ) -> None:
        value = float(value)
        self._record(key, "mean", t, value)
        previous = self._prev_counter.get(key)
        if previous is not None and dt and dt > 0:
            delta = value - previous
            # A counter that went backwards was reset (restart/heal):
            # treat the sample as a fresh base rather than a negative rate.
            rate = delta / dt if delta >= 0 else 0.0
            self._record(key + ":rate", "mean", t, rate)
        self._prev_counter[key] = value

    def _sample_histogram(self, key: str, metric: Histogram, t: float) -> None:
        counts = list(metric.counts)  # one slice: consistent-enough copy
        count = metric.count
        maximum = metric.max
        previous = self._prev_hist.get(key)
        if previous is not None:
            prev_counts, prev_count, _prev_max = previous
            delta_counts = [
                max(c - p, 0) for c, p in zip(counts, prev_counts)
            ]
            observations = max(count - prev_count, 0)
            dt = t - self._prev_t if self._prev_t is not None else None
            if dt and dt > 0:
                self._record(
                    key + ":rate", "mean", t, observations / dt
                )
            for suffix, q in zip(_QUANTILE_SUFFIXES, (0.50, 0.95, 0.99)):
                self._record(
                    key + suffix,
                    "max",
                    t,
                    _delta_percentile(metric.bounds, delta_counts, maximum, q)
                    if observations
                    else 0.0,
                )
        self._prev_hist[key] = (counts, count, maximum)

    def _record(self, key: str, agg: str, t: float, value: float) -> None:
        series = self._series.get(key)
        if series is None:
            series = _Series(key, agg, self.resolutions)
            self._series[key] = series
        series.record(t, value, self.resolutions)

    # -- read path ---------------------------------------------------------

    def series_names(self) -> List[str]:
        """Every retained series key, sorted."""
        return sorted(self._series)

    def to_wall(self, monotonic_t: float) -> float:
        """Export a sample time through the recorder's wall anchor."""
        return self.anchor_wall + (monotonic_t - self.anchor_monotonic)

    def history(
        self,
        series: str,
        window: Optional[float] = None,
        resolution: Optional[float] = None,
    ) -> Dict[str, object]:
        """Retained points of one series, as wall-stamped ``[t, v]`` pairs.

        Args:
            series: Series key (see :meth:`series_names`).
            window: Only points within the last this-many seconds; picks
                the finest resolution level that spans the window unless
                ``resolution`` pins one.
            resolution: Exact resolution interval to read (must match a
                configured level).

        Raises:
            KeyError: Unknown series.
            ValueError: ``resolution`` names no configured level.
        """
        entry = self._series.get(series)
        if entry is None:
            raise KeyError(series)
        if resolution is not None:
            for level, r in enumerate(self.resolutions):
                if r.interval == float(resolution):
                    break
            else:
                raise ValueError(
                    f"no resolution level at {resolution}s; configured: "
                    f"{[r.interval for r in self.resolutions]}"
                )
        elif window is None:
            level = 0
        else:
            level = len(self.resolutions) - 1
            for i, r in enumerate(self.resolutions):
                if r.window_seconds >= window:
                    level = i
                    break
        since = None
        if window is not None:
            since = self._clock() - window
        raw = entry.rings[level].points(since)
        if not raw and resolution is None and level > 0:
            # A window-picked coarse level may not have completed its
            # first bucket yet (coarse points are emitted one bucket
            # late); fall back to the finest level with data rather
            # than serve an empty chart over a non-empty series.
            for finer in range(level):
                raw = entry.rings[finer].points(since)
                if raw:
                    level = finer
                    break
        points = [
            [round(self.to_wall(t), 3), round(v, 6)] for t, v in raw
        ]
        return {
            "series": series,
            "resolution_seconds": self.resolutions[level].interval,
            "agg": entry.agg,
            "points": points,
        }

    def latest(self, series: str) -> Optional[float]:
        """The newest retained value of one series (None when absent)."""
        entry = self._series.get(series)
        if entry is None:
            return None
        point = entry.rings[0].latest()
        return point[1] if point is not None else None

    def window_values(self, series: str, window: float) -> List[float]:
        """Base-resolution values within the last ``window`` seconds.

        The SLO monitor's read path: values only, newest-resolution ring,
        no wall conversion.
        """
        entry = self._series.get(series)
        if entry is None:
            return []
        since = self._clock() - window
        return [v for _t, v in entry.rings[0].points(since)]

    def export(self, window: Optional[float] = None) -> Dict[str, object]:
        """Every series' history in one JSON document."""
        return {
            "interval_seconds": self.interval,
            "resolutions": [
                {"interval_seconds": r.interval, "capacity": r.capacity}
                for r in self.resolutions
            ],
            "anchor_wall": round(self.anchor_wall, 3),
            "samples_taken": self.samples_taken,
            "series": {
                name: self.history(name, window=window)
                for name in self.series_names()
            },
        }

    def stats(self) -> Dict[str, object]:
        """Recorder health counters for ``/metrics``."""
        return {
            "running": self.running,
            "interval_seconds": self.interval,
            "samples_taken": self.samples_taken,
            "series": len(self._series),
            "sampler_lag_seconds": round(self.sampler_lag_seconds, 6),
            "last_sample_seconds": round(self.last_sample_seconds, 6),
            "resolutions": [
                {"interval_seconds": r.interval, "capacity": r.capacity}
                for r in self.resolutions
            ],
        }


def iter_series_keys(recorder: MetricsFlightRecorder, prefix: str) -> Iterable[str]:
    """Series keys starting with ``prefix`` (console/test convenience)."""
    return [k for k in recorder.series_names() if k.startswith(prefix)]
