"""Declarative SLOs evaluated as multi-window burn rates over the recorder.

An :class:`SLO` names one flight-recorder series (see
:mod:`repro.telemetry.timeseries`), a per-sample *violation* threshold,
and an objective — the fraction of samples that must be good.  The
:class:`SLOMonitor` re-evaluates every objective after each recorder
sample, on the sampler thread:

* ``bad fraction`` over a window = violating samples / samples;
* ``burn rate`` = bad fraction / error budget, where the budget is
  ``1 - objective`` (a burn of 1.0 exactly exhausts the budget over the
  window; 6.0 burns it six times as fast);
* the alert **raises** when *both* the fast and the slow window burn at
  or above ``burn`` — the classic fast+slow guard: the slow window
  stops a single hiccup from paging, the fast window makes the alert
  clear quickly once the condition ends;
* the alert **clears** when the fast window's burn drops below ``burn``
  (recovery is observed at fast-window latency, not slow).

Raises and clears are appended to a structured JSONL alert log and
mirrored into the metrics registry (``repro_alert_active{slo=...}``,
``repro_slo_burn_rate{slo=...,window=...}``) so alert state survives in
every surface: ``/healthz`` (503 on an active page-severity alert),
``/metrics`` JSON and prometheus, and the ops console.

Windows shorter than one sampling interval hold zero samples and never
fire; the monitor requires at least ``min_samples`` points in a window
before trusting it (an empty ring at startup is "no data", not "0%
violations are a lie" — burn is 0 until data exists).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.timeseries import MetricsFlightRecorder

__all__ = ["SLO", "Alert", "AlertLog", "SLOMonitor", "default_slos", "parse_slo_spec"]

_SEVERITIES = ("page", "ticket")


@dataclass(frozen=True, slots=True)
class SLO:
    """One objective over one retained series.

    Attributes:
        name: Alert name (``repro_alert_active{slo=<name>}``).
        series: Flight-recorder series key, e.g.
            ``repro_slide_seconds:p99``.
        threshold: A sample is *violating* when it exceeds this value
            (strictly greater).
        objective: Fraction of samples that must be non-violating;
            the error budget is ``1 - objective``.
        fast_window: Seconds of the fast burn window.
        slow_window: Seconds of the slow burn window (>= fast).
        burn: Burn-rate multiple at which the alert fires.
        severity: ``"page"`` (surfaces as 503 in ``/healthz``) or
            ``"ticket"`` (recorded and exported, never 503s).
        min_samples: Fewest window samples before a window is trusted.
    """

    name: str
    series: str
    threshold: float
    objective: float = 0.99
    fast_window: float = 60.0
    slow_window: float = 600.0
    burn: float = 6.0
    severity: str = "page"
    min_samples: int = 2

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("SLO name must be non-empty")
        if not self.series:
            raise ValueError(f"SLO {self.name!r}: series must be non-empty")
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"SLO {self.name!r}: objective must be in (0, 1), "
                f"got {self.objective}"
            )
        if self.fast_window <= 0 or self.slow_window < self.fast_window:
            raise ValueError(
                f"SLO {self.name!r}: need 0 < fast_window <= slow_window, "
                f"got {self.fast_window}/{self.slow_window}"
            )
        if self.burn <= 0:
            raise ValueError(
                f"SLO {self.name!r}: burn must be positive, got {self.burn}"
            )
        if self.severity not in _SEVERITIES:
            raise ValueError(
                f"SLO {self.name!r}: severity must be one of {_SEVERITIES}, "
                f"got {self.severity!r}"
            )
        if self.min_samples < 1:
            raise ValueError(
                f"SLO {self.name!r}: min_samples must be >= 1, "
                f"got {self.min_samples}"
            )

    def to_json(self) -> dict:
        """JSON description (the ``/metrics`` objective catalog)."""
        return {
            "name": self.name,
            "series": self.series,
            "threshold": self.threshold,
            "objective": self.objective,
            "fast_window_seconds": self.fast_window,
            "slow_window_seconds": self.slow_window,
            "burn": self.burn,
            "severity": self.severity,
        }


class Alert:
    """Mutable state of one objective's alert."""

    __slots__ = (
        "slo",
        "active",
        "since_monotonic",
        "raised_count",
        "fast_burn",
        "slow_burn",
        "last_value",
    )

    def __init__(self, slo: SLO) -> None:
        self.slo = slo
        self.active = False
        self.since_monotonic: Optional[float] = None
        self.raised_count = 0
        self.fast_burn = 0.0
        self.slow_burn = 0.0
        self.last_value: Optional[float] = None

    def to_json(self) -> dict:
        """JSON state for ``/metrics`` and ``/healthz``."""
        return {
            "slo": self.slo.name,
            "series": self.slo.series,
            "severity": self.slo.severity,
            "active": self.active,
            "fast_burn": round(self.fast_burn, 3),
            "slow_burn": round(self.slow_burn, 3),
            "last_value": self.last_value,
            "raised_count": self.raised_count,
        }


class AlertLog:
    """Append-only JSONL sink for alert transitions (one dict per line)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._fh = open(path, "a", encoding="utf-8")
        self.events_written = 0

    def emit(self, event: Dict[str, object]) -> None:
        """Append one event as a compact JSON line (flushed, locked)."""
        line = json.dumps(event, separators=(",", ":"))
        with self._lock:
            if self._fh.closed:
                return
            self._fh.write(line + "\n")
            self._fh.flush()
            self.events_written += 1

    def close(self) -> None:
        """Close the sink; later ``emit`` calls become no-ops."""
        with self._lock:
            if not self._fh.closed:
                self._fh.close()


class SLOMonitor:
    """Evaluate objectives over the recorder; raise/clear named alerts.

    ``evaluate`` runs on the recorder's sampler thread (wired as its
    ``post_sample`` hook); everything it mutates — alert states, registry
    gauges — is scalar writes readers copy lock-free.
    """

    def __init__(
        self,
        recorder: MetricsFlightRecorder,
        slos: Sequence[SLO],
        alert_log: Optional[AlertLog] = None,
        registry: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
        wall_clock: Callable[[], float] = time.time,
    ) -> None:
        names = [s.name for s in slos]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise ValueError(f"duplicate SLO names: {duplicates}")
        self._recorder = recorder
        self.slos: Tuple[SLO, ...] = tuple(slos)
        self.alert_log = alert_log
        self._registry = registry
        self._clock = clock
        self._wall_clock = wall_clock
        self._alerts: Dict[str, Alert] = {s.name: Alert(s) for s in slos}
        self.evaluations = 0
        self._gauges = {}
        if registry is not None:
            for slo in slos:
                self._gauges[slo.name] = (
                    registry.gauge(
                        "repro_alert_active",
                        "1 while this SLO's burn-rate alert is raised",
                        slo=slo.name,
                    ),
                    registry.gauge(
                        "repro_slo_burn_rate",
                        "Error-budget burn rate over the fast window",
                        slo=slo.name,
                        window="fast",
                    ),
                    registry.gauge(
                        "repro_slo_burn_rate",
                        "Error-budget burn rate over the slow window",
                        slo=slo.name,
                        window="slow",
                    ),
                )

    # -- evaluation --------------------------------------------------------

    def _burn(self, slo: SLO, window: float) -> Tuple[float, int]:
        """(burn rate, samples) of one window; burn 0 under min_samples."""
        values = self._recorder.window_values(slo.series, window)
        if len(values) < slo.min_samples:
            return 0.0, len(values)
        bad = sum(1 for v in values if v > slo.threshold)
        budget = 1.0 - slo.objective
        return (bad / len(values)) / budget, len(values)

    def evaluate(self, now: Optional[float] = None) -> None:
        """Re-evaluate every objective against the recorder's rings."""
        t = self._clock() if now is None else now
        for slo in self.slos:
            alert = self._alerts[slo.name]
            alert.fast_burn, fast_n = self._burn(slo, slo.fast_window)
            alert.slow_burn, _slow_n = self._burn(slo, slo.slow_window)
            alert.last_value = self._recorder.latest(slo.series)
            if not alert.active:
                if (
                    fast_n >= slo.min_samples
                    and alert.fast_burn >= slo.burn
                    and alert.slow_burn >= slo.burn
                ):
                    alert.active = True
                    alert.since_monotonic = t
                    alert.raised_count += 1
                    self._transition("alert_raised", alert, t)
            elif alert.fast_burn < slo.burn:
                alert.active = False
                self._transition("alert_cleared", alert, t)
                alert.since_monotonic = None
            if slo.name in self._gauges:
                active_g, fast_g, slow_g = self._gauges[slo.name]
                active_g.set(1.0 if alert.active else 0.0)
                fast_g.set(round(alert.fast_burn, 3))
                slow_g.set(round(alert.slow_burn, 3))
        self.evaluations += 1

    def _transition(self, event: str, alert: Alert, t: float) -> None:
        if self.alert_log is None:
            return
        slo = alert.slo
        document: Dict[str, object] = {
            "event": event,
            "ts": round(self._wall_clock(), 3),
            "slo": slo.name,
            "series": slo.series,
            "severity": slo.severity,
            "threshold": slo.threshold,
            "fast_burn": round(alert.fast_burn, 3),
            "slow_burn": round(alert.slow_burn, 3),
            "value": alert.last_value,
        }
        if event == "alert_cleared" and alert.since_monotonic is not None:
            document["active_seconds"] = round(t - alert.since_monotonic, 3)
        self.alert_log.emit(document)

    # -- read path ---------------------------------------------------------

    def alerts(self) -> List[Alert]:
        """Every alert state, objective order."""
        return [self._alerts[s.name] for s in self.slos]

    def active_alerts(self) -> List[Alert]:
        """Currently-raised alerts."""
        return [a for a in self.alerts() if a.active]

    def page_active(self) -> bool:
        """Whether any page-severity alert is raised (the 503 signal)."""
        return any(a.slo.severity == "page" for a in self.active_alerts())

    def snapshot(self) -> Dict[str, object]:
        """JSON state for ``/metrics``: objectives + per-alert burn/state."""
        return {
            "objectives": [s.to_json() for s in self.slos],
            "alerts": [a.to_json() for a in self.alerts()],
            "active": [a.slo.name for a in self.active_alerts()],
            "evaluations": self.evaluations,
            "alert_log_events": (
                self.alert_log.events_written if self.alert_log else 0
            ),
        }

    def close(self) -> None:
        """Close the attached alert log, if any."""
        if self.alert_log is not None:
            self.alert_log.close()


def default_slos() -> Tuple[SLO, ...]:
    """The stock serving-plane objectives.

    Thresholds are deliberately loose (a healthy laptop-scale deployment
    never trips them); operators tighten per deployment via ``--slo``.
    """
    return (
        SLO(
            name="slide_latency",
            series="repro_slide_seconds:p99",
            threshold=1.0,
            objective=0.99,
            fast_window=60.0,
            slow_window=600.0,
            burn=6.0,
            severity="page",
        ),
        SLO(
            name="ingest_queue_wait",
            series="repro_ingest_queue_wait_seconds:p99",
            threshold=2.0,
            objective=0.99,
            fast_window=60.0,
            slow_window=600.0,
            burn=6.0,
            severity="page",
        ),
        SLO(
            name="answer_age",
            series='repro_answer_age_seconds{query="main"}',
            threshold=30.0,
            objective=0.95,
            fast_window=120.0,
            slow_window=900.0,
            burn=3.0,
            severity="ticket",
        ),
        SLO(
            name="degraded_shards",
            series="repro_shards_degraded",
            threshold=0.0,
            objective=0.95,
            fast_window=60.0,
            slow_window=600.0,
            burn=3.0,
            severity="ticket",
        ),
    )


def parse_slo_spec(spec: str) -> SLO:
    """``NAME=SERIES[,key=value...]`` → :class:`SLO` (the ``--slo`` flag).

    Example::

        tight=repro_slide_seconds:p99,threshold=0.001,fast=5,slow=30,burn=2

    Keys: ``threshold`` (required), ``objective``, ``fast``/``slow``
    (window seconds), ``burn``, ``severity``, ``min-samples``.
    """
    name, separator, rest = spec.partition("=")
    name = name.strip()
    if not separator or not name:
        raise ValueError(
            f"bad --slo spec {spec!r}; expected NAME=SERIES[,key=value...]"
        )
    fields = [f.strip() for f in rest.split(",") if f.strip()]
    if not fields:
        raise ValueError(f"--slo spec {spec!r} names no series")
    series = fields[0]
    options: Dict[str, object] = {}
    parsers: Dict[str, Callable[[str], object]] = {
        "threshold": float,
        "objective": float,
        "fast": float,
        "slow": float,
        "burn": float,
        "severity": str,
        "min_samples": int,
    }
    keymap = {
        "fast": "fast_window",
        "slow": "slow_window",
    }
    for field in fields[1:]:
        key, eq, value = field.partition("=")
        key = key.strip().replace("-", "_")
        if not eq or key not in parsers:
            raise ValueError(
                f"--slo spec {spec!r}: bad option {field!r} "
                f"(known: {', '.join(parsers)})"
            )
        options[keymap.get(key, key)] = parsers[key](value)
    if "threshold" not in options:
        raise ValueError(f"--slo spec {spec!r} needs threshold=<value>")
    return SLO(name=name, series=series, **options)  # type: ignore[arg-type]
