"""Zero-dependency telemetry plane: metrics core + per-slide stage traces.

Three pieces, layered so the hot path stays allocation-light:

``repro.telemetry.metrics``
    ``Counter`` / ``Gauge`` / ``Histogram`` primitives with preallocated
    log-spaced bucket arrays, and a labeled ``MetricsRegistry`` whose
    ``snapshot()`` is safe to call from any thread while a single writer
    mutates the metrics (CPython attribute/list stores are atomic).

``repro.telemetry.trace``
    ``SlideTrace`` — the per-slide stage timeline (queue-wait → coalesce
    → forest/index → oracle → shard fan-out/merge → WAL fsync → snapshot
    → publish).  The active trace rides an ambient per-thread slot so
    deep layers (core algorithm, persistence, sharding) can record
    stages without threading a handle through every signature;
    ``record_stage`` is a single attribute check when no trace is
    active, so library use (benchmarks, offline replay) pays nothing.

``repro.telemetry.prometheus``
    Standard text exposition rendering of a registry snapshot, served by
    ``GET /metrics?format=prometheus``.
"""

from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.prometheus import render_prometheus
from repro.telemetry.trace import (
    STAGES,
    SlideTrace,
    TraceLog,
    TraceRecorder,
    active_trace,
    record_stage,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_prometheus",
    "STAGES",
    "SlideTrace",
    "TraceLog",
    "TraceRecorder",
    "active_trace",
    "record_stage",
]
