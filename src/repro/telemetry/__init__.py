"""Zero-dependency telemetry plane: metrics core + per-slide stage traces.

Three pieces, layered so the hot path stays allocation-light:

``repro.telemetry.metrics``
    ``Counter`` / ``Gauge`` / ``Histogram`` primitives with preallocated
    log-spaced bucket arrays, and a labeled ``MetricsRegistry`` whose
    ``snapshot()`` is safe to call from any thread while a single writer
    mutates the metrics (CPython attribute/list stores are atomic).

``repro.telemetry.trace``
    ``SlideTrace`` — the per-slide stage timeline (queue-wait → coalesce
    → forest/index → oracle → shard fan-out/merge → WAL fsync → snapshot
    → publish).  The active trace rides an ambient per-thread slot so
    deep layers (core algorithm, persistence, sharding) can record
    stages without threading a handle through every signature;
    ``record_stage`` is a single attribute check when no trace is
    active, so library use (benchmarks, offline replay) pays nothing.

``repro.telemetry.prometheus``
    Standard text exposition rendering of a registry snapshot, served by
    ``GET /metrics?format=prometheus``.

Retained observability rides on top of the metrics core:

``repro.telemetry.timeseries``
    ``MetricsFlightRecorder`` — a fixed-memory multi-resolution ring
    store that samples the registry on an interval (counters → rates,
    histograms → windowed p50/p95/p99), backing ``GET /metrics/history``.

``repro.telemetry.slo``
    Declarative SLOs evaluated as fast/slow multi-window burn rates over
    the recorder, raising/clearing alerts into ``/healthz``, gauges, and
    a JSONL alert log.

``repro.telemetry.profiler``
    ``SamplingProfiler`` — continuous wall-clock sampling over
    ``sys._current_frames()`` into bounded collapsed stacks, backing
    ``GET /debug/profile`` and ``repro-stream profile``.
"""

from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.profiler import SamplingProfiler
from repro.telemetry.prometheus import render_prometheus
from repro.telemetry.slo import SLO, AlertLog, SLOMonitor, default_slos, parse_slo_spec
from repro.telemetry.timeseries import DEFAULT_RESOLUTIONS, MetricsFlightRecorder
from repro.telemetry.trace import (
    STAGES,
    SlideTrace,
    TraceLog,
    TraceRecorder,
    active_trace,
    record_stage,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_RESOLUTIONS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsFlightRecorder",
    "MetricsRegistry",
    "SLO",
    "SLOMonitor",
    "AlertLog",
    "SamplingProfiler",
    "default_slos",
    "parse_slo_spec",
    "render_prometheus",
    "STAGES",
    "SlideTrace",
    "TraceLog",
    "TraceRecorder",
    "active_trace",
    "record_stage",
]
