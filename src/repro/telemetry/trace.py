"""Per-slide stage traces with an ambient per-thread slot.

A ``SlideTrace`` is the timeline of one slide through the pipeline::

    queue_wait -> coalesce -> forest_index -> oracle
               -> shard_fanout -> shard_merge
               -> wal_fsync -> snapshot -> publish

The ingest writer thread activates the trace (``TraceRecorder.begin``)
before dispatching the slide and finalizes it after publish; deep
layers (core algorithm, persistence, sharding facade) call the
module-level ``record_stage`` which is a single ``getattr`` when no
trace is active — offline/bench use of the engine pays one attribute
lookup per slide stage, no allocation.

Stages recorded by shard *worker* threads/processes are intentionally
absent: the trace reflects work observed by the single writer thread
(the sharded facade records ``shard_fanout``/``shard_merge`` spans that
cover the workers' wall time instead).

Stage semantics: most stages are wall-time spans of the slide, but
``queue_wait`` is *cumulative across the batch's actions* (the sum of
each action's time in the bounded queue) — under backpressure it can
far exceed the slide's wall time; divide ``seconds`` by ``items`` for
the mean per-action wait.  ``total_seconds`` covers dispatch through
publish and deliberately excludes the pre-recorded ``queue_wait`` /
``coalesce`` spans.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Dict, List, Optional

from repro.telemetry.metrics import Histogram, MetricsRegistry

# Canonical stage order, used to sort trace output and summaries.
STAGES = (
    "queue_wait",
    "coalesce",
    "forest_index",
    "oracle",
    "kernel_index",
    "kernel_pass",
    "shard_fanout",
    "shard_merge",
    "wal_fsync",
    "snapshot",
    "publish",
)

_STAGE_ORDER = {name: i for i, name in enumerate(STAGES)}


def _stage_sort_key(name: str) -> tuple:
    return (_STAGE_ORDER.get(name, len(STAGES)), name)


class SlideTrace:
    """Wall time + item count per pipeline stage for one slide."""

    __slots__ = ("slide", "actions", "started_wall", "started", "stages", "total_seconds")

    def __init__(self, slide: int, actions: int) -> None:
        self.slide = slide
        self.actions = actions
        self.started_wall = time.time()
        self.started = time.perf_counter()
        # stage name -> [seconds, items]; insertion order ~ execution order.
        self.stages: Dict[str, List[float]] = {}
        self.total_seconds = 0.0

    def add_stage(self, name: str, seconds: float, items: int = 0) -> None:
        """Accumulate ``seconds``/``items`` into stage ``name``."""
        entry = self.stages.get(name)
        if entry is None:
            self.stages[name] = [seconds, items]
        else:
            entry[0] += seconds
            entry[1] += items

    def to_event(self, threshold_ms: Optional[float] = None) -> Dict[str, object]:
        """The structured JSONL event for this slide."""
        stages = {
            name: {"seconds": round(entry[0], 6), "items": int(entry[1])}
            for name, entry in sorted(
                self.stages.items(), key=lambda kv: _stage_sort_key(kv[0])
            )
        }
        event: Dict[str, object] = {
            "event": "slow_slide",
            "ts": round(self.started_wall, 3),
            "slide": self.slide,
            "actions": self.actions,
            "total_seconds": round(self.total_seconds, 6),
            "stages": stages,
        }
        if threshold_ms is not None:
            event["threshold_ms"] = threshold_ms
        return event


# ---------------------------------------------------------------------------
# Ambient per-thread trace slot.

_ACTIVE = threading.local()


def active_trace() -> Optional[SlideTrace]:
    """The trace active on this thread, or None."""
    return getattr(_ACTIVE, "trace", None)


def record_stage(name: str, seconds: float, items: int = 0) -> None:
    """Record a stage on the active trace, if any (cheap no-op otherwise)."""
    trace = getattr(_ACTIVE, "trace", None)
    if trace is not None:
        trace.add_stage(name, seconds, items)


def _activate(trace: SlideTrace) -> None:
    _ACTIVE.trace = trace


def _deactivate() -> None:
    _ACTIVE.trace = None


# ---------------------------------------------------------------------------
# Trace log + recorder.


class TraceLog:
    """Append-only JSONL sink for slow-slide events (one dict per line)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._fh = open(path, "a", encoding="utf-8")
        self.events_written = 0

    def emit(self, event: Dict[str, object]) -> None:
        """Append one event as a compact JSON line (flushed, locked)."""
        line = json.dumps(event, separators=(",", ":"))
        with self._lock:
            if self._fh.closed:
                return
            self._fh.write(line + "\n")
            self._fh.flush()
            self.events_written += 1

    def close(self) -> None:
        """Close the sink; later ``emit`` calls become no-ops."""
        with self._lock:
            if not self._fh.closed:
                self._fh.close()


class TraceRecorder:
    """Owns the trace ring buffer, slow-slide threshold, and histograms.

    ``begin``/``finish`` bracket one slide and are called only from the
    single writer thread.  ``recent``/``stats`` may be called from any
    thread (they copy under CPython's atomic list/deque snapshots).

    ``slow_slide_ms`` semantics: ``None`` disables trace-log emission;
    ``0`` emits *every* slide (the test/triage hook); ``N > 0`` emits
    slides whose total wall time is at least N milliseconds.
    """

    def __init__(
        self,
        capacity: int = 64,
        slow_slide_ms: Optional[float] = None,
        trace_log: Optional[TraceLog] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.slow_slide_ms = slow_slide_ms
        self.trace_log = trace_log
        self._ring: deque = deque(maxlen=capacity)
        self._registry = registry
        self._stage_hists: Dict[str, Histogram] = {}
        self._total_hist: Optional[Histogram] = (
            registry.histogram(
                "repro_slide_seconds", "End-to-end wall time per slide"
            )
            if registry is not None
            else None
        )
        self.slow_slides = 0
        self.traced_slides = 0

    def begin(self, slide: int, actions: int) -> SlideTrace:
        """Create and activate the trace for one slide dispatch."""
        trace = SlideTrace(slide, actions)
        _activate(trace)
        return trace

    def finish(self, trace: SlideTrace) -> SlideTrace:
        """Deactivate, total, ring-buffer, and (maybe) emit the trace."""
        _deactivate()
        trace.total_seconds = time.perf_counter() - trace.started
        self._ring.append(trace)
        self.traced_slides += 1
        if self._registry is not None:
            self._total_hist.observe(trace.total_seconds)
            for name, (seconds, _items) in trace.stages.items():
                hist = self._stage_hists.get(name)
                if hist is None:
                    hist = self._registry.histogram(
                        "repro_slide_stage_seconds",
                        "Wall time per pipeline stage per slide",
                        stage=name,
                    )
                    self._stage_hists[name] = hist
                hist.observe(seconds)
        threshold = self.slow_slide_ms
        if threshold is not None and trace.total_seconds * 1000.0 >= threshold:
            self.slow_slides += 1
            if self.trace_log is not None:
                self.trace_log.emit(trace.to_event(threshold_ms=threshold))
        return trace

    def abandon(self, trace: SlideTrace) -> None:
        """Drop the ambient slot without recording (dispatch failed)."""
        _deactivate()

    def recent(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """The last ``limit`` (default all) ring-buffered trace events."""
        traces = list(self._ring)
        if limit is not None:
            traces = traces[-limit:]
        return [t.to_event() for t in traces]

    def stats(self) -> Dict[str, object]:
        """Recorder counters for ``/metrics`` (traced/slow slide totals)."""
        return {
            "traced_slides": self.traced_slides,
            "slow_slides": self.slow_slides,
            "slow_slide_ms": self.slow_slide_ms,
            "ring_capacity": self.capacity,
            "trace_log_events": (
                self.trace_log.events_written if self.trace_log else 0
            ),
        }

    def close(self) -> None:
        """Close the attached trace log, if any."""
        if self.trace_log is not None:
            self.trace_log.close()
