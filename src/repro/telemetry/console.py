"""`repro-stream top`: a curses-free live ops console.

Polls a running service's ``/metrics``, ``/metrics/history`` and
``/healthz`` endpoints and renders a fixed-layout text dashboard —
sparkline panels for ingest rate, slide latency quantiles, and per-shard
busy time, with active SLO alerts inline.  Rendering is a pure function
over the fetched documents (:func:`render_top`), so tests never need a
terminal; the CLI loop just clears the screen and reprints.

No curses, no ANSI beyond ``ESC[2J``/``ESC[H`` (clear + home) between
frames: the console must work over the dumbest possible transport
(a CI log, ``ssh`` without a TTY via ``--once``).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple
from urllib.parse import quote

__all__ = ["sparkline", "format_quantity", "render_top", "gather_top", "run_top"]

_SPARK = "▁▂▃▄▅▆▇█"

#: (label, series key, unit) panels rendered in order; shard panels are
#: discovered dynamically from the history catalog.
_PANELS: Tuple[Tuple[str, str, str], ...] = (
    ("ingest rate", "repro_ingest_accepted_total:rate", "act/s"),
    ("slide p99", "repro_slide_seconds:p99", "s"),
    ("slide p50", "repro_slide_seconds:p50", "s"),
    ("queue depth", "repro_ingest_queue_depth", ""),
)

_SHARD_PREFIX = 'repro_shard_busy_seconds_total{shard="'
_SHARD_SUFFIX = '"}:rate'


def sparkline(values: Sequence[float], width: int = 42) -> str:
    """Render values as a block-character sparkline, newest on the right."""
    if not values:
        return "·" * width
    tail = list(values)[-width:]
    lo = min(tail)
    hi = max(tail)
    span = hi - lo
    if span <= 0:
        return _SPARK[0] * len(tail)
    return "".join(
        _SPARK[min(int((v - lo) / span * len(_SPARK)), len(_SPARK) - 1)]
        for v in tail
    )


def format_quantity(value: Optional[float], unit: str = "") -> str:
    """Human-compact number: 1234567 → ``1.23M``, 0.00123 s → ``1.2ms``."""
    if value is None:
        return "—"
    if unit == "s":
        if value < 0.001:
            return f"{value * 1e6:.0f}µs"
        if value < 1.0:
            return f"{value * 1e3:.1f}ms"
        return f"{value:.2f}s"
    magnitude = abs(value)
    for threshold, divisor, suffix in (
        (1e9, 1e9, "G"),
        (1e6, 1e6, "M"),
        (1e3, 1e3, "k"),
    ):
        if magnitude >= threshold:
            return f"{value / divisor:.2f}{suffix}{unit}"
    if magnitude >= 100 or value == int(value):
        return f"{value:.0f}{unit}"
    return f"{value:.2f}{unit}"


def _series_values(history: Dict[str, dict], key: str) -> List[float]:
    entry = history.get(key)
    if not entry:
        return []
    return [point[1] for point in entry.get("points", [])]


def render_top(
    metrics: dict,
    history: Dict[str, dict],
    health_status: int,
    health: dict,
    width: int = 42,
) -> str:
    """One dashboard frame from already-fetched documents (pure).

    Args:
        metrics: The ``/metrics`` JSON document.
        history: Series key → ``/metrics/history`` response document.
        health_status: ``/healthz`` HTTP status.
        health: ``/healthz`` JSON document.
        width: Sparkline width in characters.
    """
    lines: List[str] = []
    status = health.get("status", "?")
    uptime = metrics.get("uptime_seconds", 0.0)
    engine = metrics.get("engine", {})
    ingest = metrics.get("ingest", {})
    marker = "OK" if health_status == 200 else f"!! {health_status}"
    lines.append(
        f"repro-stream top — {marker} {status}"
        f" · up {uptime:.0f}s"
        f" · slides {engine.get('slides', 0)}"
        f" · accepted {format_quantity(float(ingest.get('accepted', 0)))}"
    )
    lines.append("-" * (width + 30))
    label_width = max(len(label) for label, _, _ in _PANELS) + 2
    for label, key, unit in _PANELS:
        values = _series_values(history, key)
        latest = values[-1] if values else None
        lines.append(
            f"{label:<{label_width}}"
            f"{sparkline(values, width)}  "
            f"{format_quantity(latest, unit)}"
        )
    shard_keys = sorted(
        k
        for k in history
        if k.startswith(_SHARD_PREFIX) and k.endswith(_SHARD_SUFFIX)
    )
    for key in shard_keys:
        shard = key[len(_SHARD_PREFIX) : -len(_SHARD_SUFFIX)]
        values = _series_values(history, key)
        latest = values[-1] if values else None
        lines.append(
            f"{f'shard {shard} busy':<{label_width}}"
            f"{sparkline(values, width)}  "
            f"{format_quantity(latest, 's/s' if latest is not None else '')}"
        )
    slo = metrics.get("telemetry", {}).get("slo")
    if slo:
        active = slo.get("active", [])
        if active:
            lines.append("")
            for alert in slo.get("alerts", []):
                if not alert.get("active"):
                    continue
                lines.append(
                    f"ALERT [{alert.get('severity')}] {alert.get('slo')}"
                    f" burn fast={alert.get('fast_burn')}"
                    f" slow={alert.get('slow_burn')}"
                    f" last={format_quantity(alert.get('last_value'))}"
                )
        else:
            lines.append(
                f"alerts: none ({len(slo.get('alerts', []))} objectives green)"
            )
    degraded = engine.get("degraded_shards")
    if degraded:
        lines.append(f"DEGRADED shards: {degraded}")
    return "\n".join(lines) + "\n"


def gather_top(
    client, window: float = 120.0
) -> Tuple[dict, Dict[str, dict], int, dict]:
    """Fetch one frame's documents from a live service.

    ``client`` is anything with ``http_get(path) -> (status, dict)`` —
    in practice :class:`repro.service.client.ServiceClient`.
    """
    _, metrics = client.http_get("/metrics")
    health_status, health = client.http_get("/healthz")
    wanted = [key for _, key, _ in _PANELS]
    catalog_status, catalog = client.http_get("/metrics/history")
    if catalog_status == 200:
        wanted.extend(
            k
            for k in catalog.get("series", [])
            if k.startswith(_SHARD_PREFIX) and k.endswith(_SHARD_SUFFIX)
        )
    history: Dict[str, dict] = {}
    for key in wanted:
        status, document = client.http_get(
            f"/metrics/history?series={quote(key, safe='')}&window={window:g}"
        )
        if status == 200:
            history[key] = document
    return metrics, history, health_status, health


def run_top(
    client,
    interval: float = 2.0,
    window: float = 120.0,
    iterations: Optional[int] = None,
    out: Callable[[str], None] = None,
    clear: bool = True,
) -> None:
    """The ``repro-stream top`` loop: gather, render, sleep, repeat.

    Args:
        client: A :class:`~repro.service.client.ServiceClient`.
        interval: Seconds between frames.
        window: History window per panel.
        iterations: Frames to render (None = until interrupted).
        out: Frame sink (default: ``print`` without extra newline).
        clear: Emit the ANSI clear+home prefix before each frame.
    """
    if out is None:
        import sys

        def out(frame: str) -> None:
            sys.stdout.write(frame)
            sys.stdout.flush()

    rendered = 0
    while iterations is None or rendered < iterations:
        metrics, history, health_status, health = gather_top(client, window)
        frame = render_top(metrics, history, health_status, health)
        if clear:
            frame = "\x1b[2J\x1b[H" + frame
        out(frame)
        rendered += 1
        if iterations is not None and rendered >= iterations:
            break
        time.sleep(interval)
