"""ShardedEngine: S influencer-partitioned writer engines behind one facade.

The facade keeps the engine API the rest of the system already speaks —
``process``/``query``/``now``/``slides_processed``/``close`` — while the
work happens in ``S`` shard hosts, each a full
:class:`~repro.persistence.engine.RecoverableEngine` around an IC/SIC
instance (or a :class:`~repro.core.multi.MultiQueryEngine` board of them)
restricted to the influencers its
:class:`~repro.sharding.partition.ShardAssignment` owns.

**Write path.**  Every slide is broadcast to all shards: each shard
resolves the full diffusion forest (ancestor chains stay globally exact)
but pays index and oracle costs only for its owned pairs — the dominant
cost on the measured workloads, which is what makes the plane scale with
cores.  Three interchangeable backends run the shard hosts:

* ``serial`` — direct in-process calls (deterministic; tests, debugging);
* ``thread`` — one worker thread per shard (the default; shares one
  interpreter, so CPU scaling is GIL-bound but the interface and
  durability behaviour are identical);
* ``process`` — one ``multiprocessing`` (fork) worker per shard: real
  multi-core ingest, per-shard crash domains.

**Read path.**  Reads are merge-on-read: the facade gathers every shard's
answer plus candidate coverage and combines them with
:func:`~repro.sharding.merge.merge_shard_answers` (exact lazy greedy for
modular functions, bounded best-shard otherwise).  Publish hooks fire with
the *merged* board after every slide, so the serving plane's immutable
answer cache composes unchanged.

**Durability.**  With a state directory the layout is::

    <state_dir>/
      sharding.json     shard count + partitioner (refuses mismatched reopens)
      shard-0/ ... shard-(S-1)/    one full snapshot+WAL StateStore each

Each shard recovers independently (newest snapshot + own WAL tail), so
recovery parallelises with the backend and a crash that hit shards at
different slide positions heals on redelivery: :meth:`ShardedEngine.process`
forwards to each shard only the actions beyond *that shard's* clock.
"""

from __future__ import annotations

import json
import os
import pathlib
import queue
import threading
import traceback
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.actions import Action
from repro.core.base import SIMAlgorithm, SIMResult
from repro.core.multi import MultiQueryEngine
from repro.influence.queries import FilteredSIM
from repro.persistence.engine import RecoverableEngine, shard_state_dir
from repro.persistence.serialize import (
    PersistenceError,
    ensure_same_engine_config,
)
from repro.sharding.merge import (
    SeedCandidate,
    ShardAnswer,
    answers_by_query,
    merge_shard_answers,
)
from repro.sharding.partition import (
    HashPartitioner,
    Partitioner,
    ShardAssignment,
    partitioner_from_state,
)

__all__ = ["ShardedEngine", "ShardedBoard", "ShardingError"]

#: File at the sharded state root recording shard count and partitioner.
MANIFEST_NAME = "sharding.json"

#: Sentinel payload: this shard has nothing to do for the current call.
_SKIP = object()

_BACKENDS = ("serial", "thread", "process")


class ShardingError(RuntimeError):
    """A shard worker failed (construction, dispatch, or death)."""


def _describe_error(error: BaseException) -> str:
    """One-line error description plus traceback for cross-worker transport."""
    return f"{type(error).__name__}: {error}\n{traceback.format_exc()}"


class _ShardHost:
    """One shard's engine plus its command handler (runs inside the worker)."""

    def __init__(
        self,
        shard_id: int,
        assignment: ShardAssignment,
        factory: Callable,
        state_dir,
        snapshot_every: int,
        keep_snapshots: int,
        segment_records: int,
        fsync: bool,
    ):
        self.shard_id = shard_id
        self.assignment = assignment
        self.engine = RecoverableEngine.open(
            state_dir,
            lambda: factory(assignment),
            snapshot_every=snapshot_every,
            keep_snapshots=keep_snapshots,
            segment_records=segment_records,
            fsync=fsync,
        )
        if self.engine.slides_processed:
            ensure_same_engine_config(
                self.engine.algorithm,
                factory(self.assignment),
                where=f"shard {self.shard_id} state",
            )

    def info(self) -> dict:
        """Position and durability counters of this shard's engine."""
        algorithm = self.engine.algorithm
        return {
            "shard": self.shard_id,
            "slides": self.engine.slides_processed,
            "now": self.engine.now,
            "replayed": self.engine.replayed_slides,
            "snapshots_written": self.engine.snapshots_written,
            "actions": algorithm.actions_processed,
            "durable": self.engine.store is not None,
        }

    def handle(self, cmd: str, payload):
        """Dispatch one facade command; returns a pickle-friendly result."""
        if cmd == "process":
            self.engine.process(
                [Action(time=t, user=u, parent=p) for t, u, p in payload]
            )
            return self.info()
        if cmd == "answers":
            return self._answers()
        if cmd == "info":
            return self.info()
        if cmd == "snapshot":
            self.engine.snapshot()
            return self.info()
        if cmd == "close":
            self.engine.close(snapshot=payload)
            return None
        raise ValueError(f"unknown shard command {cmd!r}")

    def _answers(self) -> dict:
        """Every query's local answer + candidates, keyed by query name."""
        algorithm = self.engine.algorithm
        if isinstance(algorithm, MultiQueryEngine):
            named = {
                name: (algorithm.query(name), algorithm.query_candidates(name))
                for name in algorithm.names()
            }
        else:
            named = {"main": (algorithm.query(), algorithm.query_candidates())}
        out = {}
        for name, (answer, candidates) in named.items():
            encoded = None
            if candidates is not None:
                encoded = [
                    [user, sorted(coverage)] for user, coverage in candidates
                ]
            out[name] = {
                "time": answer.time,
                "value": answer.value,
                "seeds": sorted(answer.seeds),
                "candidates": encoded,
            }
        return out


class _SerialBackend:
    """All shard hosts in the calling thread — deterministic and simple."""

    name = "serial"

    def __init__(self, host_args: List[dict]):
        self._hosts = [_ShardHost(**kwargs) for kwargs in host_args]

    def call_all(self, cmd: str, payloads: Sequence) -> List:
        """Run ``cmd`` on every non-skipped shard, in shard order."""
        results: List = []
        for host, payload in zip(self._hosts, payloads):
            if payload is _SKIP:
                results.append(None)
                continue
            try:
                results.append(host.handle(cmd, payload))
            except BaseException as error:
                raise ShardingError(
                    f"shard {host.shard_id} failed on {cmd!r}: "
                    f"{_describe_error(error)}"
                ) from error
        return results

    @property
    def pids(self) -> Optional[List[int]]:
        """Worker process ids (None: serial runs in the caller)."""
        return None

    def stop(self) -> None:
        """Nothing to join for in-process hosts."""


class _ThreadBackend:
    """One worker thread per shard, fed through request/reply queues."""

    name = "thread"

    def __init__(self, host_args: List[dict]):
        self._requests: List[queue.Queue] = []
        self._replies: List[queue.Queue] = []
        self._threads: List[threading.Thread] = []
        for kwargs in host_args:
            requests: queue.Queue = queue.Queue()
            replies: queue.Queue = queue.Queue()
            thread = threading.Thread(
                target=self._worker,
                args=(kwargs, requests, replies),
                name=f"repro-shard-{kwargs['shard_id']}",
                daemon=True,
            )
            thread.start()
            self._requests.append(requests)
            self._replies.append(replies)
            self._threads.append(thread)
        failures = []
        for shard, replies in enumerate(self._replies):
            status, result = replies.get()
            if status != "ok":
                failures.append(f"shard {shard}: {result}")
        if failures:
            self.stop()
            raise ShardingError(
                "shard worker construction failed: " + "; ".join(failures)
            )

    @staticmethod
    def _worker(kwargs: dict, requests: queue.Queue, replies: queue.Queue):
        try:
            host = _ShardHost(**kwargs)
        except BaseException as error:
            replies.put(("fatal", _describe_error(error)))
            return
        replies.put(("ok", host.info()))
        while True:
            item = requests.get()
            if item is None:
                return
            cmd, payload = item
            try:
                replies.put(("ok", host.handle(cmd, payload)))
            except BaseException as error:
                replies.put(("error", _describe_error(error)))

    def call_all(self, cmd: str, payloads: Sequence) -> List:
        """Dispatch to every non-skipped shard, then collect all replies."""
        waiting = []
        for shard, payload in enumerate(payloads):
            if payload is _SKIP:
                continue
            self._requests[shard].put((cmd, payload))
            waiting.append(shard)
        results: List = [None] * len(payloads)
        failures = []
        for shard in waiting:
            status, result = self._replies[shard].get()
            if status == "ok":
                results[shard] = result
            else:
                failures.append(f"shard {shard} failed on {cmd!r}: {result}")
        if failures:
            raise ShardingError("; ".join(failures))
        return results

    @property
    def pids(self) -> Optional[List[int]]:
        """Worker process ids (None: threads share this process)."""
        return None

    def stop(self) -> None:
        """Ask every worker thread to exit and join it."""
        for requests in self._requests:
            requests.put(None)
        for thread in self._threads:
            thread.join(timeout=30)


def _process_worker(conn, kwargs: dict) -> None:
    """Entry point of one forked shard worker (ProcessBackend)."""
    try:
        host = _ShardHost(**kwargs)
    except BaseException as error:
        conn.send(("fatal", _describe_error(error)))
        conn.close()
        return
    conn.send(("ok", host.info()))
    while True:
        try:
            item = conn.recv()
        except EOFError:
            break
        if item is None:
            break
        cmd, payload = item
        try:
            conn.send(("ok", host.handle(cmd, payload)))
        except BaseException as error:
            conn.send(("error", _describe_error(error)))
    conn.close()


class _ProcessBackend:
    """One forked ``multiprocessing`` worker per shard — real multi-core."""

    name = "process"

    def __init__(self, host_args: List[dict]):
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError as error:  # pragma: no cover - platform-specific
            raise ShardingError(
                "the process backend requires a fork-capable platform "
                "(factories cross into workers by inheritance); use the "
                "thread backend instead"
            ) from error
        self._connections = []
        self._processes = []
        for kwargs in host_args:
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_process_worker,
                args=(child_conn, kwargs),
                name=f"repro-shard-{kwargs['shard_id']}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._connections.append(parent_conn)
            self._processes.append(process)
        failures = []
        for shard, conn in enumerate(self._connections):
            try:
                status, result = conn.recv()
            except EOFError:
                status, result = "fatal", "worker exited before reporting"
            if status != "ok":
                failures.append(f"shard {shard}: {result}")
        if failures:
            self.stop()
            raise ShardingError(
                "shard worker construction failed: " + "; ".join(failures)
            )

    def call_all(self, cmd: str, payloads: Sequence) -> List:
        """Dispatch to every non-skipped shard, then collect all replies."""
        waiting = []
        for shard, payload in enumerate(payloads):
            if payload is _SKIP:
                continue
            try:
                self._connections[shard].send((cmd, payload))
                waiting.append(shard)
            except (ConnectionError, EOFError, OSError):
                raise ShardingError(
                    f"shard {shard} worker is dead (pid "
                    f"{self._processes[shard].pid}); reopen the sharded "
                    "engine to recover from its WAL"
                ) from None
        results: List = [None] * len(payloads)
        failures = []
        for shard in waiting:
            try:
                status, result = self._connections[shard].recv()
            except (ConnectionError, EOFError, OSError):
                status = "error"
                result = (
                    f"worker died mid-command (pid "
                    f"{self._processes[shard].pid}); reopen the sharded "
                    "engine to recover from its WAL"
                )
            if status == "ok":
                results[shard] = result
            else:
                failures.append(f"shard {shard} failed on {cmd!r}: {result}")
        if failures:
            raise ShardingError("; ".join(failures))
        return results

    @property
    def pids(self) -> List[int]:
        """Worker process ids (e.g. for crash-injection tests)."""
        return [process.pid for process in self._processes]

    def stop(self) -> None:
        """Ask every worker to exit; join, then terminate stragglers."""
        for conn in self._connections:
            try:
                conn.send(None)
            except (ConnectionError, EOFError, OSError):
                pass
        for process in self._processes:
            process.join(timeout=30)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=5)
        for conn in self._connections:
            conn.close()


class ShardedBoard:
    """Board adapter: the merged, multi-query face of a sharded engine.

    Satisfies the query-board protocol the serving plane consumes
    (``names``/``query``/``query_all``/``query_stats``/
    ``add_publish_hook``) so :class:`ShardedEngine` drops into
    :mod:`repro.service` wherever a
    :class:`~repro.core.multi.MultiQueryEngine` fits.
    """

    def __init__(self, engine: "ShardedEngine"):
        """Wrap ``engine`` (built by the engine itself; not user-facing)."""
        self._engine = engine

    def names(self) -> List[str]:
        """Query names served by the merged board, sorted."""
        return sorted(self._engine._merge_params)

    def query(self, name: str) -> SIMResult:
        """The merged answer of one query.

        Raises:
            KeyError: when ``name`` is not on the board.
        """
        answers = self._engine.query_all()
        if name not in answers:
            raise KeyError(
                f"unknown query {name!r}; registered: {sorted(answers)}"
            )
        return answers[name]

    def query_all(self) -> Dict[str, SIMResult]:
        """Merged answers of every query on the board."""
        return self._engine.query_all()

    def query_stats(self) -> Dict[str, dict]:
        """Per-query operational stats (sharded flavour, for ``/metrics``)."""
        engine = self._engine
        return {
            name: {
                "kind": "sharded",
                "shards": engine.shard_count,
                "actions_processed": engine.actions_processed,
                "time": engine.now,
            }
            for name in self.names()
        }

    def add_publish_hook(self, hook) -> None:
        """Call ``hook(merged_answers)`` after every processed slide."""
        self._engine._publish_hooks.append(hook)


class ShardedEngine:
    """Facade over S shard engines: broadcast writes, merge-on-read top-k."""

    def __init__(
        self,
        backend,
        partitioner: Partitioner,
        merge_params: Dict[str, tuple],
        multi: bool,
        state_root: Optional[pathlib.Path],
        infos: List[dict],
    ):
        """Internal constructor — use :meth:`open`."""
        self._backend = backend
        self._partitioner = partitioner
        self._merge_params = merge_params
        self._multi = multi
        self._state_root = state_root
        self._shard_nows = [info["now"] for info in infos]
        self._shard_slides = [info["slides"] for info in infos]
        self._snapshots = [info["snapshots_written"] for info in infos]
        self._actions = max((info["actions"] for info in infos), default=0)
        self._replayed = [info["replayed"] for info in infos]
        self._publish_hooks: List = []
        self._board = ShardedBoard(self)
        self._lock = threading.Lock()
        self._closed = False

    # -- construction ------------------------------------------------------

    @classmethod
    def open(
        cls,
        factory: Callable,
        shards: int,
        state_dir=None,
        backend: str = "thread",
        partitioner: Optional[Partitioner] = None,
        snapshot_every: int = 16,
        keep_snapshots: int = 3,
        segment_records: int = 256,
        fsync: bool = True,
    ) -> "ShardedEngine":
        """Build (or recover) a sharded engine.

        Args:
            factory: ``factory(assignment)`` builds one shard's algorithm —
                an IC/SIC instance (or a MultiQueryEngine board of them)
                constructed with ``shard=assignment``.  It is also called
                with ``None`` once, in the facade, to probe the query
                names, ``k`` and influence functions the merge needs.
            shards: Number of shard engines (>= 1).
            state_dir: Durable state root (``shard-<i>/`` per shard plus a
                ``sharding.json`` manifest), or ``None`` for in-memory.
            backend: ``"serial"``, ``"thread"`` (default) or ``"process"``.
            partitioner: Influencer partitioner; defaults to
                :class:`~repro.sharding.partition.HashPartitioner`.
            snapshot_every: Per-shard auto-snapshot cadence in slides.
            keep_snapshots: Per-shard snapshot retention.
            segment_records: Per-shard WAL records per segment.
            fsync: Force per-shard WAL appends/snapshots to stable storage.

        Raises:
            ShardingError: on bad knobs or worker construction failure.
            PersistenceError: when an existing state root disagrees with
                the requested shard count/partitioner or per-shard config.
        """
        if shards < 1:
            raise ShardingError(f"shards must be >= 1, got {shards}")
        if backend not in _BACKENDS:
            raise ShardingError(
                f"unknown backend {backend!r}; choose from {_BACKENDS}"
            )
        if partitioner is None:
            partitioner = HashPartitioner(shards)
        if partitioner.shards != shards:
            raise ShardingError(
                f"partitioner spreads over {partitioner.shards} shards, "
                f"but {shards} were requested"
            )
        state_root = None
        if state_dir is not None:
            state_root = pathlib.Path(state_dir)
            cls._check_manifest(state_root, shards, partitioner)
        probe = factory(None)
        merge_params = cls._probe_merge_params(probe)
        multi = isinstance(probe, MultiQueryEngine)
        host_args = [
            {
                "shard_id": shard,
                "assignment": ShardAssignment(partitioner, shard),
                "factory": factory,
                "state_dir": (
                    shard_state_dir(state_root, shard)
                    if state_root is not None
                    else None
                ),
                "snapshot_every": snapshot_every,
                "keep_snapshots": keep_snapshots,
                "segment_records": segment_records,
                "fsync": fsync,
            }
            for shard in range(shards)
        ]
        builder = {
            "serial": _SerialBackend,
            "thread": _ThreadBackend,
            "process": _ProcessBackend,
        }[backend]
        backend_obj = builder(host_args)
        infos = backend_obj.call_all("info", [None] * shards)
        return cls(backend_obj, partitioner, merge_params, multi, state_root, infos)

    @staticmethod
    def _check_manifest(
        root: pathlib.Path, shards: int, partitioner: Partitioner
    ) -> None:
        """Create or validate the state root's ``sharding.json``."""
        expected = {
            "format": 1,
            "shards": shards,
            "partitioner": partitioner.to_state(),
        }
        manifest_path = root / MANIFEST_NAME
        if manifest_path.exists():
            stored = json.loads(manifest_path.read_text())
            if stored != expected:
                raise PersistenceError(
                    f"sharded state dir {root} was created with "
                    f"{stored.get('shards')} shards and partitioner "
                    f"{stored.get('partitioner')}, but "
                    f"{shards}/{partitioner.to_state()} were requested; "
                    "reopen with matching settings or a fresh state dir"
                )
            # Re-check the partitioner round-trips (guards registry drift).
            partitioner_from_state(stored["partitioner"])
            return
        root.mkdir(parents=True, exist_ok=True)
        tmp = root / (MANIFEST_NAME + ".tmp")
        tmp.write_text(json.dumps(expected, sort_keys=True) + "\n")
        os.replace(tmp, manifest_path)

    @staticmethod
    def _probe_merge_params(probe) -> Dict[str, tuple]:
        """``{query name: (k, influence function or None)}`` from a probe build."""
        if isinstance(probe, MultiQueryEngine):
            params = {}
            for name in probe.names():
                registered = probe.get(name)
                algorithm = (
                    registered.algorithm
                    if isinstance(registered, FilteredSIM)
                    else registered
                )
                params[name] = (
                    algorithm.k,
                    getattr(algorithm, "influence_function", None),
                )
            if not params:
                raise ShardingError("the probe board registers no queries")
            return params
        if isinstance(probe, SIMAlgorithm):
            return {"main": (probe.k, getattr(probe, "influence_function", None))}
        raise ShardingError(
            f"factory(None) must build a SIMAlgorithm or MultiQueryEngine, "
            f"got {type(probe).__name__}"
        )

    # -- streaming ---------------------------------------------------------

    def process(self, batch: Sequence[Action]) -> None:
        """Broadcast one slide to every shard (with per-shard catch-up).

        The batch must be strictly ascending and beyond the facade clock
        (the minimum shard clock).  A shard that is *ahead* — possible
        after a crash that hit shards at different positions — receives
        only the suffix beyond its own clock, so at-least-once redelivery
        heals the lag instead of tripping the per-shard stream contract.
        """
        if self._closed:
            raise ShardingError("sharded engine is closed")
        batch = list(batch)
        if not batch:
            return
        last = self.now
        for action in batch:
            if action.time <= last:
                raise ValueError(
                    f"engine received out-of-order action {action.time} "
                    f"after {last}"
                )
            last = action.time
        encoded = [(a.time, a.user, a.parent) for a in batch]
        aligned = all(now == self._shard_nows[0] for now in self._shard_nows)
        payloads: List = []
        for shard_now in self._shard_nows:
            if aligned:
                payloads.append(encoded)
            else:
                suffix = [item for item in encoded if item[0] > shard_now]
                payloads.append(suffix if suffix else _SKIP)
        with self._lock:
            replies = self._backend.call_all("process", payloads)
        self._absorb_infos(replies)
        if self._publish_hooks:
            answers = self.query_all()
            for hook in self._publish_hooks:
                hook(answers)

    def _absorb_infos(self, replies: Sequence[Optional[dict]]) -> None:
        """Update cached per-shard positions from command replies."""
        for shard, info in enumerate(replies):
            if info is None:
                continue
            self._shard_nows[shard] = info["now"]
            self._shard_slides[shard] = info["slides"]
            self._snapshots[shard] = info["snapshots_written"]
            self._actions = max(self._actions, info["actions"])

    # -- reads -------------------------------------------------------------

    def query_all(self) -> Dict[str, SIMResult]:
        """Merged answers of every query (the merge-on-read read path)."""
        if self._closed:
            raise ShardingError("sharded engine is closed")
        with self._lock:
            gathered = self._backend.call_all(
                "answers", [None] * self.shard_count
            )
        per_shard = [
            self._decode_answers(shard, payload)
            for shard, payload in enumerate(gathered)
        ]
        by_query = answers_by_query(per_shard)
        merged: Dict[str, SIMResult] = {}
        for name, (k, func) in self._merge_params.items():
            merged[name] = merge_shard_answers(
                by_query.get(name, []), k=k, func=func, time=self.now
            )
        return merged

    @staticmethod
    def _decode_answers(shard: int, payload: dict) -> Dict[str, ShardAnswer]:
        """Rebuild :class:`~repro.sharding.merge.ShardAnswer` objects."""
        decoded = {}
        for name, entry in payload.items():
            candidates = None
            if entry["candidates"] is not None:
                candidates = tuple(
                    SeedCandidate(user=user, coverage=frozenset(coverage))
                    for user, coverage in entry["candidates"]
                )
            decoded[name] = ShardAnswer(
                shard=shard,
                time=entry["time"],
                seeds=frozenset(entry["seeds"]),
                value=entry["value"],
                candidates=candidates,
            )
        return decoded

    def query(self) -> SIMResult:
        """The merged answer (single-query engines answer as ``"main"``)."""
        answers = self.query_all()
        if not self._multi:
            return answers["main"]
        if len(answers) == 1:
            return next(iter(answers.values()))
        raise ShardingError(
            f"query() is ambiguous on a board of {len(answers)} queries; "
            "use query_all() or algorithm.query(name)"
        )

    def query_stats(self) -> Dict[str, dict]:
        """Per-query operational stats (delegates to the board adapter)."""
        return self._board.query_stats()

    # -- durability --------------------------------------------------------

    def snapshot(self) -> None:
        """Write a full-state snapshot on every shard now."""
        if self._state_root is None:
            raise PersistenceError("engine has no state store to snapshot to")
        with self._lock:
            replies = self._backend.call_all(
                "snapshot", [None] * self.shard_count
            )
        self._absorb_infos(replies)

    def close(self, snapshot: bool = True) -> None:
        """Seal every shard (final snapshot by default) and stop workers.

        Idempotent; worker failures during close are swallowed after the
        first attempt so a crashed shard never blocks releasing the rest.
        """
        if self._closed:
            return
        self._closed = True
        try:
            with self._lock:
                self._backend.call_all(
                    "close", [snapshot] * self.shard_count
                )
        except ShardingError:
            # A dead shard cannot seal; its WAL already covers recovery.
            pass
        finally:
            self._backend.stop()

    def __enter__(self) -> "ShardedEngine":
        """Context-manager entry: the engine itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close on exit; skip the final snapshot after an exception."""
        self.close(snapshot=exc_type is None)

    # -- introspection -----------------------------------------------------

    @property
    def algorithm(self) -> ShardedBoard:
        """The merged query board (the serving plane's write-side contract)."""
        return self._board

    @property
    def partitioner(self) -> Partitioner:
        """The influencer partitioner shared by all shards."""
        return self._partitioner

    @property
    def shard_count(self) -> int:
        """Number of shard engines."""
        return self._partitioner.shards

    @property
    def backend_name(self) -> str:
        """Which worker backend runs the shards."""
        return self._backend.name

    @property
    def worker_pids(self) -> Optional[List[int]]:
        """Shard worker process ids (``None`` for in-process backends)."""
        return self._backend.pids

    @property
    def now(self) -> int:
        """The facade stream clock: the *minimum* shard clock.

        Using the minimum keeps at-least-once redelivery sound after a
        crash that left shards at different positions: the serving plane
        drops actions at or below this clock, and anything newer is
        forwarded per shard with the catch-up filter of :meth:`process`.
        """
        return min(self._shard_nows, default=0)

    @property
    def slides_processed(self) -> int:
        """Engine slides at the most advanced shard."""
        return max(self._shard_slides, default=0)

    @property
    def actions_processed(self) -> int:
        """Actions consumed at the most advanced shard."""
        return self._actions

    @property
    def replayed_slides(self) -> int:
        """WAL slides replayed at open by the slowest-recovering shard."""
        return max(self._replayed, default=0)

    @property
    def shard_replayed_slides(self) -> List[int]:
        """Per-shard WAL replay counts from the last :meth:`open`."""
        return list(self._replayed)

    @property
    def snapshots_written(self) -> int:
        """Snapshots written across all shards by this engine instance."""
        return sum(self._snapshots)

    @property
    def store(self) -> Optional[pathlib.Path]:
        """The sharded state root (``None`` for in-memory engines)."""
        return self._state_root

    def shard_infos(self) -> List[dict]:
        """Live per-shard positions (one IPC round; for metrics/debugging)."""
        with self._lock:
            infos = self._backend.call_all("info", [None] * self.shard_count)
        self._absorb_infos(infos)
        return infos
