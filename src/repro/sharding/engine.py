"""ShardedEngine: S influencer-partitioned writer engines behind one facade.

The facade keeps the engine API the rest of the system already speaks —
``process``/``query``/``now``/``slides_processed``/``close`` — while the
work happens in ``S`` shard hosts, each a full
:class:`~repro.persistence.engine.RecoverableEngine` around an IC/SIC
instance (or a :class:`~repro.core.multi.MultiQueryEngine` board of them)
restricted to the influencers its
:class:`~repro.sharding.partition.ShardAssignment` owns.

**Write path.**  Every slide is broadcast to all shards: each shard
resolves the full diffusion forest (ancestor chains stay globally exact)
but pays index and oracle costs only for its owned pairs — the dominant
cost on the measured workloads, which is what makes the plane scale with
cores.  Three interchangeable backends run the shard hosts:

* ``serial`` — direct in-process calls (deterministic; tests, debugging);
* ``thread`` — one worker thread per shard (the default; shares one
  interpreter, so CPU scaling is GIL-bound but the interface and
  durability behaviour are identical);
* ``process`` — one ``multiprocessing`` (fork) worker per shard: real
  multi-core ingest, per-shard crash domains.

All three speak the same per-shard protocol — ``start``/``send``/``recv``
(with a deadline)/``kill`` — so a dead worker surfaces as ``dead`` and a
hung one as ``timeout`` instead of wedging the caller.

**Supervision.**  Every fan-out runs under a
:class:`~repro.sharding.supervisor.ShardSupervisor`: a failed shard is
restarted in place from its own ``shard-<i>/`` snapshot + WAL tail with
bounded exponential backoff, the in-flight slide is re-dispatched as the
suffix beyond the recovered clock, and only an exhausted retry budget (or
an in-memory shard, which has nothing to heal from) escalates to
:class:`ShardingError`.  While a shard is down, reads *degrade* instead
of failing: survivors answer, :attr:`ShardedEngine.degraded` turns on,
and the dead shard contributes its last-known clock.  Scripted chaos
(:mod:`repro.faults`) rides into workers through the backend host
arguments, keeping every drill seeded and reproducible.

**Read path.**  Reads are merge-on-read: the facade gathers every shard's
answer plus candidate coverage and combines them with
:func:`~repro.sharding.merge.merge_shard_answers` (exact lazy greedy for
modular functions, bounded best-shard otherwise).  Publish hooks fire with
the *merged* board after every slide, so the serving plane's immutable
answer cache composes unchanged.

**Durability.**  With a state directory the layout is::

    <state_dir>/
      sharding.json     shard count + partitioner (refuses mismatched reopens)
      shard-0/ ... shard-(S-1)/    one full snapshot+WAL StateStore each

Each shard recovers independently (newest snapshot + own WAL tail), so
recovery parallelises with the backend and a crash that hit shards at
different slide positions heals on redelivery: :meth:`ShardedEngine.process`
forwards to each shard only the actions beyond *that shard's* clock.
"""

from __future__ import annotations

import json
import os
import pathlib
import queue
import signal
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.actions import Action
from repro.core.base import SIMAlgorithm, SIMResult
from repro.core.multi import MultiQueryEngine
from repro.faults.inject import WorkerFaultInjector, WorkerKilled
from repro.faults.plan import FaultPlan
from repro.influence.queries import FilteredSIM
from repro.persistence.engine import RecoverableEngine, shard_state_dir
from repro.persistence.serialize import (
    PersistenceError,
    ensure_same_engine_config,
)
from repro.sharding.merge import (
    SeedCandidate,
    ShardAnswer,
    answers_by_query,
    merge_shard_answers,
)
from repro.sharding.partition import (
    HashPartitioner,
    Partitioner,
    ShardAssignment,
    partitioner_from_state,
)
from repro.sharding.supervisor import (
    _SKIP,
    ShardingError,
    ShardSupervisor,
    _describe_error,
)
from repro.telemetry.trace import record_stage

__all__ = ["ShardedEngine", "ShardedBoard", "ShardingError"]

#: File at the sharded state root recording shard count and partitioner.
MANIFEST_NAME = "sharding.json"

_BACKENDS = ("serial", "thread", "process")


class _Dropped:
    """Wrapper a handler returns when a scripted fault dropped the reply."""

    __slots__ = ("result",)

    def __init__(self, result):
        self.result = result


class _ShardHost:
    """One shard's engine plus its command handler (runs inside the worker)."""

    def __init__(
        self,
        shard_id: int,
        assignment: ShardAssignment,
        factory: Callable,
        state_dir,
        snapshot_every: int,
        keep_snapshots: int,
        segment_records: int,
        fsync: bool,
        fault_state: Optional[dict] = None,
    ):
        self.shard_id = shard_id
        self.assignment = assignment
        self.engine = RecoverableEngine.open(
            state_dir,
            lambda: factory(assignment),
            snapshot_every=snapshot_every,
            keep_snapshots=keep_snapshots,
            segment_records=segment_records,
            fsync=fsync,
        )
        if self.engine.slides_processed:
            ensure_same_engine_config(
                self.engine.algorithm,
                factory(self.assignment),
                where=f"shard {self.shard_id} state",
            )
        self.abandoned_check: Optional[Callable[[], bool]] = None
        # Cumulative wall seconds this incarnation spent in "process" —
        # the per-shard heat signal (rides every info/process reply).
        self.busy_seconds = 0.0
        self._injector = None
        if fault_state and fault_state.get("faults"):
            self._injector = WorkerFaultInjector(
                fault_state["faults"],
                disarm_through=fault_state.get("disarm_through", 0),
            )

    def info(self) -> dict:
        """Position and durability counters of this shard's engine."""
        algorithm = self.engine.algorithm
        return {
            "shard": self.shard_id,
            "slides": self.engine.slides_processed,
            "now": self.engine.now,
            "replayed": self.engine.replayed_slides,
            "snapshots_written": self.engine.snapshots_written,
            "actions": algorithm.actions_processed,
            "durable": self.engine.store is not None,
            "busy_seconds": round(self.busy_seconds, 6),
        }

    def abandon(self) -> None:
        """Release file handles without sealing (the worker is giving up).

        Called when a worker dies by script or is fenced off by the
        supervisor: the WAL handle must be dropped so the restarted host
        owns the log alone.  Safe to call twice.
        """
        try:
            if self.engine.store is not None:
                self.engine.store.close()
        except Exception:  # pragma: no cover - best-effort release
            pass

    def handle(self, cmd: str, payload):
        """Dispatch one facade command; returns a pickle-friendly result."""
        if cmd == "process":
            drop = False
            if self._injector is not None:
                drop = self._injector.before_slide(
                    self.engine.slides_processed + 1,
                    abandoned=self.abandoned_check,
                )
            busy_started = time.perf_counter()
            self.engine.process(
                [Action(time=t, user=u, parent=p) for t, u, p in payload]
            )
            self.busy_seconds += time.perf_counter() - busy_started
            return _Dropped(self.info()) if drop else self.info()
        if cmd == "answers":
            return self._answers()
        if cmd == "info":
            return self.info()
        if cmd == "snapshot":
            self.engine.snapshot()
            return self.info()
        if cmd == "close":
            self.engine.close(snapshot=payload)
            return None
        raise ValueError(f"unknown shard command {cmd!r}")

    def _answers(self) -> dict:
        """Every query's local answer + candidates, keyed by query name."""
        algorithm = self.engine.algorithm
        if isinstance(algorithm, MultiQueryEngine):
            named = {
                name: (algorithm.query(name), algorithm.query_candidates(name))
                for name in algorithm.names()
            }
        else:
            named = {"main": (algorithm.query(), algorithm.query_candidates())}
        out = {}
        for name, (answer, candidates) in named.items():
            encoded = None
            if candidates is not None:
                encoded = [
                    [user, sorted(coverage)] for user, coverage in candidates
                ]
            out[name] = {
                "time": answer.time,
                "value": answer.value,
                "seeds": sorted(answer.seeds),
                "candidates": encoded,
            }
        return out


def _merge_overrides(kwargs: dict, overrides: Optional[dict]) -> dict:
    return {**kwargs, **overrides} if overrides else dict(kwargs)


class _SerialBackend:
    """All shard hosts in the calling thread — deterministic and simple.

    Calls execute synchronously in :meth:`send`; :meth:`recv` then reports
    the stored outcome, applying the deadline *post hoc* (a call that took
    longer than the timeout is reported as ``timeout``, giving the serial
    backend the same supervision semantics as the others — the restarted
    shard replays its WAL to the identical position, so the retry is a
    no-op suffix).
    """

    name = "serial"

    def __init__(self, host_args: List[dict]):
        self._host_args = [dict(kwargs) for kwargs in host_args]
        self._hosts: List[Optional[_ShardHost]] = [None] * len(host_args)
        self._pending: List[Optional[Tuple[str, object, float]]] = (
            [None] * len(host_args)
        )

    def start(self, shard: int, overrides: Optional[dict] = None):
        """(Re)build one shard host; returns ``("ok", info)`` or ``("fatal", msg)``."""
        self.kill(shard)
        try:
            host = _ShardHost(
                **_merge_overrides(self._host_args[shard], overrides)
            )
        except BaseException as error:
            return "fatal", _describe_error(error)
        self._hosts[shard] = host
        return "ok", host.info()

    def send(self, shard: int, cmd: str, payload) -> bool:
        """Execute the command now; stash the outcome for :meth:`recv`."""
        host = self._hosts[shard]
        if host is None:
            return False
        started = time.monotonic()
        try:
            result = host.handle(cmd, payload)
        except WorkerKilled as error:
            self._hosts[shard] = None
            host.abandon()
            self._pending[shard] = ("dead", f"worker died: {error}", 0.0)
            return True
        except BaseException as error:
            self._pending[shard] = (
                "error", _describe_error(error), time.monotonic() - started
            )
            return True
        elapsed = time.monotonic() - started
        if isinstance(result, _Dropped):
            self._pending[shard] = (
                "timeout", "reply dropped (scripted fault)", elapsed
            )
        else:
            self._pending[shard] = ("ok", result, elapsed)
        return True

    def recv(self, shard: int, timeout: Optional[float]):
        """The stored outcome of the last :meth:`send`, deadline-checked."""
        entry = self._pending[shard]
        self._pending[shard] = None
        if entry is None:
            return "dead", "no call in flight"
        status, result, elapsed = entry
        if status == "ok" and timeout is not None and elapsed > timeout:
            return (
                "timeout",
                f"call took {elapsed:.3f}s (deadline {timeout}s)",
            )
        return status, result

    def kill(self, shard: int) -> None:
        """Drop the shard host (releasing its WAL handle)."""
        host = self._hosts[shard]
        self._hosts[shard] = None
        self._pending[shard] = None
        if host is not None:
            host.abandon()

    @property
    def pids(self) -> Optional[List[int]]:
        """Worker process ids (None: serial runs in the caller)."""
        return None

    def stop(self) -> None:
        """Release every host's file handles."""
        for shard in range(len(self._hosts)):
            self.kill(shard)


class _ThreadBackend:
    """One worker thread per shard, fed through request/reply queues.

    A restart builds a fresh thread with fresh queues; the old thread —
    which cannot be killed from outside — is *abandoned*: its event is
    set, so it exits (releasing its WAL handle, replying to nobody) the
    next time it reaches a checkpoint.  Scripted hangs check the event
    after sleeping, which keeps chaos drills free of WAL double-writers.
    """

    name = "thread"

    def __init__(self, host_args: List[dict]):
        n = len(host_args)
        self._host_args = [dict(kwargs) for kwargs in host_args]
        self._requests: List[Optional[queue.Queue]] = [None] * n
        self._replies: List[Optional[queue.Queue]] = [None] * n
        self._threads: List[Optional[threading.Thread]] = [None] * n
        self._abandoned: List[Optional[threading.Event]] = [None] * n

    def start(self, shard: int, overrides: Optional[dict] = None):
        """(Re)start one shard worker thread."""
        self.kill(shard)
        requests: queue.Queue = queue.Queue()
        replies: queue.Queue = queue.Queue()
        abandoned = threading.Event()
        kwargs = _merge_overrides(self._host_args[shard], overrides)
        thread = threading.Thread(
            target=self._worker,
            args=(kwargs, requests, replies, abandoned),
            name=f"repro-shard-{kwargs['shard_id']}",
            daemon=True,
        )
        thread.start()
        self._requests[shard] = requests
        self._replies[shard] = replies
        self._threads[shard] = thread
        self._abandoned[shard] = abandoned
        status, result = replies.get()
        if status != "ok":
            self.kill(shard)
            return "fatal", result
        return "ok", result

    @staticmethod
    def _worker(
        kwargs: dict,
        requests: queue.Queue,
        replies: queue.Queue,
        abandoned: threading.Event,
    ):
        try:
            host = _ShardHost(**kwargs)
        except BaseException as error:
            replies.put(("fatal", _describe_error(error)))
            return
        host.abandoned_check = abandoned.is_set
        replies.put(("ok", host.info()))
        while True:
            item = requests.get()
            if item is None:
                host.abandon()
                return
            cmd, payload = item
            try:
                result = host.handle(cmd, payload)
            except WorkerKilled:
                host.abandon()
                return
            except BaseException as error:
                if abandoned.is_set():
                    host.abandon()
                    return
                replies.put(("error", _describe_error(error)))
                continue
            if abandoned.is_set():
                host.abandon()
                return
            if isinstance(result, _Dropped):
                continue
            replies.put(("ok", result))

    def send(self, shard: int, cmd: str, payload) -> bool:
        """Enqueue the command; False when no worker is installed."""
        requests = self._requests[shard]
        if requests is None:
            return False
        requests.put((cmd, payload))
        return True

    def recv(self, shard: int, timeout: Optional[float]):
        """Wait for the reply, watching the deadline and the thread's life."""
        replies = self._replies[shard]
        thread = self._threads[shard]
        if replies is None or thread is None:
            return "dead", "no worker installed"
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            wait = 0.05
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return (
                        "timeout",
                        f"no reply within {timeout}s "
                        f"(thread alive: {thread.is_alive()})",
                    )
                wait = min(wait, remaining)
            try:
                return replies.get(timeout=wait)
            except queue.Empty:
                if not thread.is_alive():
                    try:  # a reply may have raced the thread's exit
                        return replies.get_nowait()
                    except queue.Empty:
                        return (
                            "dead",
                            "worker thread exited without replying",
                        )

    def kill(self, shard: int) -> None:
        """Abandon the shard's worker thread (it cannot be force-killed)."""
        thread = self._threads[shard]
        if thread is None:
            return
        self._abandoned[shard].set()
        self._requests[shard].put(None)  # unblock an idle worker
        self._requests[shard] = None
        self._replies[shard] = None
        self._threads[shard] = None
        self._abandoned[shard] = None

    @property
    def pids(self) -> Optional[List[int]]:
        """Worker process ids (None: threads share this process)."""
        return None

    def stop(self) -> None:
        """Ask every worker thread to exit and join it."""
        threads = []
        for shard, requests in enumerate(self._requests):
            if requests is None:
                continue
            requests.put(None)
            threads.append(self._threads[shard])
        for thread in threads:
            if thread is not None:
                thread.join(timeout=30)


def _process_worker(conn, kwargs: dict) -> None:
    """Entry point of one forked shard worker (ProcessBackend)."""
    try:
        host = _ShardHost(**kwargs)
    except BaseException as error:
        try:
            conn.send(("fatal", _describe_error(error)))
        finally:
            conn.close()
        return
    conn.send(("ok", host.info()))
    while True:
        try:
            item = conn.recv()
        except EOFError:
            break
        if item is None:
            break
        cmd, payload = item
        try:
            result = host.handle(cmd, payload)
        except WorkerKilled:
            # Die like a real crash: no reply, no cleanup, no atexit.
            os.kill(os.getpid(), signal.SIGKILL)
        except BaseException as error:
            conn.send(("error", _describe_error(error)))
            continue
        if isinstance(result, _Dropped):
            continue
        conn.send(("ok", result))
    conn.close()


class _ProcessBackend:
    """One forked ``multiprocessing`` worker per shard — real multi-core."""

    name = "process"

    def __init__(self, host_args: List[dict]):
        import multiprocessing

        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError as error:  # pragma: no cover - platform-specific
            raise ShardingError(
                "the process backend requires a fork-capable platform "
                "(factories cross into workers by inheritance); use the "
                "thread backend instead"
            ) from error
        n = len(host_args)
        self._host_args = [dict(kwargs) for kwargs in host_args]
        self._connections = [None] * n
        self._processes = [None] * n

    def start(self, shard: int, overrides: Optional[dict] = None):
        """(Re)fork one shard worker and wait for its construction report."""
        self.kill(shard)
        kwargs = _merge_overrides(self._host_args[shard], overrides)
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_process_worker,
            args=(child_conn, kwargs),
            name=f"repro-shard-{kwargs['shard_id']}",
            daemon=True,
        )
        try:
            process.start()
        except BaseException as error:
            parent_conn.close()
            child_conn.close()
            return "fatal", _describe_error(error)
        child_conn.close()
        self._connections[shard] = parent_conn
        self._processes[shard] = process
        try:
            status, result = parent_conn.recv()
        except (ConnectionError, EOFError, OSError):
            status, result = "fatal", "worker exited before reporting"
        if status != "ok":
            self.kill(shard)
            return "fatal", result
        return "ok", result

    def send(self, shard: int, cmd: str, payload) -> bool:
        """Write the command down the shard's pipe; False if unreachable."""
        conn = self._connections[shard]
        if conn is None:
            return False
        try:
            conn.send((cmd, payload))
            return True
        except (ConnectionError, EOFError, OSError):
            return False

    def recv(self, shard: int, timeout: Optional[float]):
        """Wait for the reply, watching the deadline and the process's life."""
        conn = self._connections[shard]
        process = self._processes[shard]
        if conn is None or process is None:
            return "dead", "no worker installed"
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            wait = 0.05
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return (
                        "timeout",
                        f"no reply within {timeout}s "
                        f"(pid {process.pid} alive: {process.is_alive()})",
                    )
                wait = min(wait, remaining)
            try:
                ready = conn.poll(wait)
            except (ConnectionError, EOFError, OSError):
                return "dead", f"worker pipe broke (pid {process.pid})"
            if ready:
                try:
                    return conn.recv()
                except (ConnectionError, EOFError, OSError):
                    return (
                        "dead",
                        f"worker died mid-command (pid {process.pid})",
                    )
            if not process.is_alive():
                # One final poll: the reply may have raced the exit.
                try:
                    if conn.poll(0):
                        return conn.recv()
                except (ConnectionError, EOFError, OSError):
                    pass
                return "dead", f"worker died (pid {process.pid})"

    def kill(self, shard: int) -> None:
        """SIGKILL the shard's worker and reap it — fencing it off its WAL."""
        process = self._processes[shard]
        conn = self._connections[shard]
        self._processes[shard] = None
        self._connections[shard] = None
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        if process is not None:
            if process.is_alive():
                process.kill()
            process.join(timeout=10)
            if not process.is_alive():
                process.close()

    @property
    def pids(self) -> List[Optional[int]]:
        """Worker process ids (e.g. for crash-injection tests)."""
        return [
            process.pid if process is not None else None
            for process in self._processes
        ]

    def stop(self) -> None:
        """Ask every worker to exit; join, then terminate/kill stragglers.

        Always leaves zero live children behind, whatever state the
        workers were in — including after a failed open or a mid-run
        escalation.
        """
        for conn in self._connections:
            if conn is None:
                continue
            try:
                conn.send(None)
            except (ConnectionError, EOFError, OSError):
                pass
        for process in self._processes:
            if process is None:
                continue
            process.join(timeout=10)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.kill()
                process.join(timeout=5)
            if not process.is_alive():
                process.close()
        for conn in self._connections:
            if conn is not None:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - defensive
                    pass
        self._connections = [None] * len(self._connections)
        self._processes = [None] * len(self._processes)


class ShardedBoard:
    """Board adapter: the merged, multi-query face of a sharded engine.

    Satisfies the query-board protocol the serving plane consumes
    (``names``/``query``/``query_all``/``query_stats``/
    ``add_publish_hook``) so :class:`ShardedEngine` drops into
    :mod:`repro.service` wherever a
    :class:`~repro.core.multi.MultiQueryEngine` fits.
    """

    def __init__(self, engine: "ShardedEngine"):
        """Wrap ``engine`` (built by the engine itself; not user-facing)."""
        self._engine = engine

    def names(self) -> List[str]:
        """Query names served by the merged board, sorted."""
        return sorted(self._engine._merge_params)

    def query(self, name: str) -> SIMResult:
        """The merged answer of one query.

        Raises:
            KeyError: when ``name`` is not on the board.
        """
        answers = self._engine.query_all()
        if name not in answers:
            raise KeyError(
                f"unknown query {name!r}; registered: {sorted(answers)}"
            )
        return answers[name]

    def query_all(self) -> Dict[str, SIMResult]:
        """Merged answers of every query on the board."""
        return self._engine.query_all()

    def query_stats(self) -> Dict[str, dict]:
        """Per-query operational stats (sharded flavour, for ``/metrics``).

        While a shard is healing the stats carry ``degraded: True`` plus
        the down shard ids, so readers can see they are on survivor
        answers.
        """
        engine = self._engine
        degraded = engine.degraded
        stats = {}
        for name in self.names():
            entry = {
                "kind": "sharded",
                "shards": engine.shard_count,
                "actions_processed": engine.actions_processed,
                "time": engine.now,
                "degraded": degraded,
            }
            if degraded:
                entry["degraded_shards"] = engine.degraded_shards
            stats[name] = entry
        return stats

    def add_publish_hook(self, hook) -> None:
        """Call ``hook(merged_answers)`` after every processed slide."""
        self._engine._publish_hooks.append(hook)


class ShardedEngine:
    """Facade over S shard engines: broadcast writes, merge-on-read top-k."""

    def __init__(
        self,
        backend,
        supervisor: ShardSupervisor,
        partitioner: Partitioner,
        merge_params: Dict[str, tuple],
        multi: bool,
        state_root: Optional[pathlib.Path],
        infos: List[dict],
    ):
        """Internal constructor — use :meth:`open`."""
        self._backend = backend
        self._supervisor = supervisor
        self._partitioner = partitioner
        self._merge_params = merge_params
        self._multi = multi
        self._state_root = state_root
        self._shard_nows = [info["now"] for info in infos]
        self._shard_slides = [info["slides"] for info in infos]
        self._snapshots = [info["snapshots_written"] for info in infos]
        self._actions = max((info["actions"] for info in infos), default=0)
        self._replayed = [info["replayed"] for info in infos]
        # Per-shard busy-seconds: cumulative across worker incarnations
        # (restarts reset a worker's own counter; we fold the delta).
        self._busy_seconds = [
            float(info.get("busy_seconds", 0.0)) for info in infos
        ]
        self._busy_last_seen = list(self._busy_seconds)
        #: Busy-time gap between the hottest and coolest shard on the
        #: last processed slide — the slide-barrier straggler signal.
        self.last_straggler_seconds = 0.0
        self._publish_hooks: List = []
        self._board = ShardedBoard(self)
        self._lock = threading.Lock()
        self._closed = False

    # -- construction ------------------------------------------------------

    @classmethod
    def open(
        cls,
        factory: Callable,
        shards: int,
        state_dir=None,
        backend: str = "thread",
        partitioner: Optional[Partitioner] = None,
        snapshot_every: int = 16,
        keep_snapshots: int = 3,
        segment_records: int = 256,
        fsync: bool = True,
        retries: int = 3,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        call_timeout: Optional[float] = 30.0,
        fault_plan: Optional[FaultPlan] = None,
    ) -> "ShardedEngine":
        """Build (or recover) a sharded engine.

        Args:
            factory: ``factory(assignment)`` builds one shard's algorithm —
                an IC/SIC instance (or a MultiQueryEngine board of them)
                constructed with ``shard=assignment``.  It is also called
                with ``None`` once, in the facade, to probe the query
                names, ``k`` and influence functions the merge needs.
            shards: Number of shard engines (>= 1).
            state_dir: Durable state root (``shard-<i>/`` per shard plus a
                ``sharding.json`` manifest), or ``None`` for in-memory.
            backend: ``"serial"``, ``"thread"`` (default) or ``"process"``.
            partitioner: Influencer partitioner; defaults to
                :class:`~repro.sharding.partition.HashPartitioner`.
            snapshot_every: Per-shard auto-snapshot cadence in slides.
            keep_snapshots: Per-shard snapshot retention.
            segment_records: Per-shard WAL records per segment.
            fsync: Force per-shard WAL appends/snapshots to stable storage.
            retries: Supervisor restart attempts per shard incident before
                escalating :class:`ShardingError` (``0`` = fail fast).
            backoff_base: First restart delay in seconds (doubles per
                attempt, capped at ``backoff_max``).
            backoff_max: Restart backoff ceiling in seconds.
            call_timeout: Per-call reply deadline in seconds; ``None``
                disables hang detection (deaths are still detected).
            fault_plan: Optional scripted chaos
                (:class:`~repro.faults.plan.FaultPlan`) for deterministic
                failure drills.

        Raises:
            ShardingError: on bad knobs or worker construction failure.
            PersistenceError: when an existing state root disagrees with
                the requested shard count/partitioner or per-shard config.
        """
        if shards < 1:
            raise ShardingError(f"shards must be >= 1, got {shards}")
        if backend not in _BACKENDS:
            raise ShardingError(
                f"unknown backend {backend!r}; choose from {_BACKENDS}"
            )
        if partitioner is None:
            partitioner = HashPartitioner(shards)
        if partitioner.shards != shards:
            raise ShardingError(
                f"partitioner spreads over {partitioner.shards} shards, "
                f"but {shards} were requested"
            )
        if fault_plan is not None and fault_plan.max_shard() >= shards:
            raise ShardingError(
                f"fault plan targets shard {fault_plan.max_shard()}, but "
                f"only {shards} shard(s) were requested"
            )
        state_root = None
        if state_dir is not None:
            state_root = pathlib.Path(state_dir)
            cls._check_manifest(state_root, shards, partitioner)
        probe = factory(None)
        merge_params = cls._probe_merge_params(probe)
        multi = isinstance(probe, MultiQueryEngine)
        state_dirs = [
            shard_state_dir(state_root, shard) if state_root is not None else None
            for shard in range(shards)
        ]
        host_args = []
        for shard in range(shards):
            worker_faults = (
                fault_plan.for_shard(shard) if fault_plan is not None else ()
            )
            host_args.append(
                {
                    "shard_id": shard,
                    "assignment": ShardAssignment(partitioner, shard),
                    "factory": factory,
                    "state_dir": state_dirs[shard],
                    "snapshot_every": snapshot_every,
                    "keep_snapshots": keep_snapshots,
                    "segment_records": segment_records,
                    "fsync": fsync,
                    "fault_state": (
                        {
                            "faults": [f.to_state() for f in worker_faults],
                            "disarm_through": 0,
                        }
                        if worker_faults
                        else None
                    ),
                }
            )
        builder = {
            "serial": _SerialBackend,
            "thread": _ThreadBackend,
            "process": _ProcessBackend,
        }[backend]
        backend_obj = builder(host_args)
        infos = []
        failures = []
        for shard in range(shards):
            status, result = backend_obj.start(shard)
            if status == "ok":
                infos.append(result)
            else:
                failures.append(f"shard {shard}: {result}")
        if failures:
            # Never leave half-started workers behind a failed open.
            backend_obj.stop()
            raise ShardingError(
                "shard worker construction failed: " + "; ".join(failures)
            )
        supervisor = ShardSupervisor(
            backend_obj,
            shards,
            state_dirs=state_dirs,
            retries=retries,
            backoff_base=backoff_base,
            backoff_max=backoff_max,
            call_timeout=call_timeout,
            fault_plan=fault_plan,
        )
        return cls(
            backend_obj,
            supervisor,
            partitioner,
            merge_params,
            multi,
            state_root,
            infos,
        )

    @staticmethod
    def _check_manifest(
        root: pathlib.Path, shards: int, partitioner: Partitioner
    ) -> None:
        """Create or validate the state root's ``sharding.json``."""
        expected = {
            "format": 1,
            "shards": shards,
            "partitioner": partitioner.to_state(),
        }
        manifest_path = root / MANIFEST_NAME
        if manifest_path.exists():
            stored = json.loads(manifest_path.read_text())
            if stored != expected:
                raise PersistenceError(
                    f"sharded state dir {root} was created with "
                    f"{stored.get('shards')} shards and partitioner "
                    f"{stored.get('partitioner')}, but "
                    f"{shards}/{partitioner.to_state()} were requested; "
                    "reopen with matching settings or a fresh state dir"
                )
            # Re-check the partitioner round-trips (guards registry drift).
            partitioner_from_state(stored["partitioner"])
            return
        root.mkdir(parents=True, exist_ok=True)
        tmp = root / (MANIFEST_NAME + ".tmp")
        tmp.write_text(json.dumps(expected, sort_keys=True) + "\n")
        os.replace(tmp, manifest_path)

    @staticmethod
    def _probe_merge_params(probe) -> Dict[str, tuple]:
        """``{query name: (k, influence function or None)}`` from a probe build."""
        if isinstance(probe, MultiQueryEngine):
            params = {}
            for name in probe.names():
                registered = probe.get(name)
                algorithm = (
                    registered.algorithm
                    if isinstance(registered, FilteredSIM)
                    else registered
                )
                params[name] = (
                    algorithm.k,
                    getattr(algorithm, "influence_function", None),
                )
            if not params:
                raise ShardingError("the probe board registers no queries")
            return params
        if isinstance(probe, SIMAlgorithm):
            return {"main": (probe.k, getattr(probe, "influence_function", None))}
        raise ShardingError(
            f"factory(None) must build a SIMAlgorithm or MultiQueryEngine, "
            f"got {type(probe).__name__}"
        )

    # -- streaming ---------------------------------------------------------

    def process(self, batch: Sequence[Action]) -> None:
        """Broadcast one slide to every shard (with per-shard catch-up).

        The batch must be strictly ascending and beyond the facade clock
        (the minimum shard clock).  A shard that is *ahead* — possible
        after a crash that hit shards at different positions — receives
        only the suffix beyond its own clock, so at-least-once redelivery
        heals the lag instead of tripping the per-shard stream contract.

        A shard worker that dies or hangs during the call is healed in
        place by the supervisor (restart from its snapshot + WAL, then
        redeliver the suffix beyond its recovered clock); the caller sees
        :class:`ShardingError` only after the retry budget is exhausted.
        """
        if self._closed:
            raise ShardingError("sharded engine is closed")
        batch = list(batch)
        if not batch:
            return
        last = self.now
        for action in batch:
            if action.time <= last:
                raise ValueError(
                    f"engine received out-of-order action {action.time} "
                    f"after {last}"
                )
            last = action.time
        encoded = [(a.time, a.user, a.parent) for a in batch]
        aligned = all(now == self._shard_nows[0] for now in self._shard_nows)
        payloads: List = []
        for shard_now in self._shard_nows:
            if aligned:
                payloads.append(encoded)
            else:
                suffix = [item for item in encoded if item[0] > shard_now]
                payloads.append(suffix if suffix else _SKIP)
        incidents = [slides + 1 for slides in self._shard_slides]

        def repayload(shard: int, restored: dict):
            suffix = [item for item in encoded if item[0] > restored["now"]]
            return suffix if suffix else _SKIP

        busy_before = list(self._busy_seconds)
        fanout_started = time.perf_counter()
        with self._lock:
            replies = self._supervisor.call(
                "process",
                payloads,
                heal=True,
                repayload=repayload,
                incident_slides=incidents,
            )
        self._absorb_infos(replies)
        record_stage(
            "shard_fanout", time.perf_counter() - fanout_started, len(batch)
        )
        deltas = [
            self._busy_seconds[shard] - busy_before[shard]
            for shard, info in enumerate(replies)
            if info is not None
        ]
        if len(deltas) > 1:
            self.last_straggler_seconds = max(deltas) - min(deltas)
        if self._publish_hooks:
            merge_started = time.perf_counter()
            answers = self.query_all()
            record_stage(
                "shard_merge", time.perf_counter() - merge_started, len(answers)
            )
            for hook in self._publish_hooks:
                hook(answers)

    def _absorb_infos(self, replies: Sequence[Optional[dict]]) -> None:
        """Update cached per-shard positions from command replies."""
        for shard, info in enumerate(replies):
            if info is None:
                continue
            self._shard_nows[shard] = info["now"]
            self._shard_slides[shard] = info["slides"]
            self._snapshots[shard] = info["snapshots_written"]
            self._actions = max(self._actions, info["actions"])
            busy = float(info.get("busy_seconds", 0.0))
            delta = busy - self._busy_last_seen[shard]
            if delta < 0:
                # The worker restarted: its counter began again at zero.
                delta = busy
            self._busy_seconds[shard] += delta
            self._busy_last_seen[shard] = busy

    # -- reads -------------------------------------------------------------

    def query_all(self) -> Dict[str, SIMResult]:
        """Merged answers of every query (the merge-on-read read path).

        Degrades instead of failing: a shard that is down (or dies during
        the call) contributes nothing, survivors are merged as usual, and
        :attr:`degraded` turns on until the shard heals.  Raises
        :class:`ShardingError` only when *no* shard can answer.
        """
        if self._closed:
            raise ShardingError("sharded engine is closed")
        with self._lock:
            gathered = self._supervisor.call(
                "answers", [None] * self.shard_count, heal=False
            )
        per_shard = [
            self._decode_answers(shard, payload)
            for shard, payload in enumerate(gathered)
            if payload is not None
        ]
        by_query = answers_by_query(per_shard)
        merged: Dict[str, SIMResult] = {}
        for name, (k, func) in self._merge_params.items():
            merged[name] = merge_shard_answers(
                by_query.get(name, []), k=k, func=func, time=self.now
            )
        return merged

    @staticmethod
    def _decode_answers(shard: int, payload: dict) -> Dict[str, ShardAnswer]:
        """Rebuild :class:`~repro.sharding.merge.ShardAnswer` objects."""
        decoded = {}
        for name, entry in payload.items():
            candidates = None
            if entry["candidates"] is not None:
                candidates = tuple(
                    SeedCandidate(user=user, coverage=frozenset(coverage))
                    for user, coverage in entry["candidates"]
                )
            decoded[name] = ShardAnswer(
                shard=shard,
                time=entry["time"],
                seeds=frozenset(entry["seeds"]),
                value=entry["value"],
                candidates=candidates,
            )
        return decoded

    def query(self) -> SIMResult:
        """The merged answer (single-query engines answer as ``"main"``)."""
        answers = self.query_all()
        if not self._multi:
            return answers["main"]
        if len(answers) == 1:
            return next(iter(answers.values()))
        raise ShardingError(
            f"query() is ambiguous on a board of {len(answers)} queries; "
            "use query_all() or algorithm.query(name)"
        )

    def query_stats(self) -> Dict[str, dict]:
        """Per-query operational stats (delegates to the board adapter)."""
        return self._board.query_stats()

    # -- supervision -------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """Whether any shard is down — reads are on survivor answers."""
        return self._supervisor.degraded

    @property
    def degraded_shards(self) -> List[int]:
        """Ids of the shards currently down/healing."""
        return self._supervisor.degraded_shards

    @property
    def heal_histogram(self):
        """The supervisor's heal-duration histogram (telemetry scrape)."""
        return self._supervisor.heal_hist

    def supervision_stats(self) -> dict:
        """Supervisor counters plus per-shard health and last-known clocks."""
        stats = self._supervisor.stats()
        states = self._supervisor.shard_states()
        for state in states:
            shard = state["shard"]
            state["last_known_now"] = self._shard_nows[shard]
            state["busy_seconds"] = round(self._busy_seconds[shard], 6)
            state["slides"] = self._shard_slides[shard]
        stats["shards"] = states
        stats["straggler_seconds"] = round(self.last_straggler_seconds, 6)
        return stats

    def heal(self) -> bool:
        """Restart every down shard now; ``True`` when something healed.

        Raises:
            ShardingError: when a down shard cannot be healed (retry
                budget exhausted, or no durable state).
        """
        if self._closed:
            raise ShardingError("sharded engine is closed")
        with self._lock:
            restored = self._supervisor.heal_all(
                incident_slides=list(self._shard_slides)
            )
        self._absorb_infos(restored)
        return any(info is not None for info in restored)

    # -- durability --------------------------------------------------------

    def snapshot(self) -> None:
        """Write a full-state snapshot on every shard now."""
        if self._state_root is None:
            raise PersistenceError("engine has no state store to snapshot to")
        with self._lock:
            replies = self._supervisor.call(
                "snapshot",
                [None] * self.shard_count,
                heal=True,
                incident_slides=list(self._shard_slides),
            )
        self._absorb_infos(replies)

    def close(self, snapshot: bool = True) -> None:
        """Seal every shard (final snapshot by default) and stop workers.

        Idempotent; worker failures during close are swallowed after the
        first attempt so a crashed shard never blocks releasing the rest.
        """
        if self._closed:
            return
        self._closed = True
        try:
            with self._lock:
                self._supervisor.call(
                    "close", [snapshot] * self.shard_count, heal=False
                )
        except ShardingError:
            # A dead shard cannot seal; its WAL already covers recovery.
            pass
        finally:
            self._backend.stop()

    def __enter__(self) -> "ShardedEngine":
        """Context-manager entry: the engine itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close on exit; skip the final snapshot after an exception."""
        self.close(snapshot=exc_type is None)

    # -- introspection -----------------------------------------------------

    @property
    def algorithm(self) -> ShardedBoard:
        """The merged query board (the serving plane's write-side contract)."""
        return self._board

    @property
    def partitioner(self) -> Partitioner:
        """The influencer partitioner shared by all shards."""
        return self._partitioner

    @property
    def shard_count(self) -> int:
        """Number of shard engines."""
        return self._partitioner.shards

    @property
    def backend_name(self) -> str:
        """Which worker backend runs the shards."""
        return self._backend.name

    @property
    def worker_pids(self) -> Optional[List[Optional[int]]]:
        """Shard worker process ids (``None`` for in-process backends)."""
        return self._backend.pids

    @property
    def now(self) -> int:
        """The facade stream clock: the *minimum* shard clock.

        Using the minimum keeps at-least-once redelivery sound after a
        crash that left shards at different positions: the serving plane
        drops actions at or below this clock, and anything newer is
        forwarded per shard with the catch-up filter of :meth:`process`.
        A down shard contributes its last-known clock, so a degraded
        answer is honestly timestamped at the healing shard's position.
        """
        return min(self._shard_nows, default=0)

    @property
    def slides_processed(self) -> int:
        """Engine slides at the most advanced shard."""
        return max(self._shard_slides, default=0)

    @property
    def actions_processed(self) -> int:
        """Actions consumed at the most advanced shard."""
        return self._actions

    @property
    def replayed_slides(self) -> int:
        """WAL slides replayed at open by the slowest-recovering shard."""
        return max(self._replayed, default=0)

    @property
    def shard_replayed_slides(self) -> List[int]:
        """Per-shard WAL replay counts from the last :meth:`open`."""
        return list(self._replayed)

    @property
    def snapshots_written(self) -> int:
        """Snapshots written across all shards by this engine instance."""
        return sum(self._snapshots)

    @property
    def store(self) -> Optional[pathlib.Path]:
        """The sharded state root (``None`` for in-memory engines)."""
        return self._state_root

    def shard_infos(self) -> List[dict]:
        """Live per-shard positions (one IPC round; for metrics/debugging).

        Down shards are reported from their last-known position with
        ``"state": "down"`` instead of failing the whole call.
        """
        try:
            with self._lock:
                infos = self._supervisor.call(
                    "info", [None] * self.shard_count, heal=False
                )
        except ShardingError:
            # Even a fully-down engine can report last-known positions.
            infos = [None] * self.shard_count
        self._absorb_infos(infos)
        out = []
        for shard, info in enumerate(infos):
            if info is not None:
                entry = dict(info)
                entry["state"] = "up"
            else:
                entry = {
                    "shard": shard,
                    "slides": self._shard_slides[shard],
                    "now": self._shard_nows[shard],
                    "replayed": self._replayed[shard],
                    "snapshots_written": self._snapshots[shard],
                    "actions": None,
                    "durable": self._state_root is not None,
                    "state": "down",
                }
            out.append(entry)
        return out
