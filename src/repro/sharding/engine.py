"""ShardedEngine: S influencer-partitioned writer engines behind one facade.

The facade keeps the engine API the rest of the system already speaks —
``process``/``query``/``now``/``slides_processed``/``close`` — while the
work happens in ``S`` shard hosts, each a full
:class:`~repro.persistence.engine.RecoverableEngine` around an IC/SIC
instance (or a :class:`~repro.core.multi.MultiQueryEngine` board of them)
restricted to the influencers its
:class:`~repro.sharding.partition.ShardAssignment` owns.

**Write path.**  Two ingest modes share the facade API:

* **Routed** (the default for new state when every query supports it):
  the facade resolves each slide exactly once through its own
  :class:`~repro.core.resolve.SlideResolver` (the ``resolve_slide`` half
  of the engine's two-phase API), partitions the resolved influence
  tuples by owning influencer, and sends each shard *only its routed
  records* (``apply_resolved``, the other half).  Shards hold no
  diffusion forest and never parse an unowned action — per-shard work is
  proportional to owned pairs, not stream length.  The facade resolver
  has its own snapshot+WAL state under ``<root>/resolver/``, logged
  *before* routing, so its clock always covers every shard's clock and
  redelivery re-resolves idempotently.
* **Broadcast** (the legacy mode; still used by boards with filtered
  queries or algorithms that need raw actions): every slide is sent to
  all shards, each shard resolves the full diffusion forest but pays
  index and oracle costs only for its owned pairs.

Three interchangeable backends run the shard hosts:

* ``serial`` — direct in-process calls (deterministic; tests, debugging);
* ``thread`` — one worker thread per shard (the default; shares one
  interpreter, so CPU scaling is GIL-bound but the interface and
  durability behaviour are identical);
* ``process`` — one ``multiprocessing`` (fork) worker per shard: real
  multi-core ingest, per-shard crash domains.

All three speak the same per-shard protocol — ``start``/``send``/``recv``
(with a deadline)/``kill`` — so a dead worker surfaces as ``dead`` and a
hung one as ``timeout`` instead of wedging the caller.

**Supervision.**  Every fan-out runs under a
:class:`~repro.sharding.supervisor.ShardSupervisor`: a failed shard is
restarted in place from its own ``shard-<i>/`` snapshot + WAL tail with
bounded exponential backoff, the in-flight slide is re-dispatched as the
suffix beyond the recovered clock, and only an exhausted retry budget (or
an in-memory shard, which has nothing to heal from) escalates to
:class:`ShardingError`.  While a shard is down, reads *degrade* instead
of failing: survivors answer, :attr:`ShardedEngine.degraded` turns on,
and the dead shard contributes its last-known clock.  Scripted chaos
(:mod:`repro.faults`) rides into workers through the backend host
arguments, keeping every drill seeded and reproducible.

**Read path.**  Reads are merge-on-read: the facade gathers every shard's
answer plus candidate coverage and combines them with
:func:`~repro.sharding.merge.merge_shard_answers` (exact lazy greedy for
modular functions, bounded best-shard otherwise).  Publish hooks fire with
the *merged* board after every slide, so the serving plane's immutable
answer cache composes unchanged.

**Durability.**  With a state directory the layout is::

    <state_dir>/
      sharding.json     shard count + partitioner + ingest mode
      resolver/         facade resolver snapshot+WAL (routed mode only)
      shard-0/ ... shard-(S-1)/    one full snapshot+WAL StateStore each

Each shard recovers independently (newest snapshot + own WAL tail), so
recovery parallelises with the backend and a crash that hit shards at
different slide positions heals on redelivery: :meth:`ShardedEngine.process`
forwards to each shard only the work beyond *that shard's* clock.  The
manifest is format-versioned: broadcast roots stay at format 1 (readable
by older builds), routed roots use format 2 with ``"ingest": "routed"``;
opening a root in the wrong mode refuses with a pointer at
:func:`migrate_to_routed`, which converts a broadcast root in place.
"""

from __future__ import annotations

import json
import os
import pathlib
import queue
import signal
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.actions import Action
from repro.core.base import SIMAlgorithm, SIMResult
from repro.core.multi import MultiQueryEngine
from repro.core.resolve import ResolvedSlide, SlideResolver, partition_slide
from repro.faults.inject import WorkerFaultInjector, WorkerKilled
from repro.faults.plan import FaultPlan
from repro.influence.queries import FilteredSIM
from repro.persistence.engine import (
    RecoverableEngine,
    StateStore,
    list_shard_state_dirs,
    shard_state_dir,
)
from repro.persistence.serialize import (
    PersistenceError,
    ensure_same_engine_config,
)
from repro.sharding.merge import (
    SeedCandidate,
    ShardAnswer,
    answers_by_query,
    merge_shard_answers,
)
from repro.sharding.partition import (
    HashPartitioner,
    Partitioner,
    ShardAssignment,
    partitioner_from_state,
)
from repro.sharding.supervisor import (
    _SKIP,
    ShardingError,
    ShardSupervisor,
    _describe_error,
)
from repro.telemetry.trace import record_stage

__all__ = [
    "ShardedEngine",
    "ShardedBoard",
    "ShardingError",
    "migrate_to_routed",
]

#: File at the sharded state root recording shard count, partitioner and
#: ingest mode.
MANIFEST_NAME = "sharding.json"

#: Manifest format of broadcast-ingest state roots (the original layout;
#: kept bit-identical so older builds still open them).
MANIFEST_FORMAT_BROADCAST = 1

#: Manifest format of routed-ingest state roots (adds the ``ingest`` key
#: and the facade resolver directory).
MANIFEST_FORMAT_ROUTED = 2

#: Directory under a routed state root holding the facade resolver's
#: snapshot+WAL state.
RESOLVER_DIR_NAME = "resolver"

#: Snapshot document format of the facade resolver state.
RESOLVER_SNAPSHOT_FORMAT = 1

_BACKENDS = ("serial", "thread", "process")


class _Dropped:
    """Wrapper a handler returns when a scripted fault dropped the reply."""

    __slots__ = ("result",)

    def __init__(self, result):
        self.result = result


class _ShardHost:
    """One shard's engine plus its command handler (runs inside the worker)."""

    def __init__(
        self,
        shard_id: int,
        assignment: ShardAssignment,
        factory: Callable,
        state_dir,
        snapshot_every: int,
        keep_snapshots: int,
        segment_records: int,
        fsync: bool,
        fault_state: Optional[dict] = None,
    ):
        self.shard_id = shard_id
        self.assignment = assignment
        self.engine = RecoverableEngine.open(
            state_dir,
            lambda: factory(assignment),
            snapshot_every=snapshot_every,
            keep_snapshots=keep_snapshots,
            segment_records=segment_records,
            fsync=fsync,
        )
        if self.engine.slides_processed:
            ensure_same_engine_config(
                self.engine.algorithm,
                factory(self.assignment),
                where=f"shard {self.shard_id} state",
            )
        self.abandoned_check: Optional[Callable[[], bool]] = None
        # Cumulative wall seconds this incarnation spent in "process" —
        # the per-shard heat signal (rides every info/process reply).
        self.busy_seconds = 0.0
        self._injector = None
        if fault_state and fault_state.get("faults"):
            self._injector = WorkerFaultInjector(
                fault_state["faults"],
                disarm_through=fault_state.get("disarm_through", 0),
            )

    def info(self) -> dict:
        """Position and durability counters of this shard's engine."""
        algorithm = self.engine.algorithm
        return {
            "shard": self.shard_id,
            "slides": self.engine.slides_processed,
            "now": self.engine.now,
            "replayed": self.engine.replayed_slides,
            "snapshots_written": self.engine.snapshots_written,
            "actions": algorithm.actions_processed,
            "durable": self.engine.store is not None,
            "busy_seconds": round(self.busy_seconds, 6),
        }

    def abandon(self) -> None:
        """Release file handles without sealing (the worker is giving up).

        Called when a worker dies by script or is fenced off by the
        supervisor: the WAL handle must be dropped so the restarted host
        owns the log alone.  Safe to call twice.
        """
        try:
            if self.engine.store is not None:
                self.engine.store.close()
        except Exception:  # pragma: no cover - best-effort release
            pass

    def handle(self, cmd: str, payload):
        """Dispatch one facade command; returns a pickle-friendly result."""
        if cmd == "process":
            drop = False
            if self._injector is not None:
                drop = self._injector.before_slide(
                    self.engine.slides_processed + 1,
                    abandoned=self.abandoned_check,
                )
            busy_started = time.perf_counter()
            self.engine.process(
                [Action(time=t, user=u, parent=p) for t, u, p in payload]
            )
            self.busy_seconds += time.perf_counter() - busy_started
            return _Dropped(self.info()) if drop else self.info()
        if cmd == "apply":
            # Routed ingest: the facade resolved the slide once and this
            # payload carries only the influence records this shard owns.
            drop = False
            if self._injector is not None:
                drop = self._injector.before_slide(
                    self.engine.slides_processed + 1,
                    abandoned=self.abandoned_check,
                )
            busy_started = time.perf_counter()
            self.engine.apply_resolved(ResolvedSlide.from_wire(payload))
            self.busy_seconds += time.perf_counter() - busy_started
            return _Dropped(self.info()) if drop else self.info()
        if cmd == "answers":
            return self._answers()
        if cmd == "info":
            return self.info()
        if cmd == "snapshot":
            self.engine.snapshot()
            return self.info()
        if cmd == "close":
            self.engine.close(snapshot=payload)
            return None
        raise ValueError(f"unknown shard command {cmd!r}")

    def _answers(self) -> dict:
        """Every query's local answer + candidates, keyed by query name."""
        algorithm = self.engine.algorithm
        if isinstance(algorithm, MultiQueryEngine):
            named = {
                name: (algorithm.query(name), algorithm.query_candidates(name))
                for name in algorithm.names()
            }
        else:
            named = {"main": (algorithm.query(), algorithm.query_candidates())}
        out = {}
        for name, (answer, candidates) in named.items():
            encoded = None
            if candidates is not None:
                encoded = [
                    [user, sorted(coverage)] for user, coverage in candidates
                ]
            out[name] = {
                "time": answer.time,
                "value": answer.value,
                "seeds": sorted(answer.seeds),
                "candidates": encoded,
            }
        return out


def _merge_overrides(kwargs: dict, overrides: Optional[dict]) -> dict:
    return {**kwargs, **overrides} if overrides else dict(kwargs)


class _SerialBackend:
    """All shard hosts in the calling thread — deterministic and simple.

    Calls execute synchronously in :meth:`send`; :meth:`recv` then reports
    the stored outcome, applying the deadline *post hoc* (a call that took
    longer than the timeout is reported as ``timeout``, giving the serial
    backend the same supervision semantics as the others — the restarted
    shard replays its WAL to the identical position, so the retry is a
    no-op suffix).
    """

    name = "serial"

    def __init__(self, host_args: List[dict]):
        self._host_args = [dict(kwargs) for kwargs in host_args]
        self._hosts: List[Optional[_ShardHost]] = [None] * len(host_args)
        self._pending: List[Optional[Tuple[str, object, float]]] = (
            [None] * len(host_args)
        )

    def start(self, shard: int, overrides: Optional[dict] = None):
        """(Re)build one shard host; returns ``("ok", info)`` or ``("fatal", msg)``."""
        self.kill(shard)
        try:
            host = _ShardHost(
                **_merge_overrides(self._host_args[shard], overrides)
            )
        except BaseException as error:
            return "fatal", _describe_error(error)
        self._hosts[shard] = host
        return "ok", host.info()

    def send(self, shard: int, cmd: str, payload) -> bool:
        """Execute the command now; stash the outcome for :meth:`recv`."""
        host = self._hosts[shard]
        if host is None:
            return False
        started = time.monotonic()
        try:
            result = host.handle(cmd, payload)
        except WorkerKilled as error:
            self._hosts[shard] = None
            host.abandon()
            self._pending[shard] = ("dead", f"worker died: {error}", 0.0)
            return True
        except BaseException as error:
            self._pending[shard] = (
                "error", _describe_error(error), time.monotonic() - started
            )
            return True
        elapsed = time.monotonic() - started
        if isinstance(result, _Dropped):
            self._pending[shard] = (
                "timeout", "reply dropped (scripted fault)", elapsed
            )
        else:
            self._pending[shard] = ("ok", result, elapsed)
        return True

    def recv(self, shard: int, timeout: Optional[float]):
        """The stored outcome of the last :meth:`send`, deadline-checked."""
        entry = self._pending[shard]
        self._pending[shard] = None
        if entry is None:
            return "dead", "no call in flight"
        status, result, elapsed = entry
        if status == "ok" and timeout is not None and elapsed > timeout:
            return (
                "timeout",
                f"call took {elapsed:.3f}s (deadline {timeout}s)",
            )
        return status, result

    def kill(self, shard: int) -> None:
        """Drop the shard host (releasing its WAL handle)."""
        host = self._hosts[shard]
        self._hosts[shard] = None
        self._pending[shard] = None
        if host is not None:
            host.abandon()

    @property
    def pids(self) -> Optional[List[int]]:
        """Worker process ids (None: serial runs in the caller)."""
        return None

    def stop(self) -> None:
        """Release every host's file handles."""
        for shard in range(len(self._hosts)):
            self.kill(shard)


class _ThreadBackend:
    """One worker thread per shard, fed through request/reply queues.

    A restart builds a fresh thread with fresh queues; the old thread —
    which cannot be killed from outside — is *abandoned*: its event is
    set, so it exits (releasing its WAL handle, replying to nobody) the
    next time it reaches a checkpoint.  Scripted hangs check the event
    after sleeping, which keeps chaos drills free of WAL double-writers.
    """

    name = "thread"

    def __init__(self, host_args: List[dict]):
        n = len(host_args)
        self._host_args = [dict(kwargs) for kwargs in host_args]
        self._requests: List[Optional[queue.Queue]] = [None] * n
        self._replies: List[Optional[queue.Queue]] = [None] * n
        self._threads: List[Optional[threading.Thread]] = [None] * n
        self._abandoned: List[Optional[threading.Event]] = [None] * n

    def start(self, shard: int, overrides: Optional[dict] = None):
        """(Re)start one shard worker thread."""
        self.kill(shard)
        requests: queue.Queue = queue.Queue()
        replies: queue.Queue = queue.Queue()
        abandoned = threading.Event()
        kwargs = _merge_overrides(self._host_args[shard], overrides)
        thread = threading.Thread(
            target=self._worker,
            args=(kwargs, requests, replies, abandoned),
            name=f"repro-shard-{kwargs['shard_id']}",
            daemon=True,
        )
        thread.start()
        self._requests[shard] = requests
        self._replies[shard] = replies
        self._threads[shard] = thread
        self._abandoned[shard] = abandoned
        status, result = replies.get()
        if status != "ok":
            self.kill(shard)
            return "fatal", result
        return "ok", result

    @staticmethod
    def _worker(
        kwargs: dict,
        requests: queue.Queue,
        replies: queue.Queue,
        abandoned: threading.Event,
    ):
        try:
            host = _ShardHost(**kwargs)
        except BaseException as error:
            replies.put(("fatal", _describe_error(error)))
            return
        host.abandoned_check = abandoned.is_set
        replies.put(("ok", host.info()))
        while True:
            item = requests.get()
            if item is None:
                host.abandon()
                return
            cmd, payload = item
            try:
                result = host.handle(cmd, payload)
            except WorkerKilled:
                host.abandon()
                return
            except BaseException as error:
                if abandoned.is_set():
                    host.abandon()
                    return
                replies.put(("error", _describe_error(error)))
                continue
            if abandoned.is_set():
                host.abandon()
                return
            if isinstance(result, _Dropped):
                continue
            replies.put(("ok", result))

    def send(self, shard: int, cmd: str, payload) -> bool:
        """Enqueue the command; False when no worker is installed."""
        requests = self._requests[shard]
        if requests is None:
            return False
        requests.put((cmd, payload))
        return True

    def recv(self, shard: int, timeout: Optional[float]):
        """Wait for the reply, watching the deadline and the thread's life."""
        replies = self._replies[shard]
        thread = self._threads[shard]
        if replies is None or thread is None:
            return "dead", "no worker installed"
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            wait = 0.05
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return (
                        "timeout",
                        f"no reply within {timeout}s "
                        f"(thread alive: {thread.is_alive()})",
                    )
                wait = min(wait, remaining)
            try:
                return replies.get(timeout=wait)
            except queue.Empty:
                if not thread.is_alive():
                    try:  # a reply may have raced the thread's exit
                        return replies.get_nowait()
                    except queue.Empty:
                        return (
                            "dead",
                            "worker thread exited without replying",
                        )

    def kill(self, shard: int) -> None:
        """Abandon the shard's worker thread (it cannot be force-killed)."""
        thread = self._threads[shard]
        if thread is None:
            return
        self._abandoned[shard].set()
        self._requests[shard].put(None)  # unblock an idle worker
        self._requests[shard] = None
        self._replies[shard] = None
        self._threads[shard] = None
        self._abandoned[shard] = None

    @property
    def pids(self) -> Optional[List[int]]:
        """Worker process ids (None: threads share this process)."""
        return None

    def stop(self) -> None:
        """Ask every worker thread to exit and join it."""
        threads = []
        for shard, requests in enumerate(self._requests):
            if requests is None:
                continue
            requests.put(None)
            threads.append(self._threads[shard])
        for thread in threads:
            if thread is not None:
                thread.join(timeout=30)


def _process_worker(conn, kwargs: dict) -> None:
    """Entry point of one forked shard worker (ProcessBackend)."""
    try:
        host = _ShardHost(**kwargs)
    except BaseException as error:
        try:
            conn.send(("fatal", _describe_error(error)))
        finally:
            conn.close()
        return
    conn.send(("ok", host.info()))
    while True:
        try:
            item = conn.recv()
        except EOFError:
            break
        if item is None:
            break
        cmd, payload = item
        try:
            result = host.handle(cmd, payload)
        except WorkerKilled:
            # Die like a real crash: no reply, no cleanup, no atexit.
            os.kill(os.getpid(), signal.SIGKILL)
        except BaseException as error:
            conn.send(("error", _describe_error(error)))
            continue
        if isinstance(result, _Dropped):
            continue
        conn.send(("ok", result))
    conn.close()


class _ProcessBackend:
    """One forked ``multiprocessing`` worker per shard — real multi-core."""

    name = "process"

    def __init__(self, host_args: List[dict]):
        import multiprocessing

        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError as error:  # pragma: no cover - platform-specific
            raise ShardingError(
                "the process backend requires a fork-capable platform "
                "(factories cross into workers by inheritance); use the "
                "thread backend instead"
            ) from error
        n = len(host_args)
        self._host_args = [dict(kwargs) for kwargs in host_args]
        self._connections = [None] * n
        self._processes = [None] * n

    def start(self, shard: int, overrides: Optional[dict] = None):
        """(Re)fork one shard worker and wait for its construction report."""
        self.kill(shard)
        kwargs = _merge_overrides(self._host_args[shard], overrides)
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_process_worker,
            args=(child_conn, kwargs),
            name=f"repro-shard-{kwargs['shard_id']}",
            daemon=True,
        )
        try:
            process.start()
        except BaseException as error:
            parent_conn.close()
            child_conn.close()
            return "fatal", _describe_error(error)
        child_conn.close()
        self._connections[shard] = parent_conn
        self._processes[shard] = process
        try:
            status, result = parent_conn.recv()
        except (ConnectionError, EOFError, OSError):
            status, result = "fatal", "worker exited before reporting"
        if status != "ok":
            self.kill(shard)
            return "fatal", result
        return "ok", result

    def send(self, shard: int, cmd: str, payload) -> bool:
        """Write the command down the shard's pipe; False if unreachable."""
        conn = self._connections[shard]
        if conn is None:
            return False
        try:
            conn.send((cmd, payload))
            return True
        except (ConnectionError, EOFError, OSError):
            return False

    def recv(self, shard: int, timeout: Optional[float]):
        """Wait for the reply, watching the deadline and the process's life."""
        conn = self._connections[shard]
        process = self._processes[shard]
        if conn is None or process is None:
            return "dead", "no worker installed"
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            wait = 0.05
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return (
                        "timeout",
                        f"no reply within {timeout}s "
                        f"(pid {process.pid} alive: {process.is_alive()})",
                    )
                wait = min(wait, remaining)
            try:
                ready = conn.poll(wait)
            except (ConnectionError, EOFError, OSError):
                return "dead", f"worker pipe broke (pid {process.pid})"
            if ready:
                try:
                    return conn.recv()
                except (ConnectionError, EOFError, OSError):
                    return (
                        "dead",
                        f"worker died mid-command (pid {process.pid})",
                    )
            if not process.is_alive():
                # One final poll: the reply may have raced the exit.
                try:
                    if conn.poll(0):
                        return conn.recv()
                except (ConnectionError, EOFError, OSError):
                    pass
                return "dead", f"worker died (pid {process.pid})"

    def kill(self, shard: int) -> None:
        """SIGKILL the shard's worker and reap it — fencing it off its WAL."""
        process = self._processes[shard]
        conn = self._connections[shard]
        self._processes[shard] = None
        self._connections[shard] = None
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        if process is not None:
            if process.is_alive():
                process.kill()
            process.join(timeout=10)
            if not process.is_alive():
                process.close()

    @property
    def pids(self) -> List[Optional[int]]:
        """Worker process ids (e.g. for crash-injection tests)."""
        return [
            process.pid if process is not None else None
            for process in self._processes
        ]

    def stop(self) -> None:
        """Ask every worker to exit; join, then terminate/kill stragglers.

        Always leaves zero live children behind, whatever state the
        workers were in — including after a failed open or a mid-run
        escalation.
        """
        for conn in self._connections:
            if conn is None:
                continue
            try:
                conn.send(None)
            except (ConnectionError, EOFError, OSError):
                pass
        for process in self._processes:
            if process is None:
                continue
            process.join(timeout=10)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.kill()
                process.join(timeout=5)
            if not process.is_alive():
                process.close()
        for conn in self._connections:
            if conn is not None:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - defensive
                    pass
        self._connections = [None] * len(self._connections)
        self._processes = [None] * len(self._processes)


class _FacadeResolver:
    """The facade's slide resolver plus its optional durable state.

    Routed ingest resolves every slide exactly once, at the facade; this
    wrapper gives that resolver the same snapshot+WAL recipe a shard
    engine gets, under ``<root>/resolver/``.  The WAL logs the *raw
    action slides* (appended before routing), so after a crash the
    resolver replays its tail and its clock always covers every shard's
    clock — a redelivered suffix then re-resolves idempotently and the
    routed records a lagging shard receives are identical to the
    originals.
    """

    def __init__(
        self,
        resolver: SlideResolver,
        store: Optional[StateStore],
        slide_seq: int,
        replayed: int,
        snapshot_every: int,
    ):
        self._resolver = resolver
        self._store = store
        self._slide_seq = slide_seq
        self._replayed = replayed
        self._snapshot_every = snapshot_every
        self._last_snapshot_seq = slide_seq if replayed == 0 else None

    @classmethod
    def open(
        cls,
        state_root: Optional[pathlib.Path],
        retention: Optional[int],
        snapshot_every: int,
        keep_snapshots: int,
        segment_records: int,
        fsync: bool,
    ) -> "_FacadeResolver":
        """Restore (or freshly build) the facade resolver."""
        if state_root is None:
            return cls(SlideResolver(retention=retention), None, 0, 0, snapshot_every)
        store = StateStore(
            state_root / RESOLVER_DIR_NAME,
            keep_snapshots=keep_snapshots,
            segment_records=segment_records,
            fsync=fsync,
        )
        latest = store.snapshots.load_latest()
        if latest is not None:
            seq, document = latest
            version = document.get("format")
            if version != RESOLVER_SNAPSHOT_FORMAT:
                raise PersistenceError(
                    f"unsupported resolver snapshot format {version!r}; "
                    f"this build reads version {RESOLVER_SNAPSHOT_FORMAT}"
                )
            resolver = SlideResolver.from_state(document["resolver"])
        else:
            seq = 0
            resolver = SlideResolver(retention=retention)
        replayed = 0
        for wal_seq, payload in store.wal.replay(after=seq):
            if isinstance(payload, ResolvedSlide):
                raise PersistenceError(
                    "the facade resolver WAL logs raw action slides, but "
                    f"seq {wal_seq} holds a routed record; the state dir "
                    "is corrupt or mislaid"
                )
            if replayed == 0 and latest is None and wal_seq != 1:
                raise PersistenceError(
                    f"no resolver snapshot and its WAL starts at slide "
                    f"{wal_seq}; cannot recover the stream prefix"
                )
            if replayed or latest is not None:
                if wal_seq != seq + 1:
                    raise PersistenceError(
                        f"resolver WAL gap: expected slide {seq + 1}, "
                        f"found {wal_seq}"
                    )
            resolver.resolve(payload)
            replayed += 1
            seq = wal_seq
        return cls(resolver, store, seq, replayed, snapshot_every)

    @property
    def now(self) -> int:
        """The resolver's stream clock."""
        return self._resolver.now

    @property
    def actions_processed(self) -> int:
        """Distinct stream actions resolved (global, not per shard)."""
        return self._resolver.actions_processed

    @property
    def replayed_slides(self) -> int:
        """WAL slides replayed by :meth:`open`."""
        return self._replayed

    @property
    def slides_processed(self) -> int:
        """Resolver slide sequence (== resolved slides in its lifetime)."""
        return self._slide_seq

    def log_and_resolve(self, batch: Sequence[Action]) -> ResolvedSlide:
        """Validate, write-ahead-log, then resolve one slide.

        The batch is validated (strictly ascending) *before* it reaches
        the WAL, so a poisoned slide is never logged; actions at or
        below the resolver clock (redelivery) resolve idempotently.
        """
        previous = 0
        for action in batch:
            if action.time <= previous:
                raise ValueError(
                    f"resolver received out-of-order action {action.time} "
                    f"after {previous}"
                )
            previous = action.time
        seq = self._slide_seq + 1
        if self._store is not None:
            self._store.wal.append(seq, batch)
        resolved = self._resolver.resolve(batch)
        self._slide_seq = seq
        if (
            self._store is not None
            and self._snapshot_every
            and seq % self._snapshot_every == 0
        ):
            self.snapshot()
        return resolved

    def snapshot(self) -> None:
        """Write a resolver snapshot and prune the covered WAL tail."""
        if self._store is None:
            return
        self._store.snapshots.save(
            self._slide_seq,
            {
                "format": RESOLVER_SNAPSHOT_FORMAT,
                "slide_seq": self._slide_seq,
                "resolver": self._resolver.to_state(),
            },
        )
        self._last_snapshot_seq = self._slide_seq
        retained = self._store.snapshots.sequences()
        if retained:
            self._store.wal.prune_through(min(retained))

    def close(self, snapshot: bool = True) -> None:
        """Seal (final snapshot by default) and release file handles."""
        if self._store is not None:
            if snapshot and self._slide_seq != self._last_snapshot_seq:
                self.snapshot()
            self._store.close()


class ShardedBoard:
    """Board adapter: the merged, multi-query face of a sharded engine.

    Satisfies the query-board protocol the serving plane consumes
    (``names``/``query``/``query_all``/``query_stats``/
    ``add_publish_hook``) so :class:`ShardedEngine` drops into
    :mod:`repro.service` wherever a
    :class:`~repro.core.multi.MultiQueryEngine` fits.
    """

    def __init__(self, engine: "ShardedEngine"):
        """Wrap ``engine`` (built by the engine itself; not user-facing)."""
        self._engine = engine

    def names(self) -> List[str]:
        """Query names served by the merged board, sorted."""
        return sorted(self._engine._merge_params)

    def query(self, name: str) -> SIMResult:
        """The merged answer of one query.

        Raises:
            KeyError: when ``name`` is not on the board.
        """
        answers = self._engine.query_all()
        if name not in answers:
            raise KeyError(
                f"unknown query {name!r}; registered: {sorted(answers)}"
            )
        return answers[name]

    def query_all(self) -> Dict[str, SIMResult]:
        """Merged answers of every query on the board."""
        return self._engine.query_all()

    def query_stats(self) -> Dict[str, dict]:
        """Per-query operational stats (sharded flavour, for ``/metrics``).

        While a shard is healing the stats carry ``degraded: True`` plus
        the down shard ids, so readers can see they are on survivor
        answers.
        """
        engine = self._engine
        degraded = engine.degraded
        stats = {}
        for name in self.names():
            entry = {
                "kind": "sharded",
                "shards": engine.shard_count,
                "ingest": engine.ingest_mode,
                "actions_processed": engine.actions_processed,
                "time": engine.now,
                "degraded": degraded,
            }
            if degraded:
                entry["degraded_shards"] = engine.degraded_shards
            stats[name] = entry
        return stats

    def add_publish_hook(self, hook) -> None:
        """Call ``hook(merged_answers)`` after every processed slide."""
        self._engine._publish_hooks.append(hook)


class ShardedEngine:
    """Facade over S shard engines: broadcast writes, merge-on-read top-k."""

    def __init__(
        self,
        backend,
        supervisor: ShardSupervisor,
        partitioner: Partitioner,
        merge_params: Dict[str, tuple],
        multi: bool,
        state_root: Optional[pathlib.Path],
        infos: List[dict],
        resolver: Optional[_FacadeResolver] = None,
    ):
        """Internal constructor — use :meth:`open`."""
        self._backend = backend
        self._supervisor = supervisor
        self._partitioner = partitioner
        self._merge_params = merge_params
        self._multi = multi
        self._state_root = state_root
        self._resolver = resolver
        self._shard_nows = [info["now"] for info in infos]
        self._shard_slides = [info["slides"] for info in infos]
        self._snapshots = [info["snapshots_written"] for info in infos]
        self._actions = max((info["actions"] for info in infos), default=0)
        #: Per-shard consumed-work counters: stream actions in broadcast
        #: mode, routed records in routed mode (the replicated-work fix).
        self._shard_actions = [info["actions"] for info in infos]
        self._replayed = [info["replayed"] for info in infos]
        # Per-shard busy-seconds: cumulative across worker incarnations
        # (restarts reset a worker's own counter; we fold the delta).
        self._busy_seconds = [
            float(info.get("busy_seconds", 0.0)) for info in infos
        ]
        self._busy_last_seen = list(self._busy_seconds)
        #: Busy-time gap between the hottest and coolest shard on the
        #: last processed slide — the slide-barrier straggler signal.
        self.last_straggler_seconds = 0.0
        #: Influence records routed to shards on the last processed slide
        #: (0 before any slide; stays 0 in broadcast mode).
        self.last_routed_records = 0
        self._publish_hooks: List = []
        self._board = ShardedBoard(self)
        self._lock = threading.Lock()
        self._closed = False

    # -- construction ------------------------------------------------------

    @classmethod
    def open(
        cls,
        factory: Callable,
        shards: int,
        state_dir=None,
        backend: str = "thread",
        partitioner: Optional[Partitioner] = None,
        snapshot_every: int = 16,
        keep_snapshots: int = 3,
        segment_records: int = 256,
        fsync: bool = True,
        retries: int = 3,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        call_timeout: Optional[float] = 30.0,
        fault_plan: Optional[FaultPlan] = None,
        routed: Optional[bool] = None,
    ) -> "ShardedEngine":
        """Build (or recover) a sharded engine.

        Args:
            factory: ``factory(assignment)`` builds one shard's algorithm —
                an IC/SIC instance (or a MultiQueryEngine board of them)
                constructed with ``shard=assignment``.  It is also called
                with ``None`` once, in the facade, to probe the query
                names, ``k`` and influence functions the merge needs.
            shards: Number of shard engines (>= 1).
            state_dir: Durable state root (``shard-<i>/`` per shard plus a
                ``sharding.json`` manifest), or ``None`` for in-memory.
            backend: ``"serial"``, ``"thread"`` (default) or ``"process"``.
            partitioner: Influencer partitioner; defaults to
                :class:`~repro.sharding.partition.HashPartitioner`.
            routed: Ingest mode.  ``None`` (default) follows an existing
                manifest's mode, and for fresh state picks routed ingest
                whenever every query supports pre-resolved slides (no
                filtered queries, every algorithm overrides the resolved
                absorb hook) — broadcast otherwise.  ``True``/``False``
                force a mode: forcing routed on an unsupporting board
                raises :class:`ShardingError`; opening an existing state
                root in the other mode raises
                :class:`~repro.persistence.serialize.PersistenceError`
                (use :func:`migrate_to_routed` for broadcast roots).
            snapshot_every: Per-shard auto-snapshot cadence in slides.
            keep_snapshots: Per-shard snapshot retention.
            segment_records: Per-shard WAL records per segment.
            fsync: Force per-shard WAL appends/snapshots to stable storage.
            retries: Supervisor restart attempts per shard incident before
                escalating :class:`ShardingError` (``0`` = fail fast).
            backoff_base: First restart delay in seconds (doubles per
                attempt, capped at ``backoff_max``).
            backoff_max: Restart backoff ceiling in seconds.
            call_timeout: Per-call reply deadline in seconds; ``None``
                disables hang detection (deaths are still detected).
            fault_plan: Optional scripted chaos
                (:class:`~repro.faults.plan.FaultPlan`) for deterministic
                failure drills.

        Raises:
            ShardingError: on bad knobs or worker construction failure.
            PersistenceError: when an existing state root disagrees with
                the requested shard count/partitioner or per-shard config.
        """
        if shards < 1:
            raise ShardingError(f"shards must be >= 1, got {shards}")
        if backend not in _BACKENDS:
            raise ShardingError(
                f"unknown backend {backend!r}; choose from {_BACKENDS}"
            )
        if partitioner is None:
            partitioner = HashPartitioner(shards)
        if partitioner.shards != shards:
            raise ShardingError(
                f"partitioner spreads over {partitioner.shards} shards, "
                f"but {shards} were requested"
            )
        if fault_plan is not None and fault_plan.max_shard() >= shards:
            raise ShardingError(
                f"fault plan targets shard {fault_plan.max_shard()}, but "
                f"only {shards} shard(s) were requested"
            )
        state_root = None
        stored_manifest = None
        if state_dir is not None:
            state_root = pathlib.Path(state_dir)
            stored_manifest = cls._read_manifest(state_root)
        probe = factory(None)
        merge_params = cls._probe_merge_params(probe)
        multi = isinstance(probe, MultiQueryEngine)
        supports_resolved = cls._probe_resolved_support(probe)
        if routed is None:
            if stored_manifest is not None:
                routed = stored_manifest.get("ingest") == "routed"
            else:
                routed = supports_resolved
        if routed and not supports_resolved:
            raise ShardingError(
                "routed ingest needs every query to absorb pre-resolved "
                "slides (no filtered queries; IC/SIC-style algorithms); "
                "this board cannot — use routed=False (broadcast ingest)"
            )
        if state_root is not None:
            cls._check_manifest(state_root, shards, partitioner, routed)
        resolver = None
        if routed:
            resolver = _FacadeResolver.open(
                state_root,
                retention=cls._probe_retention(probe),
                snapshot_every=snapshot_every,
                keep_snapshots=keep_snapshots,
                segment_records=segment_records,
                fsync=fsync,
            )
        state_dirs = [
            shard_state_dir(state_root, shard) if state_root is not None else None
            for shard in range(shards)
        ]
        host_args = []
        for shard in range(shards):
            worker_faults = (
                fault_plan.for_shard(shard) if fault_plan is not None else ()
            )
            host_args.append(
                {
                    "shard_id": shard,
                    "assignment": ShardAssignment(partitioner, shard),
                    "factory": factory,
                    "state_dir": state_dirs[shard],
                    "snapshot_every": snapshot_every,
                    "keep_snapshots": keep_snapshots,
                    "segment_records": segment_records,
                    "fsync": fsync,
                    "fault_state": (
                        {
                            "faults": [f.to_state() for f in worker_faults],
                            "disarm_through": 0,
                        }
                        if worker_faults
                        else None
                    ),
                }
            )
        builder = {
            "serial": _SerialBackend,
            "thread": _ThreadBackend,
            "process": _ProcessBackend,
        }[backend]
        backend_obj = builder(host_args)
        infos = []
        failures = []
        for shard in range(shards):
            status, result = backend_obj.start(shard)
            if status == "ok":
                infos.append(result)
            else:
                failures.append(f"shard {shard}: {result}")
        if failures:
            # Never leave half-started workers behind a failed open.
            backend_obj.stop()
            raise ShardingError(
                "shard worker construction failed: " + "; ".join(failures)
            )
        supervisor = ShardSupervisor(
            backend_obj,
            shards,
            state_dirs=state_dirs,
            retries=retries,
            backoff_base=backoff_base,
            backoff_max=backoff_max,
            call_timeout=call_timeout,
            fault_plan=fault_plan,
        )
        engine = cls(
            backend_obj,
            supervisor,
            partitioner,
            merge_params,
            multi,
            state_root,
            infos,
            resolver=resolver,
        )
        if resolver is not None and engine.now > resolver.now:
            # Shards can never outrun the write-ahead resolver log; a
            # clock ahead of the resolver means the resolver state was
            # deleted or swapped from under the shard dirs.
            backend_obj.stop()
            raise PersistenceError(
                f"shard clocks reach {engine.now} but the facade resolver "
                f"only covers {resolver.now}; the resolver state under "
                f"{state_root}/{RESOLVER_DIR_NAME} is stale or missing"
            )
        return engine

    @staticmethod
    def _read_manifest(root: pathlib.Path) -> Optional[dict]:
        """The stored ``sharding.json``, or ``None`` for a fresh root."""
        manifest_path = root / MANIFEST_NAME
        if not manifest_path.exists():
            return None
        return json.loads(manifest_path.read_text())

    @classmethod
    def _check_manifest(
        cls,
        root: pathlib.Path,
        shards: int,
        partitioner: Partitioner,
        routed: bool,
    ) -> None:
        """Create or validate the state root's ``sharding.json``.

        Broadcast roots keep the original format-1 document bit for bit
        (older builds still open them); routed roots are format 2 with an
        explicit ``ingest`` key.
        """
        if routed:
            expected = {
                "format": MANIFEST_FORMAT_ROUTED,
                "shards": shards,
                "partitioner": partitioner.to_state(),
                "ingest": "routed",
            }
        else:
            expected = {
                "format": MANIFEST_FORMAT_BROADCAST,
                "shards": shards,
                "partitioner": partitioner.to_state(),
            }
        stored = cls._read_manifest(root)
        if stored is not None:
            if stored != expected:
                stored_mode = (
                    "routed" if stored.get("ingest") == "routed" else "broadcast"
                )
                wanted_mode = "routed" if routed else "broadcast"
                if (
                    stored_mode != wanted_mode
                    and stored.get("shards") == shards
                    and stored.get("partitioner") == partitioner.to_state()
                ):
                    hint = (
                        "convert it in place with migrate_to_routed() or "
                        "reopen with routed=False"
                        if routed
                        else "its shard WALs hold routed records that "
                        "broadcast ingest cannot replay; reopen with "
                        "routed=True"
                    )
                    raise PersistenceError(
                        f"sharded state dir {root} holds {stored_mode}-"
                        f"ingest state (manifest format "
                        f"{stored.get('format')}), but {wanted_mode} "
                        f"ingest was requested; {hint}"
                    )
                raise PersistenceError(
                    f"sharded state dir {root} was created with "
                    f"{stored.get('shards')} shards and partitioner "
                    f"{stored.get('partitioner')}, but "
                    f"{shards}/{partitioner.to_state()} were requested; "
                    "reopen with matching settings or a fresh state dir"
                )
            # Re-check the partitioner round-trips (guards registry drift).
            partitioner_from_state(stored["partitioner"])
            return
        root.mkdir(parents=True, exist_ok=True)
        tmp = root / (MANIFEST_NAME + ".tmp")
        tmp.write_text(json.dumps(expected, sort_keys=True) + "\n")
        os.replace(tmp, root / MANIFEST_NAME)

    @staticmethod
    def _probe_resolved_support(probe) -> bool:
        """Whether the probe board can run on routed (pre-resolved) slides."""
        if isinstance(probe, MultiQueryEngine):
            return probe.supports_resolved()
        if isinstance(probe, SIMAlgorithm):
            return (
                type(probe)._on_slide_resolved
                is not SIMAlgorithm._on_slide_resolved
            )
        return False

    @staticmethod
    def _probe_retention(probe) -> Optional[int]:
        """The facade resolver's retention horizon from the probe board.

        The resolver's forest feeds *every* shard algorithm, so it must
        retain at least as much history as the most demanding one:
        ``None`` (unbounded) if any algorithm is unbounded, else the
        maximum retention.  Only called on resolved-capable boards, which
        hold no filtered queries.
        """
        if isinstance(probe, MultiQueryEngine):
            algorithms = [probe.get(name) for name in probe.names()]
        else:
            algorithms = [probe]
        retentions = [
            a.forest.to_state().get("retention") for a in algorithms
        ]
        if any(r is None for r in retentions):
            return None
        return max(retentions)

    @staticmethod
    def _probe_merge_params(probe) -> Dict[str, tuple]:
        """``{query name: (k, influence function or None)}`` from a probe build."""
        if isinstance(probe, MultiQueryEngine):
            params = {}
            for name in probe.names():
                registered = probe.get(name)
                algorithm = (
                    registered.algorithm
                    if isinstance(registered, FilteredSIM)
                    else registered
                )
                params[name] = (
                    algorithm.k,
                    getattr(algorithm, "influence_function", None),
                )
            if not params:
                raise ShardingError("the probe board registers no queries")
            return params
        if isinstance(probe, SIMAlgorithm):
            return {"main": (probe.k, getattr(probe, "influence_function", None))}
        raise ShardingError(
            f"factory(None) must build a SIMAlgorithm or MultiQueryEngine, "
            f"got {type(probe).__name__}"
        )

    # -- streaming ---------------------------------------------------------

    def process(self, batch: Sequence[Action]) -> None:
        """Feed one slide to the shards (routed or broadcast fan-out).

        The batch must be strictly ascending and beyond the facade clock
        (the minimum shard clock).  A shard that is *ahead* — possible
        after a crash that hit shards at different positions — receives
        only the work beyond its own clock, so at-least-once redelivery
        heals the lag instead of tripping the per-shard stream contract.

        In routed mode the facade write-ahead-logs the raw slide,
        resolves it exactly once through its
        :class:`~repro.core.resolve.SlideResolver`, partitions the
        resolved influence tuples by owning influencer and sends each
        shard only its routed records; in broadcast mode every shard
        receives the raw actions and resolves its own forest.

        A shard worker that dies or hangs during the call is healed in
        place by the supervisor (restart from its snapshot + WAL, then
        redeliver the work beyond its recovered clock); the caller sees
        :class:`ShardingError` only after the retry budget is exhausted.
        """
        if self._closed:
            raise ShardingError("sharded engine is closed")
        batch = list(batch)
        if not batch:
            return
        last = self.now
        for action in batch:
            if action.time <= last:
                raise ValueError(
                    f"engine received out-of-order action {action.time} "
                    f"after {last}"
                )
            last = action.time
        if self._resolver is not None:
            cmd, payloads, repayload = self._routed_fanout(batch)
        else:
            cmd, payloads, repayload = self._broadcast_fanout(batch)
        incidents = [slides + 1 for slides in self._shard_slides]
        busy_before = list(self._busy_seconds)
        fanout_started = time.perf_counter()
        with self._lock:
            replies = self._supervisor.call(
                cmd,
                payloads,
                heal=True,
                repayload=repayload,
                incident_slides=incidents,
            )
        self._absorb_infos(replies)
        record_stage(
            "shard_fanout", time.perf_counter() - fanout_started, len(batch)
        )
        deltas = [
            self._busy_seconds[shard] - busy_before[shard]
            for shard, info in enumerate(replies)
            if info is not None
        ]
        if len(deltas) > 1:
            self.last_straggler_seconds = max(deltas) - min(deltas)
        if self._publish_hooks:
            merge_started = time.perf_counter()
            answers = self.query_all()
            record_stage(
                "shard_merge", time.perf_counter() - merge_started, len(answers)
            )
            for hook in self._publish_hooks:
                hook(answers)

    def _broadcast_fanout(self, batch: List[Action]):
        """Per-shard raw-action payloads (the legacy broadcast write path)."""
        encoded = [(a.time, a.user, a.parent) for a in batch]
        aligned = all(now == self._shard_nows[0] for now in self._shard_nows)
        payloads: List = []
        for shard_now in self._shard_nows:
            if aligned:
                payloads.append(encoded)
            else:
                suffix = [item for item in encoded if item[0] > shard_now]
                payloads.append(suffix if suffix else _SKIP)

        def repayload(shard: int, restored: dict):
            suffix = [item for item in encoded if item[0] > restored["now"]]
            return suffix if suffix else _SKIP

        return "process", payloads, repayload

    def _routed_fanout(self, batch: List[Action]):
        """Resolve once, partition by influencer, build per-shard payloads.

        Every shard behind the slide receives a payload — even one whose
        projected record list is empty: checkpoints must open at the
        slide's *global* start and the absorption ledger counts the
        global ``L``, which is what keeps routed answers identical to
        broadcast.  Only a shard already at or beyond the slide's end
        (post-crash redelivery) is skipped.
        """
        resolve_started = time.perf_counter()
        resolved = self._resolver.log_and_resolve(batch)
        record_stage(
            "resolve", time.perf_counter() - resolve_started, len(batch)
        )
        route_started = time.perf_counter()
        parts = partition_slide(resolved, self._partitioner)
        payloads: List = []
        routed_records = 0
        for shard, part in enumerate(parts):
            shard_now = self._shard_nows[shard]
            if shard_now >= resolved.last:
                payloads.append(_SKIP)
                continue
            if shard_now >= resolved.start:
                # Mid-slide catch-up: slice the *global* slide beyond the
                # shard clock, then narrow to owned influencers.
                owns = ShardAssignment(self._partitioner, shard).owns
                part = resolved.slice_after(shard_now).project(owns)
                if part.count == 0:
                    payloads.append(_SKIP)
                    continue
            payloads.append(part.to_wire())
            routed_records += len(part.records)
        self.last_routed_records = routed_records
        record_stage(
            "route", time.perf_counter() - route_started, routed_records
        )

        def repayload(shard: int, restored: dict):
            now = restored["now"]
            if now >= resolved.last:
                return _SKIP
            if now < resolved.start:
                return parts[shard].to_wire()
            owns = ShardAssignment(self._partitioner, shard).owns
            suffix = resolved.slice_after(now).project(owns)
            return suffix.to_wire() if suffix.count else _SKIP

        return "apply", payloads, repayload

    def _absorb_infos(self, replies: Sequence[Optional[dict]]) -> None:
        """Update cached per-shard positions from command replies.

        ``info["actions"]`` counts what the shard *consumed*: stream
        actions in broadcast mode, routed records in routed mode — the
        facade keeps both the per-shard counters (``/metrics``,
        :meth:`supervision_stats`) and, in broadcast mode only, the
        stream-global maximum (routed mode reads the resolver instead).
        """
        for shard, info in enumerate(replies):
            if info is None:
                continue
            self._shard_nows[shard] = info["now"]
            self._shard_slides[shard] = info["slides"]
            self._snapshots[shard] = info["snapshots_written"]
            self._shard_actions[shard] = info["actions"]
            self._actions = max(self._actions, info["actions"])
            busy = float(info.get("busy_seconds", 0.0))
            delta = busy - self._busy_last_seen[shard]
            if delta < 0:
                # The worker restarted: its counter began again at zero.
                delta = busy
            self._busy_seconds[shard] += delta
            self._busy_last_seen[shard] = busy

    # -- reads -------------------------------------------------------------

    def query_all(self) -> Dict[str, SIMResult]:
        """Merged answers of every query (the merge-on-read read path).

        Degrades instead of failing: a shard that is down (or dies during
        the call) contributes nothing, survivors are merged as usual, and
        :attr:`degraded` turns on until the shard heals.  Raises
        :class:`ShardingError` only when *no* shard can answer.
        """
        if self._closed:
            raise ShardingError("sharded engine is closed")
        with self._lock:
            gathered = self._supervisor.call(
                "answers", [None] * self.shard_count, heal=False
            )
        per_shard = [
            self._decode_answers(shard, payload)
            for shard, payload in enumerate(gathered)
            if payload is not None
        ]
        by_query = answers_by_query(per_shard)
        merged: Dict[str, SIMResult] = {}
        for name, (k, func) in self._merge_params.items():
            merged[name] = merge_shard_answers(
                by_query.get(name, []), k=k, func=func, time=self.now
            )
        return merged

    @staticmethod
    def _decode_answers(shard: int, payload: dict) -> Dict[str, ShardAnswer]:
        """Rebuild :class:`~repro.sharding.merge.ShardAnswer` objects."""
        decoded = {}
        for name, entry in payload.items():
            candidates = None
            if entry["candidates"] is not None:
                candidates = tuple(
                    SeedCandidate(user=user, coverage=frozenset(coverage))
                    for user, coverage in entry["candidates"]
                )
            decoded[name] = ShardAnswer(
                shard=shard,
                time=entry["time"],
                seeds=frozenset(entry["seeds"]),
                value=entry["value"],
                candidates=candidates,
            )
        return decoded

    def query(self) -> SIMResult:
        """The merged answer (single-query engines answer as ``"main"``)."""
        answers = self.query_all()
        if not self._multi:
            return answers["main"]
        if len(answers) == 1:
            return next(iter(answers.values()))
        raise ShardingError(
            f"query() is ambiguous on a board of {len(answers)} queries; "
            "use query_all() or algorithm.query(name)"
        )

    def query_stats(self) -> Dict[str, dict]:
        """Per-query operational stats (delegates to the board adapter)."""
        return self._board.query_stats()

    # -- supervision -------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """Whether any shard is down — reads are on survivor answers."""
        return self._supervisor.degraded

    @property
    def degraded_shards(self) -> List[int]:
        """Ids of the shards currently down/healing."""
        return self._supervisor.degraded_shards

    @property
    def heal_histogram(self):
        """The supervisor's heal-duration histogram (telemetry scrape)."""
        return self._supervisor.heal_hist

    def supervision_stats(self) -> dict:
        """Supervisor counters plus per-shard health and last-known clocks.

        Per-shard entries report the work each shard actually consumed:
        in routed mode ``routed_records`` (the influence tuples it was
        sent), in broadcast mode ``actions`` (the full stream — every
        shard replicates it).  Routed stats additionally carry the facade
        resolver's position.
        """
        stats = self._supervisor.stats()
        states = self._supervisor.shard_states()
        routed = self._resolver is not None
        for state in states:
            shard = state["shard"]
            state["last_known_now"] = self._shard_nows[shard]
            state["busy_seconds"] = round(self._busy_seconds[shard], 6)
            state["slides"] = self._shard_slides[shard]
            if routed:
                state["routed_records"] = self._shard_actions[shard]
            else:
                state["actions"] = self._shard_actions[shard]
        stats["shards"] = states
        stats["straggler_seconds"] = round(self.last_straggler_seconds, 6)
        stats["ingest"] = self.ingest_mode
        if routed:
            stats["resolver"] = {
                "now": self._resolver.now,
                "actions_processed": self._resolver.actions_processed,
                "slides": self._resolver.slides_processed,
                "replayed": self._resolver.replayed_slides,
            }
            stats["last_routed_records"] = self.last_routed_records
        return stats

    def heal(self) -> bool:
        """Restart every down shard now; ``True`` when something healed.

        Raises:
            ShardingError: when a down shard cannot be healed (retry
                budget exhausted, or no durable state).
        """
        if self._closed:
            raise ShardingError("sharded engine is closed")
        with self._lock:
            restored = self._supervisor.heal_all(
                incident_slides=list(self._shard_slides)
            )
        self._absorb_infos(restored)
        return any(info is not None for info in restored)

    # -- durability --------------------------------------------------------

    def snapshot(self) -> None:
        """Write a full-state snapshot on every shard (and the resolver) now."""
        if self._state_root is None:
            raise PersistenceError("engine has no state store to snapshot to")
        if self._resolver is not None:
            self._resolver.snapshot()
        with self._lock:
            replies = self._supervisor.call(
                "snapshot",
                [None] * self.shard_count,
                heal=True,
                incident_slides=list(self._shard_slides),
            )
        self._absorb_infos(replies)

    def close(self, snapshot: bool = True) -> None:
        """Seal every shard (final snapshot by default) and stop workers.

        Idempotent; worker failures during close are swallowed after the
        first attempt so a crashed shard never blocks releasing the rest.
        """
        if self._closed:
            return
        self._closed = True
        try:
            with self._lock:
                self._supervisor.call(
                    "close", [snapshot] * self.shard_count, heal=False
                )
        except ShardingError:
            # A dead shard cannot seal; its WAL already covers recovery.
            pass
        finally:
            self._backend.stop()
            if self._resolver is not None:
                self._resolver.close(snapshot=snapshot)

    def __enter__(self) -> "ShardedEngine":
        """Context-manager entry: the engine itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close on exit; skip the final snapshot after an exception."""
        self.close(snapshot=exc_type is None)

    # -- introspection -----------------------------------------------------

    @property
    def algorithm(self) -> ShardedBoard:
        """The merged query board (the serving plane's write-side contract)."""
        return self._board

    @property
    def partitioner(self) -> Partitioner:
        """The influencer partitioner shared by all shards."""
        return self._partitioner

    @property
    def shard_count(self) -> int:
        """Number of shard engines."""
        return self._partitioner.shards

    @property
    def backend_name(self) -> str:
        """Which worker backend runs the shards."""
        return self._backend.name

    @property
    def ingest_mode(self) -> str:
        """``"routed"`` (resolve-once fan-out) or ``"broadcast"``."""
        return "routed" if self._resolver is not None else "broadcast"

    @property
    def routed(self) -> bool:
        """True when this engine routes resolved records (not raw actions)."""
        return self._resolver is not None

    @property
    def shard_routed_records(self) -> Optional[List[int]]:
        """Per-shard routed records consumed (``None`` in broadcast mode)."""
        if self._resolver is None:
            return None
        return list(self._shard_actions)

    @property
    def worker_pids(self) -> Optional[List[Optional[int]]]:
        """Shard worker process ids (``None`` for in-process backends)."""
        return self._backend.pids

    @property
    def now(self) -> int:
        """The facade stream clock: the *minimum* shard clock.

        Using the minimum keeps at-least-once redelivery sound after a
        crash that left shards at different positions: the serving plane
        drops actions at or below this clock, and anything newer is
        forwarded per shard with the catch-up filter of :meth:`process`.
        A down shard contributes its last-known clock, so a degraded
        answer is honestly timestamped at the healing shard's position.
        """
        return min(self._shard_nows, default=0)

    @property
    def slides_processed(self) -> int:
        """Engine slides at the most advanced shard."""
        return max(self._shard_slides, default=0)

    @property
    def actions_processed(self) -> int:
        """Stream actions consumed (global).

        Broadcast mode reads the most advanced shard (every shard
        replicates the stream); routed mode reads the facade resolver —
        shard counters there count routed records, not stream actions.
        """
        if self._resolver is not None:
            return self._resolver.actions_processed
        return self._actions

    @property
    def replayed_slides(self) -> int:
        """WAL slides replayed at open by the slowest-recovering shard."""
        return max(self._replayed, default=0)

    @property
    def shard_replayed_slides(self) -> List[int]:
        """Per-shard WAL replay counts from the last :meth:`open`."""
        return list(self._replayed)

    @property
    def snapshots_written(self) -> int:
        """Snapshots written across all shards by this engine instance."""
        return sum(self._snapshots)

    @property
    def store(self) -> Optional[pathlib.Path]:
        """The sharded state root (``None`` for in-memory engines)."""
        return self._state_root

    def shard_infos(self) -> List[dict]:
        """Live per-shard positions (one IPC round; for metrics/debugging).

        Down shards are reported from their last-known position with
        ``"state": "down"`` instead of failing the whole call.
        """
        try:
            with self._lock:
                infos = self._supervisor.call(
                    "info", [None] * self.shard_count, heal=False
                )
        except ShardingError:
            # Even a fully-down engine can report last-known positions.
            infos = [None] * self.shard_count
        self._absorb_infos(infos)
        out = []
        for shard, info in enumerate(infos):
            if info is not None:
                entry = dict(info)
                entry["state"] = "up"
            else:
                entry = {
                    "shard": shard,
                    "slides": self._shard_slides[shard],
                    "now": self._shard_nows[shard],
                    "replayed": self._replayed[shard],
                    "snapshots_written": self._snapshots[shard],
                    "actions": None,
                    "durable": self._state_root is not None,
                    "state": "down",
                }
            out.append(entry)
        return out


def migrate_to_routed(state_dir) -> dict:
    """Convert a broadcast-era sharded state dir to routed ingest, in place.

    Broadcast shards each hold the *full* diffusion forest (every shard saw
    every action), so any shard's recovered state can seed the facade
    resolver — the migration picks the most advanced shard (newest snapshot
    plus longest WAL tail), rebuilds a :class:`~repro.core.resolve.SlideResolver`
    from its forest/clock/accounting, replays that shard's WAL tail through
    it, writes the resolver's snapshot under ``<root>/resolver/``, and
    rewrites the manifest to format 2 with ``"ingest": "routed"``.

    The shard directories themselves are untouched: their broadcast-era
    action WALs replay fine on reopen (the durable engine dispatches on
    record kind), and every *subsequent* slide is logged as a routed-tuple
    batch.  The operation is idempotent — an already-routed root returns
    without writing anything.

    Args:
        state_dir: A sharded state root (the directory holding
            ``sharding.json``).

    Returns:
        A summary dict: ``state_dir``, ``ingest``, ``migrated`` (False when
        the root was already routed), and — after a conversion — the
        ``seed_shard`` used, its ``slide_seq``, the resolver ``now`` clock
        and ``actions_processed``, and ``replayed`` WAL slides.

    Raises:
        PersistenceError: when the root has no manifest, no recoverable
            shard state, or its shard WALs already hold routed records
            without a routed manifest (a corrupt or half-converted root).
    """
    root = pathlib.Path(state_dir)
    manifest = ShardedEngine._read_manifest(root)
    if manifest is None:
        raise PersistenceError(
            f"no sharding manifest under {root}; not a sharded state dir"
        )
    if manifest.get("ingest") == "routed":
        return {"state_dir": str(root), "ingest": "routed", "migrated": False}
    shard_dirs = list_shard_state_dirs(root)
    if not shard_dirs:
        raise PersistenceError(
            f"sharded state dir {root} has a manifest but no shard-*/ "
            "directories; nothing to migrate from"
        )

    # Survey every shard; the most advanced one (snapshot seq + WAL tail)
    # defines the resolver's coverage.  Ties break on the lowest shard id.
    best = None  # (slide_seq, -shard, shard_dir, snapshot_doc, snap_seq)
    for shard, shard_dir in enumerate(shard_dirs):
        store = StateStore(shard_dir, fsync=False)
        try:
            latest = store.snapshots.load_latest()
            snap_seq = latest[0] if latest is not None else 0
            doc = latest[1] if latest is not None else None
            last_seq = snap_seq
            for wal_seq, payload in store.wal.replay(after=snap_seq):
                if isinstance(payload, ResolvedSlide):
                    raise PersistenceError(
                        f"shard WAL under {shard_dir} holds routed records "
                        "but the manifest says broadcast; the root is "
                        "corrupt or half-converted"
                    )
                last_seq = wal_seq
        finally:
            store.close()
        if doc is None and last_seq == 0:
            continue
        key = (last_seq, -shard)
        if best is None or key > best[0]:
            best = (key, shard, shard_dir, doc, snap_seq)
    if best is None:
        raise PersistenceError(
            f"no shard under {root} has a snapshot or WAL records; "
            "nothing to migrate from"
        )
    _key, seed_shard, seed_dir, doc, snap_seq = best

    # Seed the resolver from the snapshot's algorithm state (forest, clock,
    # accounting).  Multi-query boards: the member with the widest retention
    # horizon carries the most history (matches _probe_retention).
    if doc is not None:
        state = doc["algorithm"]
        if state.get("algorithm") == "multi":
            def horizon(query_state: dict):
                retention = query_state["base"]["forest"].get("retention")
                return float("inf") if retention is None else retention

            state = max(doc["algorithm"]["queries"].values(), key=horizon)
        base = state["base"]
        resolver = SlideResolver.from_state(
            {
                "forest": base["forest"],
                "last_time": base["window"]["last_time"],
                "actions_processed": base["actions_processed"],
            }
        )
    else:
        resolver = SlideResolver()

    # Replay the seed shard's WAL tail (broadcast = the full stream).
    replayed = 0
    final_seq = snap_seq
    store = StateStore(seed_dir, fsync=False)
    try:
        for wal_seq, payload in store.wal.replay(after=snap_seq):
            resolver.resolve(payload)
            replayed += 1
            final_seq = wal_seq
    finally:
        store.close()

    resolver_store = StateStore(root / RESOLVER_DIR_NAME)
    try:
        resolver_store.snapshots.save(
            final_seq,
            {
                "format": RESOLVER_SNAPSHOT_FORMAT,
                "slide_seq": final_seq,
                "resolver": resolver.to_state(),
            },
        )
    finally:
        resolver_store.close()

    routed_manifest = {
        "format": MANIFEST_FORMAT_ROUTED,
        "shards": manifest["shards"],
        "partitioner": manifest["partitioner"],
        "ingest": "routed",
    }
    tmp = root / (MANIFEST_NAME + ".tmp")
    tmp.write_text(json.dumps(routed_manifest, sort_keys=True) + "\n")
    os.replace(tmp, root / MANIFEST_NAME)
    return {
        "state_dir": str(root),
        "ingest": "routed",
        "migrated": True,
        "seed_shard": seed_shard,
        "slide_seq": final_seq,
        "now": resolver.now,
        "actions_processed": resolver.actions_processed,
        "replayed": replayed,
    }
