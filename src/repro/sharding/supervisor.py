"""ShardSupervisor: detect → back off → heal → degrade → escalate.

The sharded facade used to treat any worker failure as fatal: one dead
fork worker raised :class:`ShardingError` out of ``process``/``query_all``
and the whole engine had to be reopened by hand — even though every shard
already owns a crash-recoverable ``shard-<i>/`` snapshot + WAL directory.
The supervisor closes that loop:

* **Detect.**  Every backend call runs under a per-call timeout with a
  liveness probe, so a dead worker surfaces as ``dead`` and a hung one as
  ``timeout`` (after which it is killed — fencing it off its WAL) instead
  of wedging the caller forever.
* **Heal (writes).**  A failed shard is restarted *in place* from its own
  snapshot + WAL tail, with bounded exponential-backoff retries.  The
  facade re-dispatches only the suffix of the in-flight slide beyond the
  recovered clock (the same min-shard-clock catch-up filter that heals
  at-least-once redelivery), so a heal is invisible to the caller.
* **Degrade (reads).**  A read never restarts workers and never fails on
  a single dead shard: survivors answer, the dead shard contributes its
  last-known clock, and the engine reports ``degraded`` until the next
  write (or an explicit heal) brings the shard back.
* **Escalate.**  Only when the retry budget is exhausted — or the shard
  has no durable state to heal from — does the failure surface as
  :class:`ShardingError`, exactly like before the supervisor existed.

Scripted chaos (:mod:`repro.faults`) plugs in at two points: worker-kind
faults ride into workers through the backend host arguments, and
facade-kind storage faults fire here, between kill and restart.
"""

from __future__ import annotations

import time
import traceback
from typing import Callable, Dict, List, Optional, Sequence

from repro.faults.inject import FacadeFaultInjector
from repro.faults.plan import FACADE_KINDS, FaultPlan
from repro.telemetry.metrics import Histogram

__all__ = ["ShardSupervisor", "ShardingError"]

#: Sentinel payload: this shard has nothing to do for the current call.
_SKIP = object()


class ShardingError(RuntimeError):
    """A shard worker failed (construction, dispatch, or death)."""


def _describe_error(error: BaseException) -> str:
    """One-line error description plus traceback for cross-worker transport."""
    return f"{type(error).__name__}: {error}\n{traceback.format_exc()}"


class _ShardHealth:
    """Mutable per-shard supervision record."""

    __slots__ = ("state", "restarts", "last_error", "down_since")

    def __init__(self):
        self.state = "up"
        self.restarts = 0
        self.last_error: Optional[str] = None
        self.down_since: Optional[float] = None


class ShardSupervisor:
    """Runs every backend fan-out under detection, healing, and accounting."""

    def __init__(
        self,
        backend,
        shards: int,
        *,
        state_dirs: Sequence[Optional[object]],
        retries: int = 3,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        call_timeout: Optional[float] = 30.0,
        fault_plan: Optional[FaultPlan] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ):
        """
        Args:
            backend: A shard backend speaking the per-shard protocol
                (``start``/``send``/``recv``/``kill``/``stop``).
            shards: Shard count.
            state_dirs: Per-shard durable state directory (``None`` for
                in-memory shards, which cannot be healed — a worker
                failure there escalates after marking the shard down).
            retries: Restart attempts per incident before escalating
                (``0`` restores the pre-supervision fail-fast behavior).
            backoff_base: First retry delay; doubles per attempt.
            backoff_max: Backoff ceiling in seconds.
            call_timeout: Per-call reply deadline in seconds (``None``
                disables timeout detection; deaths are still detected).
            fault_plan: Optional scripted chaos; its facade-kind faults
                (WAL corruption) fire between kill and restart, and its
                worker-kind faults are re-armed past the incident slide
                on every restart.
            sleep, clock: Injectable timing (tests).
        """
        if retries < 0:
            raise ShardingError(f"retries must be >= 0, got {retries}")
        if call_timeout is not None and call_timeout <= 0:
            raise ShardingError(
                f"call_timeout must be positive or None, got {call_timeout}"
            )
        if backoff_base < 0 or backoff_max < 0:
            raise ShardingError("backoff delays must be >= 0")
        self._backend = backend
        self._shards = shards
        self._state_dirs = list(state_dirs)
        self._retries = retries
        self._backoff_base = backoff_base
        self._backoff_max = backoff_max
        self._call_timeout = call_timeout
        self._fault_plan = fault_plan
        self._facade_faults = FacadeFaultInjector(
            [f for f in fault_plan.faults if f.kind in FACADE_KINDS]
            if fault_plan is not None
            else []
        )
        self._sleep = sleep
        self._clock = clock
        self._health = [_ShardHealth() for _ in range(shards)]
        self._call_timeouts = 0
        self._escalations = 0
        self._degraded_windows = 0
        self._degraded_seconds = 0.0
        self._degraded_since: Optional[float] = None
        self._last_heal_seconds: Optional[float] = None
        # Restart/heal duration accounting: one observation per
        # successful in-place heal (kill -> backoff -> restart -> retry).
        self.heal_hist = Histogram()
        self._heal_seconds_total = 0.0
        self._last_restart_seconds: Optional[float] = None

    # -- the supervised fan-out --------------------------------------------

    def call(
        self,
        cmd: str,
        payloads: Sequence,
        *,
        heal: bool,
        repayload: Optional[Callable[[int, dict], object]] = None,
        incident_slides: Optional[Sequence[int]] = None,
    ) -> List:
        """Run ``cmd`` on every non-skipped shard; heal or degrade failures.

        Args:
            cmd: The shard command.
            payloads: One payload per shard (``_SKIP`` to skip a shard).
            heal: Write-path semantics — restart failed shards in place
                and re-dispatch, escalating :class:`ShardingError` after
                the retry budget.  With ``heal=False`` (read path) failed
                shards are marked down and contribute ``None``; the call
                raises only when *no* shard can answer.
            repayload: ``repayload(shard, restored_info)`` recomputes the
                payload to re-dispatch after a restart (e.g. the slide
                suffix beyond the recovered clock).  Defaults to the
                original payload.
            incident_slides: Per-shard slide sequence number the call is
                about to produce — used to re-arm scripted faults past the
                incident on restart.  Defaults to 0 (re-arm everything).

        Returns:
            Per-shard results; ``None`` for skipped shards and (reads
            only) for shards that are down.
        """
        results: List = [None] * self._shards
        pending: List[int] = []
        crashed: Dict[int, str] = {}
        app_errors: List[str] = []
        for shard in range(self._shards):
            if self._health[shard].state == "down":
                if heal:
                    crashed[shard] = (
                        self._health[shard].last_error or "shard is down"
                    )
                continue
            payload = payloads[shard]
            if payload is _SKIP:
                continue
            if self._backend.send(shard, cmd, payload):
                pending.append(shard)
            else:
                reason = f"dispatch of {cmd!r} failed: worker unreachable"
                self._mark_down(shard, reason)
                if heal:
                    crashed[shard] = reason
        # Drain every dispatched reply before acting on failures: the
        # reply channels are per-shard and strictly request/reply, so an
        # early exit would leave stale replies to desynchronize the next
        # call.
        for shard in pending:
            status, result = self._backend.recv(shard, self._call_timeout)
            if status == "ok":
                results[shard] = result
            elif status == "error":
                # The worker is alive and its engine rejected the command
                # (e.g. a stream-contract violation).  That is the
                # caller's bug, not a crash: restarting would replay the
                # same state and fail the same way.
                app_errors.append(f"shard {shard} failed on {cmd!r}: {result}")
            else:  # timeout | dead
                if status == "timeout":
                    self._call_timeouts += 1
                    # Fence the stuck worker off its WAL before a restart
                    # can open it.
                    self._backend.kill(shard)
                reason = f"{status} on {cmd!r}: {result}"
                self._mark_down(shard, reason)
                if heal:
                    crashed[shard] = reason
        if app_errors:
            raise ShardingError("; ".join(app_errors))
        if heal:
            for shard in sorted(crashed):
                incident = (
                    incident_slides[shard] if incident_slides is not None else 0
                )
                results[shard] = self._heal(
                    shard, cmd, payloads[shard], repayload, incident
                )
        elif self.degraded and all(
            h.state == "down" for h in self._health
        ):
            raise ShardingError(
                f"all {self._shards} shards are down "
                f"(last: {self._health[-1].last_error}); "
                "process a slide or call heal() to restart them"
            )
        return results

    def heal_all(self, incident_slides: Optional[Sequence[int]] = None) -> List:
        """Restart every down shard now; return per-shard restored infos.

        Raises :class:`ShardingError` when a shard cannot be healed.
        Healthy shards contribute ``None`` (they were not touched).
        """
        results: List = [None] * self._shards
        for shard in range(self._shards):
            if self._health[shard].state != "down":
                continue
            incident = (
                incident_slides[shard] if incident_slides is not None else 0
            )
            results[shard] = self._heal(shard, None, _SKIP, None, incident)
        return results

    # -- healing -----------------------------------------------------------

    def _heal(
        self,
        shard: int,
        cmd: Optional[str],
        payload,
        repayload: Optional[Callable[[int, dict], object]],
        incident_slide: int,
    ):
        """Restart ``shard`` and re-dispatch the in-flight command.

        Returns the command result (or the restored info when there is
        nothing to re-dispatch).  Raises :class:`ShardingError` when the
        retry budget is exhausted or the shard has no durable state.
        """
        heal_started = self._clock()
        health = self._health[shard]
        last_reason = health.last_error or "unknown failure"
        if self._state_dirs[shard] is None:
            self._escalations += 1
            raise ShardingError(
                f"shard {shard} died ({last_reason.splitlines()[0]}) and has "
                "no durable state to heal from; reads are degraded until the "
                "engine is rebuilt"
            )
        attempts = 0
        while attempts < self._retries:
            if attempts:
                delay = min(
                    self._backoff_base * (2 ** (attempts - 1)),
                    self._backoff_max,
                )
                if delay:
                    self._sleep(delay)
            attempts += 1
            self._facade_faults.before_restart(
                shard, incident_slide, self._state_dirs[shard]
            )
            status, restored = self._backend.start(
                shard, self._restart_overrides(shard, incident_slide)
            )
            if status != "ok":
                last_reason = f"restart failed: {restored}"
                continue
            health.restarts += 1
            retry_payload = payload
            if repayload is not None:
                retry_payload = repayload(shard, restored)
            if cmd is None or retry_payload is _SKIP:
                # Recovery already covers the in-flight work (the WAL had
                # the slide, or there was nothing to redo).
                self._mark_up(shard)
                self._note_heal(heal_started)
                return restored
            if not self._backend.send(shard, cmd, retry_payload):
                last_reason = "restarted worker is unreachable"
                continue
            status, result = self._backend.recv(shard, self._call_timeout)
            if status == "ok":
                self._mark_up(shard)
                self._note_heal(heal_started)
                return result
            if status == "error":
                # The recovered worker is alive and rejected the retry:
                # an application error, not a crash.
                self._mark_up(shard)
                raise ShardingError(
                    f"shard {shard} failed on {cmd!r} after restart: {result}"
                )
            if status == "timeout":
                self._call_timeouts += 1
                self._backend.kill(shard)
            last_reason = f"{status} on retried {cmd!r}: {result}"
        self._escalations += 1
        health.last_error = last_reason
        raise ShardingError(
            f"shard {shard} did not heal after {self._retries} restart "
            f"attempt(s) (last: {last_reason})"
        )

    def _restart_overrides(self, shard: int, incident_slide: int) -> Optional[dict]:
        """Host-arg overrides for a restart: re-arm faults past the incident."""
        if self._fault_plan is None:
            return None
        worker_faults = self._fault_plan.for_shard(shard)
        if not worker_faults:
            return None
        return {
            "fault_state": {
                "faults": [f.to_state() for f in worker_faults],
                "disarm_through": incident_slide,
            }
        }

    # -- degraded-window accounting ----------------------------------------

    def _note_heal(self, started: float) -> None:
        """Account one successful in-place heal's duration."""
        elapsed = max(self._clock() - started, 0.0)
        self._heal_seconds_total += elapsed
        self._last_restart_seconds = elapsed
        self.heal_hist.observe(elapsed)

    def _mark_down(self, shard: int, reason: str) -> None:
        health = self._health[shard]
        health.last_error = reason
        if health.state == "down":
            return
        health.state = "down"
        health.down_since = self._clock()
        if self._degraded_since is None:
            self._degraded_since = health.down_since

    def _mark_up(self, shard: int) -> None:
        health = self._health[shard]
        if health.state == "up":
            return
        health.state = "up"
        health.down_since = None
        if self._degraded_since is not None and not self.degraded:
            window = self._clock() - self._degraded_since
            self._degraded_windows += 1
            self._degraded_seconds += window
            self._last_heal_seconds = window
            self._degraded_since = None

    # -- introspection -----------------------------------------------------

    @property
    def degraded(self) -> bool:
        """Whether any shard is currently down."""
        return any(h.state == "down" for h in self._health)

    @property
    def degraded_shards(self) -> List[int]:
        """Ids of the shards currently down."""
        return [i for i, h in enumerate(self._health) if h.state == "down"]

    @property
    def restarts(self) -> int:
        """Total successful worker restarts."""
        return sum(h.restarts for h in self._health)

    def shard_states(self) -> List[dict]:
        """Per-shard health documents (for ``/metrics`` and debugging)."""
        now = self._clock()
        out = []
        for shard, health in enumerate(self._health):
            doc = {
                "shard": shard,
                "state": health.state,
                "restarts": health.restarts,
            }
            if health.last_error is not None:
                doc["last_error"] = health.last_error.splitlines()[0][:200]
            if health.down_since is not None:
                doc["down_seconds"] = round(now - health.down_since, 6)
            out.append(doc)
        return out

    def stats(self) -> dict:
        """Supervision counters (for ``/metrics`` and chaos reports)."""
        degraded_seconds = self._degraded_seconds
        if self._degraded_since is not None:
            degraded_seconds += self._clock() - self._degraded_since
        return {
            "degraded": self.degraded,
            "degraded_shards": self.degraded_shards,
            "restarts": self.restarts,
            "call_timeouts": self._call_timeouts,
            "escalations": self._escalations,
            "degraded_windows": self._degraded_windows,
            "degraded_seconds": round(degraded_seconds, 6),
            "last_heal_seconds": (
                None
                if self._last_heal_seconds is None
                else round(self._last_heal_seconds, 6)
            ),
            "heal_seconds_total": round(self._heal_seconds_total, 6),
            "last_restart_seconds": (
                None
                if self._last_restart_seconds is None
                else round(self._last_restart_seconds, 6)
            ),
            "heal_seconds": self.heal_hist.summary(),
            "retries": self._retries,
            "call_timeout": self._call_timeout,
        }
