"""Merge-on-read top-k: one global answer from per-shard candidate lists.

Each shard engine answers the SIM query over the influencers it owns.
Because influence evaluation of a seed set only touches the seeds' own
influence sets — all of which live in the owning shard — a shard's
reported ``(seeds, value)`` is an *exact* global evaluation of that seed
set.  What the shards cannot see is cross-shard redundancy: seeds owned by
different shards may influence the same users, so per-shard values must
not simply be added.

:func:`merge_shard_answers` therefore merges lazily at read time:

* **Modular functions** (cardinality, weighted cardinality) ship, with
  each candidate seed, its exact coverage set (the members of its
  influence set in the answering suffix).  The merge runs a CELF-style
  lazy greedy over the union of all shards' candidate lists, recomputing a
  candidate's marginal gain only while it tops the priority queue, and
  reports ``f`` of the union actually covered — cross-shard overlap is
  deducted exactly, never estimated.  The result is at least as good as
  the best single shard's answer (the merge falls back to it when greedy
  selection ends lower), so with an ``α``-approximate per-shard oracle the
  merged value is ``≥ α·OPT_s`` for every shard ``s``; since a submodular
  ``f`` with ``f(∅)=0`` is subadditive over the optimum's per-shard split,
  ``OPT ≤ Σ_s OPT_s``, giving the worst-case bound ``merged ≥ (α/S)·OPT``
  (the two-round partition scheme of Mirzasoleiman et al.'s GreeDi; in
  practice hash partitioning keeps the merge within a few percent of the
  unsharded answer — the ratio property tests pin the bound).

* **Non-modular oracles** (e.g. conformity-aware influence) cannot be
  re-evaluated from bare coverage sets, so the merge is the documented
  *bounded approximation*: the best single shard's answer, exact in value,
  with the same ``(α/S)``-of-OPT worst-case guarantee.

With a :class:`~repro.sharding.partition.ConstantPartitioner` all mass
lands on one shard and both paths reduce to that shard's answer verbatim —
which is how ``ShardedEngine ≡ single engine`` is pinned end to end.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.base import SIMResult
from repro.influence.functions import InfluenceFunction

__all__ = ["SeedCandidate", "ShardAnswer", "merge_shard_answers"]


@dataclass(frozen=True, slots=True)
class SeedCandidate:
    """One shard-local seed candidate offered to the global merge.

    Attributes:
        user: The candidate seed user (owned by the reporting shard).
        coverage: The users the candidate influences in the shard's
            answering suffix — exact, because the shard owns every
            influence pair of its users.  ``None`` when the shard engine
            cannot ship coverage (non-modular oracles, algorithms without
            the candidate hook); the merge then falls back to best-shard.
    """

    user: int
    coverage: Optional[FrozenSet[int]]


@dataclass(frozen=True, slots=True)
class ShardAnswer:
    """One shard engine's local answer plus its mergeable candidates.

    Attributes:
        shard: Reporting shard id.
        time: The shard's stream clock at answer time.
        seeds: The shard oracle's seed set (at most ``k`` users).
        value: The shard oracle's value — an exact global evaluation of
            ``seeds`` (see module docstring).
        candidates: Candidate list for the greedy merge, or ``None`` when
            coverage cannot be shipped.
    """

    shard: int
    time: int
    seeds: FrozenSet[int]
    value: float
    candidates: Optional[Tuple[SeedCandidate, ...]] = None


def _best_shard(answers: Sequence[ShardAnswer]) -> ShardAnswer:
    """The answer with the highest value (ties to the lowest shard id)."""
    return max(answers, key=lambda a: (a.value, -a.shard))


def _greedy_merge(
    pool: List[SeedCandidate], k: int, func: InfluenceFunction
) -> Tuple[Set[int], Set[int]]:
    """CELF lazy greedy over the candidate pool (modular functions only).

    Returns ``(selected users, covered users)``.  Marginal gains are exact
    (``f`` restricted to uncovered members); a candidate is re-evaluated
    only while it tops the heap, and selection stops at ``k`` seeds or
    when no candidate adds value.
    """
    covered: Set[int] = set()
    selected: Set[int] = set()
    # Heap entries: (-gain, user id, candidate, evaluation round).  Ties in
    # gain break to the lowest user id — a property of the *candidates*,
    # not of the pool's shard-interleaved insertion order, so the merged
    # answer is identical no matter how the pool is partitioned across
    # shards.  An entry evaluated in the current round is exact; stale
    # entries are refreshed lazily when popped (gains only shrink as
    # coverage grows).
    heap = []
    for candidate in pool:
        gain = func.value_of_covered(candidate.coverage)
        heap.append((-gain, candidate.user, candidate, 0))
    heapq.heapify(heap)
    round_no = 0
    while heap and len(selected) < k:
        negative_gain, user, candidate, evaluated = heapq.heappop(heap)
        if candidate.user in selected:
            continue
        if evaluated != round_no:
            fresh = func.value_of_covered(candidate.coverage - covered)
            heapq.heappush(heap, (-fresh, user, candidate, round_no))
            continue
        if -negative_gain <= 0.0:
            break
        selected.add(candidate.user)
        covered |= candidate.coverage
        round_no += 1
    return selected, covered


def merge_shard_answers(
    answers: Sequence[ShardAnswer],
    k: int,
    func: Optional[InfluenceFunction] = None,
    time: Optional[int] = None,
) -> SIMResult:
    """Combine per-shard answers into one global top-k answer.

    Args:
        answers: One :class:`ShardAnswer` per shard (empty shards may be
            omitted or report empty seeds).
        k: Global seed-set cardinality constraint.
        func: The query's influence function.  The exact greedy merge runs
            only when it is modular *and* every non-empty answer shipped
            candidate coverage; otherwise the best single shard answers.
        time: Stream clock for the merged answer; defaults to the maximum
            shard clock.

    Returns:
        The merged :class:`~repro.core.base.SIMResult`.  Its value is
        never an overestimate: it is either ``f`` evaluated on users
        actually covered (greedy path) or a shard's own exact evaluation
        (best-shard path).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    answers = [a for a in answers if a is not None]
    when = time if time is not None else max((a.time for a in answers), default=0)
    live = [a for a in answers if a.seeds]
    if not live:
        return SIMResult(time=when, seeds=frozenset(), value=0.0)
    if len(live) == 1:
        only = live[0]
        return SIMResult(time=when, seeds=only.seeds, value=only.value)

    mergeable = (
        func is not None
        and func.modular
        and all(
            a.candidates is not None
            and all(c.coverage is not None for c in a.candidates)
            for a in live
        )
    )
    best = _best_shard(live)
    if not mergeable:
        return SIMResult(time=when, seeds=best.seeds, value=best.value)

    pool: List[SeedCandidate] = []
    seen: Set[int] = set()
    for answer in live:
        for candidate in answer.candidates:
            if candidate.user not in seen:
                seen.add(candidate.user)
                pool.append(candidate)
    if len(pool) <= k:
        # Nothing to select: every candidate fits.  Keeping them all (even
        # zero-marginal ones) preserves exact equality with the degenerate
        # single-shard case, where the pool is precisely one oracle's
        # answer set.
        covered: Set[int] = set()
        for candidate in pool:
            covered |= candidate.coverage
        return SIMResult(
            time=when,
            seeds=frozenset(c.user for c in pool),
            value=func.value_of_covered(covered),
        )
    selected, covered = _greedy_merge(pool, k, func)
    merged_value = func.value_of_covered(covered)
    if merged_value < best.value:
        # Greedy over the union can end below the best shard's own answer;
        # taking the better of the two keeps merged >= max_s value_s.
        return SIMResult(time=when, seeds=best.seeds, value=best.value)
    return SIMResult(time=when, seeds=frozenset(selected), value=merged_value)


def answers_by_query(
    per_shard: Sequence[Dict[str, ShardAnswer]],
) -> Dict[str, List[ShardAnswer]]:
    """Pivot per-shard ``{query: answer}`` maps into per-query answer lists.

    Missing entries are tolerated (a shard that has not yet opened a
    query's board simply contributes nothing for it).
    """
    merged: Dict[str, List[ShardAnswer]] = {}
    for shard_map in per_shard:
        for name, answer in shard_map.items():
            merged.setdefault(name, []).append(answer)
    return merged
