"""Who owns which influencer: pluggable, serializable shard partitioners.

The sharded ingest plane assigns every *influencer* user to exactly one of
``S`` shard engines; a shard indexes only the influence pairs whose
influencer it owns, and its oracles only ever consider owned users as seed
candidates.  Because influence evaluation of a seed set touches only the
seeds' own influence sets, a shard's answer value for its own seeds is the
*exact* global value — the partitioner therefore decides load balance and
merge quality, never soundness.

Partitioners are deliberately tiny and deterministic:

* :class:`HashPartitioner` — the default ``hash(user) % S``, using a fixed
  multiplicative hash (Knuth) so the assignment is identical across
  processes and Python runs (``PYTHONHASHSEED`` never leaks in);
* :class:`ConstantPartitioner` — everything to one shard.  Degenerate on
  purpose: with it, a sharded engine is *bit-identical* to a single
  engine, which is what the shard-merge equivalence tests pin;
* :class:`HeatPartitioner` — load-aware greedy bin-packing over a measured
  influencer *heat* table (e.g. routed influence-pair counts from a warmup
  window, see :func:`influencer_heat`), spreading the hottest influencers
  across shards so routed ingest stays balanced under skew.  Users absent
  from the heat table fall back to the Knuth hash.

Like influence functions, partitioners serialize through an explicit
``kind``-tagged state schema (:func:`partitioner_from_state`), so per-shard
snapshots are self-describing and a resumed shard refuses silently changed
ownership.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Mapping

__all__ = [
    "Partitioner",
    "HashPartitioner",
    "ConstantPartitioner",
    "HeatPartitioner",
    "ShardAssignment",
    "influencer_heat",
    "register_partitioner_state",
    "partitioner_from_state",
    "assignment_from_state",
]

#: Knuth's multiplicative hash constant (2^32 / φ); spreads dense integer
#: user-id ranges evenly across small shard counts.
_KNUTH = 2654435761
_MASK = 0xFFFFFFFF


class Partitioner(ABC):
    """Deterministic assignment of influencer users to shard ids."""

    def __init__(self, shards: int):
        """
        Args:
            shards: Number of shards (>= 1).
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self._shards = shards

    @property
    def shards(self) -> int:
        """Number of shards this partitioner spreads users over."""
        return self._shards

    @abstractmethod
    def shard_of(self, user: int) -> int:
        """The shard id in ``[0, shards)`` that owns ``user``."""

    @abstractmethod
    def to_state(self) -> dict:
        """Explicit JSON-safe state with a ``"kind"`` discriminator."""

    def __eq__(self, other) -> bool:
        """Partitioners are equal iff their serialized states are."""
        if not isinstance(other, Partitioner):
            return NotImplemented
        return self.to_state() == other.to_state()

    def __hash__(self) -> int:
        """Hash of the serialized state (stable across processes)."""
        return hash(tuple(sorted(self.to_state().items())))


class HashPartitioner(Partitioner):
    """``shard_of(user) = knuth_hash(user) % shards`` — the default.

    A fixed multiplicative hash (not Python's salted ``hash``) keeps the
    assignment identical across worker processes and restarts, which the
    per-shard WAL/snapshot recovery depends on.
    """

    def shard_of(self, user: int) -> int:
        """The shard owning ``user`` (deterministic across processes)."""
        return ((user * _KNUTH) & _MASK) % self._shards

    def to_state(self) -> dict:
        """State schema: ``{"kind": "hash", "shards": S}``."""
        return {"kind": "hash", "shards": self._shards}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HashPartitioner(shards={self._shards})"


class ConstantPartitioner(Partitioner):
    """Every user to one fixed shard — the equivalence-test degenerate.

    With all influencers owned by ``target``, that shard's engine performs
    exactly the computation of an unsharded engine (and the other shards
    stay empty), so ``ShardedEngine(S)`` answers must equal the single
    engine's bit for bit.  Useful only for testing and debugging.
    """

    def __init__(self, shards: int, target: int = 0):
        """
        Args:
            shards: Number of shards (>= 1).
            target: The shard id that owns every user.
        """
        super().__init__(shards)
        if not 0 <= target < shards:
            raise ValueError(
                f"target must be in [0, {shards}), got {target}"
            )
        self._target = target

    def shard_of(self, user: int) -> int:
        """Always the configured target shard."""
        return self._target

    def to_state(self) -> dict:
        """State schema: ``{"kind": "constant", "shards": S, "target": t}``."""
        return {"kind": "constant", "shards": self._shards, "target": self._target}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConstantPartitioner(shards={self._shards}, target={self._target})"
        )


class HeatPartitioner(Partitioner):
    """Greedy bin-packing of measured influencer heat across shards.

    Routed ingest sends each influence record only to the shard owning its
    influencer, so a skewed stream (a few celebrity influencers carrying
    most pairs) turns hash partitioning into one hot shard.  This
    partitioner takes a *heat* table — influencer user id to observed load
    (e.g. influence-pair counts from :func:`influencer_heat` over a warmup
    window) — and assigns the listed users greedily, hottest first, each to
    the currently least-loaded shard.  Ties break deterministically on
    (load, shard id) and (heat, user id), so the assignment is identical
    across processes.  Users not in the table fall back to the Knuth hash,
    keeping cold-tail balance without bloating the serialized table.
    """

    def __init__(self, shards: int, heat: Mapping[int, float]):
        """
        Args:
            shards: Number of shards (>= 1).
            heat: Influencer user id -> measured load (any non-negative
                number; relative magnitudes are all that matters).
        """
        super().__init__(shards)
        self._heat: Dict[int, float] = {
            int(user): float(load) for user, load in heat.items()
        }
        self._owner: Dict[int, int] = {}
        loads = [0.0] * shards
        # Hottest first; user id breaks heat ties so iteration order of
        # the mapping never leaks into the assignment.
        for user in sorted(self._heat, key=lambda u: (-self._heat[u], u)):
            shard = min(range(shards), key=lambda s: (loads[s], s))
            self._owner[user] = shard
            loads[shard] += self._heat[user]

    @property
    def heat(self) -> Dict[int, float]:
        """The measured heat table (copy; user id -> load)."""
        return dict(self._heat)

    def shard_of(self, user: int) -> int:
        """The bin-packed shard for hot users, Knuth hash for the rest."""
        owner = self._owner.get(user)
        if owner is not None:
            return owner
        return ((user * _KNUTH) & _MASK) % self._shards

    def to_state(self) -> dict:
        """State schema: ``{"kind": "heat", "shards": S, "heat": {...}}``.

        Heat keys are serialized as strings (JSON object keys); the
        registered builder converts them back to ints.
        """
        return {
            "kind": "heat",
            "shards": self._shards,
            "heat": {str(user): load for user, load in self._heat.items()},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HeatPartitioner(shards={self._shards}, "
            f"heat={len(self._heat)} users)"
        )


def influencer_heat(actions) -> Dict[int, float]:
    """Measure per-influencer load from a warmup stream of actions.

    Feeds the actions through a throwaway diffusion forest and counts, for
    every influencer, the influence pairs it appears in — exactly the
    per-record routing cost of the routed ingest plane.  The result feeds
    :class:`HeatPartitioner` directly.
    """
    from repro.core.diffusion import DiffusionForest

    forest = DiffusionForest()
    heat: Dict[int, float] = {}
    for action in actions:
        record = forest.add(action)
        for influencer in record.influencers:
            heat[influencer] = heat.get(influencer, 0.0) + 1.0
    return heat


class ShardAssignment:
    """One shard's view of a partitioner: "do I own this influencer?".

    This is the object a shard engine carries (IC/SIC's ``shard=``
    constructor argument): arriving records keep only the influencers the
    assignment owns before they reach the shard's index and oracles.
    """

    __slots__ = ("partitioner", "shard")

    def __init__(self, partitioner: Partitioner, shard: int):
        """
        Args:
            partitioner: The global user → shard assignment.
            shard: This engine's shard id in ``[0, partitioner.shards)``.
        """
        if not 0 <= shard < partitioner.shards:
            raise ValueError(
                f"shard must be in [0, {partitioner.shards}), got {shard}"
            )
        self.partitioner = partitioner
        self.shard = shard

    def owns(self, user: int) -> bool:
        """True when this shard owns ``user`` as an influencer."""
        return self.partitioner.shard_of(user) == self.shard

    def to_state(self) -> dict:
        """Explicit JSON-safe state (partitioner state + shard id)."""
        return {"partitioner": self.partitioner.to_state(), "shard": self.shard}

    def __eq__(self, other) -> bool:
        """Assignments are equal iff their serialized states are."""
        if not isinstance(other, ShardAssignment):
            return NotImplemented
        return self.to_state() == other.to_state()

    def __hash__(self) -> int:
        """Hash consistent with :meth:`__eq__`."""
        return hash((self.partitioner, self.shard))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardAssignment({self.partitioner!r}, shard={self.shard})"


_PARTITIONER_STATES: Dict[str, Callable[[dict], Partitioner]] = {}


def register_partitioner_state(
    kind: str, builder: Callable[[dict], Partitioner]
) -> None:
    """Register a constructor for :func:`partitioner_from_state` under ``kind``."""
    if kind in _PARTITIONER_STATES:
        raise ValueError(f"partitioner state kind {kind!r} already registered")
    _PARTITIONER_STATES[kind] = builder


def partitioner_from_state(state: Mapping) -> Partitioner:
    """Rebuild a partitioner from its :meth:`~Partitioner.to_state` output.

    Raises:
        ValueError: when the state's ``"kind"`` is unknown.
    """
    kind = state.get("kind")
    builder = _PARTITIONER_STATES.get(kind)
    if builder is None:
        raise ValueError(
            f"unknown partitioner state kind {kind!r}; "
            f"known: {sorted(_PARTITIONER_STATES)}"
        )
    return builder(dict(state))


def assignment_from_state(state: Mapping) -> ShardAssignment:
    """Rebuild a :class:`ShardAssignment` from :meth:`~ShardAssignment.to_state`."""
    return ShardAssignment(
        partitioner_from_state(state["partitioner"]), state["shard"]
    )


register_partitioner_state(
    "hash", lambda state: HashPartitioner(state["shards"])
)
register_partitioner_state(
    "constant",
    lambda state: ConstantPartitioner(state["shards"], state["target"]),
)
register_partitioner_state(
    "heat",
    lambda state: HeatPartitioner(
        state["shards"],
        {int(user): load for user, load in state["heat"].items()},
    ),
)
