"""Sharded multi-core ingest plane: influencer-partitioned engines.

PRs 1–4 made the single-writer pipeline fast (shared versioned index,
batched slides, WAL/snapshots, asyncio serving), but one writer loop over
one engine leaves every other core idle.  This package splits the *write
plane* into ``S`` shard engines — each a full, independently durable
IC/SIC instance that owns the influencer users a pluggable
:class:`~repro.sharding.partition.Partitioner` assigns to it — and keeps
the *read plane* global through a merge-on-read top-k
(:func:`~repro.sharding.merge.merge_shard_answers`).

The division of labour:

* :mod:`repro.sharding.partition` — who owns which influencer
  (``hash(user) % S`` by default, pluggable and serializable);
* :mod:`repro.sharding.merge` — combining per-shard candidate top-k lists
  into one global answer (exact lazy greedy over coverage sets for
  modular influence functions, a bounded best-shard approximation
  otherwise);
* :mod:`repro.sharding.engine` — the :class:`~repro.sharding.engine.ShardedEngine`
  facade exposing the familiar engine API (``process``/``query``/``now``/
  ``close``) over per-shard writer loops (in-process, thread, or
  ``multiprocessing`` workers) with per-shard ``shard-<i>/`` WAL+snapshot
  directories for parallel, independent crash recovery;
* :mod:`repro.sharding.supervisor` — the
  :class:`~repro.sharding.supervisor.ShardSupervisor` running every
  fan-out under per-call timeouts, in-place restart with exponential
  backoff (detect → back off → heal → degrade → escalate), and the
  degraded-read accounting surfaced through ``/metrics`` and ``/healthz``.
"""

from repro.sharding.engine import ShardedBoard, ShardedEngine, ShardingError
from repro.sharding.supervisor import ShardSupervisor
from repro.sharding.merge import SeedCandidate, ShardAnswer, merge_shard_answers
from repro.sharding.partition import (
    ConstantPartitioner,
    HashPartitioner,
    Partitioner,
    ShardAssignment,
    assignment_from_state,
    partitioner_from_state,
)

__all__ = [
    "Partitioner",
    "HashPartitioner",
    "ConstantPartitioner",
    "ShardAssignment",
    "partitioner_from_state",
    "assignment_from_state",
    "SeedCandidate",
    "ShardAnswer",
    "merge_shard_answers",
    "ShardedEngine",
    "ShardedBoard",
    "ShardingError",
    "ShardSupervisor",
]
