"""Sharded multi-core ingest plane: influencer-partitioned engines.

PRs 1–4 made the single-writer pipeline fast (shared versioned index,
batched slides, WAL/snapshots, asyncio serving), but one writer loop over
one engine leaves every other core idle.  This package splits the *write
plane* into ``S`` shard engines — each a full, independently durable
IC/SIC instance that owns the influencer users a pluggable
:class:`~repro.sharding.partition.Partitioner` assigns to it — and keeps
the *read plane* global through a merge-on-read top-k
(:func:`~repro.sharding.merge.merge_shard_answers`).

The division of labour:

* :mod:`repro.sharding.partition` — who owns which influencer
  (``hash(user) % S`` by default, pluggable and serializable);
* :mod:`repro.sharding.merge` — combining per-shard candidate top-k lists
  into one global answer (exact lazy greedy over coverage sets for
  modular influence functions, a bounded best-shard approximation
  otherwise);
* :mod:`repro.sharding.engine` — the :class:`~repro.sharding.engine.ShardedEngine`
  facade exposing the familiar engine API (``process``/``query``/``now``/
  ``close``) over per-shard writer loops (in-process, thread, or
  ``multiprocessing`` workers) with per-shard ``shard-<i>/`` WAL+snapshot
  directories for parallel, independent crash recovery.  In **routed**
  mode (the default for fresh state) the facade resolves each slide's
  diffusion chains once and routes each shard only its owned influence
  records instead of broadcasting the raw stream;
  :func:`~repro.sharding.engine.migrate_to_routed` converts legacy
  broadcast state roots in place;
* :mod:`repro.sharding.supervisor` — the
  :class:`~repro.sharding.supervisor.ShardSupervisor` running every
  fan-out under per-call timeouts, in-place restart with exponential
  backoff (detect → back off → heal → degrade → escalate), and the
  degraded-read accounting surfaced through ``/metrics`` and ``/healthz``.
"""

from repro.sharding.engine import (
    ShardedBoard,
    ShardedEngine,
    ShardingError,
    migrate_to_routed,
)
from repro.sharding.supervisor import ShardSupervisor
from repro.sharding.merge import SeedCandidate, ShardAnswer, merge_shard_answers
from repro.sharding.partition import (
    ConstantPartitioner,
    HashPartitioner,
    HeatPartitioner,
    Partitioner,
    ShardAssignment,
    assignment_from_state,
    influencer_heat,
    partitioner_from_state,
)

__all__ = [
    "Partitioner",
    "HashPartitioner",
    "HeatPartitioner",
    "ConstantPartitioner",
    "influencer_heat",
    "ShardAssignment",
    "partitioner_from_state",
    "assignment_from_state",
    "SeedCandidate",
    "ShardAnswer",
    "merge_shard_answers",
    "ShardedEngine",
    "ShardedBoard",
    "ShardingError",
    "ShardSupervisor",
    "migrate_to_routed",
]
