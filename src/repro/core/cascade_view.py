"""ASCII rendering of diffusion cascades — a debugging/teaching aid.

Given the raw actions, :func:`render_cascade` draws the response tree of
one root action the way the paper's Figure 1(d) sketches diffusion:

    a1 u1*
    ├── a2 u2
    └── a4 u3
        └── a5 u4

:func:`cascade_roots` groups a stream into its cascades so whole streams
can be browsed.  Used by tests to cross-check the diffusion forest and by
the examples for human-readable output.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.core.actions import Action

__all__ = ["cascade_roots", "render_cascade"]


def cascade_roots(actions: Iterable[Action]) -> Dict[int, List[int]]:
    """Map each root action's time to the times of its whole cascade.

    Responses whose parent is missing from ``actions`` are treated as roots
    (exactly how the diffusion forest treats truncated chains).
    """
    root_of: Dict[int, int] = {}
    members: Dict[int, List[int]] = {}
    for action in actions:
        if action.is_root or action.parent not in root_of:
            root_of[action.time] = action.time
            members[action.time] = [action.time]
        else:
            root = root_of[action.parent]
            root_of[action.time] = root
            members[root].append(action.time)
    return members


def render_cascade(actions: Iterable[Action], root_time: int) -> str:
    """Draw the response tree rooted at ``root_time`` as ASCII art.

    Raises:
        KeyError: when ``root_time`` is not in ``actions``.
    """
    action_list = list(actions)
    by_time = {a.time: a for a in action_list}
    if root_time not in by_time:
        raise KeyError(f"no action at time {root_time}")
    children: Dict[int, List[int]] = {}
    for action in action_list:
        if not action.is_root and action.parent in by_time:
            children.setdefault(action.parent, []).append(action.time)

    lines: List[str] = []

    def draw(time: int, prefix: str, connector: str) -> None:
        action = by_time[time]
        marker = "*" if action.is_root else ""
        lines.append(f"{prefix}{connector}a{time} u{action.user}{marker}")
        child_times = sorted(children.get(time, ()))
        for i, child in enumerate(child_times):
            last = i == len(child_times) - 1
            if connector == "":
                child_prefix = ""
            else:
                child_prefix = prefix + ("    " if connector == "└── " else "│   ")
            draw(child, child_prefix, "└── " if last else "├── ")

    draw(root_time, "", "")
    return "\n".join(lines)
