"""IC — the Influential Checkpoints framework (Section 4, Algorithm 1).

IC sidesteps action expiry by maintaining one checkpoint per window slide:
checkpoint ``Λ_t[i]`` runs an append-only oracle over the suffix starting at
slide ``i``.  When the window moves, the oldest checkpoint (whose suffix has
grown beyond the window) is discarded, a fresh checkpoint is created for the
newest slide, and every live checkpoint absorbs the arriving actions.  The
query answer is the solution of the oldest live checkpoint, which covers
exactly the current window, so IC inherits the oracle's ε ratio (Theorem 2).

With slide batches of ``L`` actions, IC maintains ``⌈N/L⌉`` checkpoints
(Section 5.3); with ``L = 1`` that is the full ``N`` of Algorithm 1.
``checkpoint_interval=c`` additionally opens a checkpoint only every
``c``-th slide, trading the answering suffix's tightness (it may cover up
to ``N + c·L − 1`` actions, like a misaligned slide) for ``c×`` fewer
checkpoints — the same lever Section 5.3 pulls with larger ``L``, without
delaying arrivals.

**Shared-index data plane.**  The paper's per-action cost is dominated by
updating ``d`` influence sets in *every* live checkpoint — O(d · N/L) set
probes per action when each checkpoint owns an
:class:`~repro.core.influence_index.AppendOnlyInfluenceIndex`.  By default
IC instead keeps one
:class:`~repro.core.influence_index.VersionedInfluenceIndex` shared by all
checkpoints: each action is indexed once (O(d) latest-credit dict writes)
and the previous credit time of each pair locates — via ``bisect`` over the
sorted checkpoint starts — exactly the checkpoints whose suffix gained a
new member.  A slide's updates are grouped into per-checkpoint
``(user, new_members)`` deltas and handed to each oracle in one batch
(:func:`~repro.core.checkpoint.feed_shared`), so per-slide oracle
bookkeeping is amortised; ``batch_feeds=False`` delivers the same deltas
one ``process_delta`` call at a time (the equivalence reference for the
batch path).  Pass ``shared_index=False`` for the literal per-checkpoint
reference implementation (used by the equivalence tests, which prove all
modes produce identical feeds, values, and seeds).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.base import (
    STATE_FORMAT_VERSION,
    SIMAlgorithm,
    SIMResult,
    check_state_header,
)
from repro.core.checkpoint import (
    Checkpoint,
    CheckpointRoster,
    OracleSpec,
    feed_shared,
    make_columnar_kernel,
    project_records,
)
from repro.core.diffusion import ActionRecord
from repro.core.influence_index import VersionedInfluenceIndex
from repro.influence.functions import (
    CardinalityInfluence,
    InfluenceFunction,
    function_from_state,
)

__all__ = ["InfluentialCheckpoints"]


class InfluentialCheckpoints(SIMAlgorithm):
    """Continuous SIM processing with one checkpoint per window slide."""

    def __init__(
        self,
        window_size: int,
        k: int,
        beta: float = 0.1,
        oracle: str = "sieve",
        func: Optional[InfluenceFunction] = None,
        retention: Optional[int] = None,
        shared_index: bool = True,
        batch_feeds: bool = True,
        checkpoint_interval: int = 1,
        shard=None,
        columnar: Optional[bool] = None,
    ):
        """
        Args:
            window_size: The paper's ``N`` (must be >= 1).
            k: Seed-set cardinality constraint (must be >= 1).
            beta: Guess-granularity parameter of the threshold oracles.
            oracle: Registered oracle name (default the paper's case study,
                SieveStreaming).
            func: Influence function; defaults to cardinality.
            retention: Diffusion-forest retention horizon.
            shared_index: Share one versioned influence index across all
                checkpoints (the fast data plane).  ``False`` restores the
                per-checkpoint reference indexes.
            batch_feeds: Deliver each checkpoint's slide as one merged
                oracle batch (shared-index mode only).  ``False`` feeds the
                same per-user deltas one call at a time — result-identical,
                kept as the batched path's equivalence reference.
            checkpoint_interval: Open a new checkpoint only every this many
                slides (must be >= 1).  Values above 1 keep ``c×`` fewer
                checkpoints at the cost of the answer covering up to
                ``c·L − 1`` extra actions.
            shard: Optional
                :class:`~repro.sharding.partition.ShardAssignment`.  The
                engine still consumes the full stream (ancestor chains stay
                exact) but indexes and offers to its oracles only the
                influence pairs whose influencer the assignment owns — one
                shard of the partitioned ingest plane
                (:mod:`repro.sharding`).
            columnar: Oracle-plane selection.  ``None`` (default) enables
                the vectorized columnar kernel
                (:mod:`repro.core.oracles.columnar`) whenever the
                configuration supports it — shared index, batched feeds,
                modular influence function, sieve/threshold oracle —
                falling back to per-checkpoint object oracles otherwise.
                ``True`` requires it (raising on unsupported configs or a
                missing numpy); ``False`` forces the object-oracle plane,
                kept as the columnar kernel's equivalence reference exactly
                like ``shared_index=False`` is for the shared data plane.
        """
        # window_size and k are validated (with the offending value in the
        # message) by SIMAlgorithm/SlidingWindow in super().__init__;
        # tests/core/test_ic.py pins that contract.
        if checkpoint_interval < 1:
            raise ValueError(
                "checkpoint_interval must be a positive number of slides, "
                f"got {checkpoint_interval}"
            )
        super().__init__(window_size=window_size, k=k, retention=retention)
        func = func if func is not None else CardinalityInfluence()
        params = {"beta": beta} if oracle in ("sieve", "threshold") else {}
        self._spec = OracleSpec(name=oracle, k=k, func=func, params=params)
        self._roster = CheckpointRoster()
        self._batch_feeds = batch_feeds
        self._interval = checkpoint_interval
        self._slide_index = 0
        self._shard = shard
        self._shared: Optional[VersionedInfluenceIndex] = (
            VersionedInfluenceIndex() if shared_index else None
        )
        self._columnar_requested = columnar
        self._kernel = make_columnar_kernel(
            self._spec, self._shared, columnar, batch_feeds
        )

    @property
    def checkpoint_count(self) -> int:
        """Number of live checkpoints (``⌈N/(L·c)⌉`` in steady state)."""
        return len(self._roster)

    @property
    def checkpoints(self) -> Sequence[Checkpoint]:
        """Live checkpoints, oldest first (read-only view)."""
        return tuple(self._roster.checkpoints)

    @property
    def checkpoint_interval(self) -> int:
        """Slides between consecutive checkpoint openings."""
        return self._interval

    @property
    def shared_index(self) -> Optional[VersionedInfluenceIndex]:
        """The shared versioned index (``None`` in reference mode)."""
        return self._shared

    @property
    def shard(self):
        """This engine's shard assignment (``None`` when unsharded)."""
        return self._shard

    @property
    def columnar(self) -> bool:
        """Whether the columnar oracle kernel is active."""
        return self._kernel is not None

    @property
    def columnar_kernel(self):
        """The active ``ColumnarThresholdKernel`` (``None`` = object plane)."""
        return self._kernel

    @property
    def influence_function(self) -> InfluenceFunction:
        """The influence function ``f`` the checkpoint oracles maximise."""
        return self._spec.func

    def _on_slide(
        self,
        arrived: Sequence[ActionRecord],
        expired: Sequence[ActionRecord],
    ) -> None:
        records = (
            arrived
            if self._shard is None
            else project_records(arrived, self._shard.owns)
        )
        self._absorb_slide(
            records, start=arrived[0].time, absorbed=len(arrived)
        )

    def _on_slide_resolved(self, resolved) -> None:
        # The routed apply path: records were resolved (and routed) at the
        # facade; the slide's global boundaries ride along so checkpoints
        # open at the same starts and the absorption ledger counts the
        # same global L a broadcast engine would.  A ``routed`` slide
        # promises facade-side narrowing (the sharded manifest pins the
        # partitioner identity), so re-projection — idempotent but paid
        # per influence pair — only guards direct unrouted callers.
        records = (
            list(resolved.records)
            if self._shard is None or resolved.routed
            else project_records(resolved.records, self._shard.owns)
        )
        self._absorb_slide(
            records, start=resolved.start, absorbed=resolved.count
        )

    def _absorb_slide(self, records, start: int, absorbed: int) -> None:
        """Absorb one slide's (possibly projected) records into the roster.

        Algorithm 1 lines 2-5: retire the checkpoint that no longer covers
        a window suffix, then open one for the arriving slide.  ``start``
        and ``absorbed`` are the slide's *global* first timestamp and
        action count — a sharded engine may own none of the slide's
        records yet must still open the checkpoint and advance the
        ledger exactly like the single engine.
        """
        roster = self._roster
        open_checkpoint = self._slide_index % self._interval == 0
        self._slide_index += 1
        shared = self._shared
        kernel = self._kernel
        if kernel is not None:
            if open_checkpoint:
                roster.append(kernel.new_checkpoint(start, roster))
            kernel.absorb_slide(roster, records, absorbed=absorbed)
        elif shared is not None:
            if open_checkpoint:
                roster.append(
                    Checkpoint(
                        start,
                        self._spec,
                        index=shared.view(start),
                        ledger=roster,
                    )
                )
            feed_shared(
                shared,
                roster,
                records,
                batch=self._batch_feeds,
                absorbed=absorbed,
            )
        else:
            if open_checkpoint:
                roster.append(Checkpoint(start, self._spec))
            if len(records) == 1:
                record = records[0]
                for checkpoint in roster.checkpoints:
                    checkpoint.process(record)
            elif records:
                for checkpoint in roster.checkpoints:
                    checkpoint.process_slide(records)
        now = self.now
        size = self.window_size
        while roster and not roster[0].covers_window(now, size):
            # The oldest checkpoint covers more than N actions.  Drop it
            # unless it is the only one still covering the whole window
            # (start-up/misaligned-slide corner: the next checkpoint would
            # cover strictly less than the window).
            second = roster[1] if len(roster) > 1 else None
            if second is not None and second.start <= max(1, now - size + 1):
                popped = roster.pop_oldest()
                if kernel is not None:
                    kernel.retire_checkpoint(popped)
            else:
                break
        if shared is not None and roster:
            shared.compact(roster[0].start, now=now)

    def query(self) -> SIMResult:
        """Return the solution of ``Λ_t[1]`` (Algorithm 1 lines 9-10)."""
        if not self._roster:
            return SIMResult(time=self.now, seeds=frozenset(), value=0.0)
        answer = self._roster[0]
        return SIMResult(time=self.now, seeds=answer.seeds, value=answer.value)

    def query_candidates(self):
        """Per-seed coverage of the answering checkpoint (seed-merge hook).

        Returns ``[(user, coverage_frozenset), ...]`` for the current
        answer's seeds, coverage taken from the answering checkpoint's
        suffix index — exactly what the sharded merge needs to deduct
        cross-shard overlap (see :mod:`repro.sharding.merge`).
        """
        if not self._roster:
            return []
        checkpoint = self._roster[0]
        index = checkpoint.index
        return [
            (user, frozenset(index.influence_set(user)))
            for user in sorted(checkpoint.seeds)
        ]

    # -- persistence -------------------------------------------------------

    def to_state(self) -> dict:
        """Explicit JSON-safe state of the whole framework (no pickle).

        The document carries a format-version header, the construction
        config (including the influence function's own state schema), the
        shared :class:`~repro.core.base.SIMAlgorithm` bookkeeping, the
        versioned index (shared mode), and every live checkpoint's oracle
        state.  :meth:`from_state` rebuilds an engine that continues the
        stream with answers identical to an uninterrupted run.
        """
        spec = self._spec
        return {
            "format": STATE_FORMAT_VERSION,
            "algorithm": "ic",
            "config": {
                "window_size": self.window_size,
                "k": self._k,
                "oracle": spec.name,
                "oracle_params": dict(spec.params),
                "func": spec.func.to_state(),
                "retention": self._forest._retention,
                "shared_index": self._shared is not None,
                "batch_feeds": self._batch_feeds,
                "checkpoint_interval": self._interval,
                "shard": self._shard.to_state() if self._shard is not None else None,
            },
            "base": self._base_state(),
            "slide_index": self._slide_index,
            # The oracle plane is a runtime choice, not part of the engine
            # config: object-plane and columnar snapshots stay
            # config-compatible and open into either plane.
            "columnar": self._columnar_requested,
            "shared": self._shared.to_state() if self._shared is not None else None,
            "roster": self._roster.to_state(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "InfluentialCheckpoints":
        """Rebuild a framework from :meth:`to_state` output."""
        check_state_header(state, "ic")
        config = state["config"]
        func = function_from_state(config["func"])
        params = config["oracle_params"]
        shard = None
        if config.get("shard") is not None:
            # Lazy import: core never depends on the sharding plane unless
            # a sharded state document actually needs it.
            from repro.sharding.partition import assignment_from_state

            shard = assignment_from_state(config["shard"])
        algorithm = cls(
            window_size=config["window_size"],
            k=config["k"],
            beta=params.get("beta", 0.1),
            oracle=config["oracle"],
            func=func,
            retention=config["retention"],
            shared_index=config["shared_index"],
            batch_feeds=config["batch_feeds"],
            checkpoint_interval=config["checkpoint_interval"],
            shard=shard,
            columnar=False,
        )
        # The spec's params are authoritative (the ctor only wires beta for
        # the threshold-guessing oracles); restore them verbatim.
        algorithm._spec = OracleSpec(
            name=config["oracle"], k=config["k"], func=func, params=dict(params)
        )
        algorithm._restore_base(state["base"])
        algorithm._slide_index = state["slide_index"]
        if algorithm._shared is not None:
            algorithm._shared = VersionedInfluenceIndex.from_state(state["shared"])
        # Plane selection re-runs against the *restored* spec and index
        # (the ctor's were placeholders); documents without the key (older
        # snapshots) auto-select, so old object-plane snapshots open
        # straight into the columnar kernel.
        algorithm._columnar_requested = state.get("columnar")
        algorithm._kernel = make_columnar_kernel(
            algorithm._spec,
            algorithm._shared,
            algorithm._columnar_requested,
            config["batch_feeds"],
        )
        algorithm._roster = CheckpointRoster.from_state(
            state["roster"],
            algorithm._spec,
            shared=algorithm._shared,
            kernel=algorithm._kernel,
        )
        return algorithm
