"""IC — the Influential Checkpoints framework (Section 4, Algorithm 1).

IC sidesteps action expiry by maintaining one checkpoint per window slide:
checkpoint ``Λ_t[i]`` runs an append-only oracle over the suffix starting at
slide ``i``.  When the window moves, the oldest checkpoint (whose suffix has
grown beyond the window) is discarded, a fresh checkpoint is created for the
newest slide, and every live checkpoint absorbs the arriving actions.  The
query answer is the solution of the oldest live checkpoint, which covers
exactly the current window, so IC inherits the oracle's ε ratio (Theorem 2).

With slide batches of ``L`` actions, IC maintains ``⌈N/L⌉`` checkpoints
(Section 5.3); with ``L = 1`` that is the full ``N`` of Algorithm 1.

**Shared-index data plane.**  The paper's per-action cost is dominated by
updating ``d`` influence sets in *every* live checkpoint — O(d · N/L) set
probes per action when each checkpoint owns an
:class:`~repro.core.influence_index.AppendOnlyInfluenceIndex`.  By default
IC instead keeps one
:class:`~repro.core.influence_index.VersionedInfluenceIndex` shared by all
checkpoints: each action is indexed once (O(d) latest-credit dict writes)
and the previous credit time of each pair locates — via ``bisect`` over the
sorted checkpoint starts — exactly the checkpoints whose suffix gained a
new member, which receive oracle feeds they would have received anyway.
Per-action index/oracle work is O(d + feeds) — plus trivial O(⌈N/L⌉)
per-slide dispatch bookkeeping — and index memory is the count of
distinct pairs rather than the sum of all suffix sizes.  Pass ``shared_index=False``
for the literal per-checkpoint reference implementation (used by the
equivalence tests, which prove both modes produce identical feeds, values,
and seeds).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.base import SIMAlgorithm, SIMResult
from repro.core.checkpoint import Checkpoint, OracleSpec, feed_shared
from repro.core.diffusion import ActionRecord
from repro.core.influence_index import VersionedInfluenceIndex
from repro.influence.functions import CardinalityInfluence, InfluenceFunction

__all__ = ["InfluentialCheckpoints"]


class InfluentialCheckpoints(SIMAlgorithm):
    """Continuous SIM processing with one checkpoint per window slide."""

    def __init__(
        self,
        window_size: int,
        k: int,
        beta: float = 0.1,
        oracle: str = "sieve",
        func: Optional[InfluenceFunction] = None,
        retention: Optional[int] = None,
        shared_index: bool = True,
    ):
        """
        Args:
            window_size: The paper's ``N``.
            k: Seed-set cardinality constraint.
            beta: Guess-granularity parameter of the threshold oracles.
            oracle: Registered oracle name (default the paper's case study,
                SieveStreaming).
            func: Influence function; defaults to cardinality.
            retention: Diffusion-forest retention horizon.
            shared_index: Share one versioned influence index across all
                checkpoints (the fast data plane).  ``False`` restores the
                per-checkpoint reference indexes.
        """
        super().__init__(window_size=window_size, k=k, retention=retention)
        func = func if func is not None else CardinalityInfluence()
        params = {"beta": beta} if oracle in ("sieve", "threshold") else {}
        self._spec = OracleSpec(name=oracle, k=k, func=func, params=params)
        self._checkpoints: List[Checkpoint] = []
        self._shared: Optional[VersionedInfluenceIndex] = (
            VersionedInfluenceIndex() if shared_index else None
        )

    @property
    def checkpoint_count(self) -> int:
        """Number of live checkpoints (``⌈N/L⌉`` in steady state)."""
        return len(self._checkpoints)

    @property
    def checkpoints(self) -> Sequence[Checkpoint]:
        """Live checkpoints, oldest first (read-only view)."""
        return tuple(self._checkpoints)

    @property
    def shared_index(self) -> Optional[VersionedInfluenceIndex]:
        """The shared versioned index (``None`` in reference mode)."""
        return self._shared

    def _on_slide(
        self,
        arrived: Sequence[ActionRecord],
        expired: Sequence[ActionRecord],
    ) -> None:
        # Algorithm 1 lines 2-5: retire the checkpoint that no longer covers
        # a window suffix, then open one for the arriving slide.
        cps = self._checkpoints
        start = arrived[0].time
        shared = self._shared
        if shared is not None:
            cps.append(Checkpoint(start, self._spec, index=shared.view(start)))
            feed_shared(shared, cps, arrived)
        else:
            cps.append(Checkpoint(start, self._spec))
            for record in arrived:
                for checkpoint in cps:
                    checkpoint.process(record)
        now = self.now
        size = self.window_size
        while cps and not cps[0].covers_window(now, size):
            # The oldest checkpoint covers more than N actions.  Drop it
            # unless it is the only one still covering the whole window
            # (start-up/misaligned-slide corner: the next checkpoint would
            # cover strictly less than the window).
            second = cps[1] if len(cps) > 1 else None
            if second is not None and second.start <= max(1, now - size + 1):
                cps.pop(0)
            else:
                break
        if shared is not None and cps:
            shared.compact(cps[0].start)

    def query(self) -> SIMResult:
        """Return the solution of ``Λ_t[1]`` (Algorithm 1 lines 9-10)."""
        if not self._checkpoints:
            return SIMResult(time=self.now, seeds=frozenset(), value=0.0)
        answer = self._checkpoints[0]
        return SIMResult(time=self.now, seeds=answer.seeds, value=answer.value)
