"""Core of the reproduction: SIM queries, checkpoints, IC and SIC.

Public surface:

* :class:`~repro.core.actions.Action` and stream helpers;
* :class:`~repro.core.window.SlidingWindow` and
  :class:`~repro.core.diffusion.DiffusionForest` substrates;
* :class:`~repro.core.ic.InfluentialCheckpoints` (Algorithm 1);
* :class:`~repro.core.sic.SparseInfluentialCheckpoints` (Algorithm 2);
* :class:`~repro.core.greedy.WindowedGreedy` (the ``1 − 1/e`` baseline);
* the checkpoint oracles package :mod:`repro.core.oracles`.
"""

from repro.core.actions import ROOT, Action
from repro.core.base import SIMAlgorithm, SIMResult
from repro.core.checkpoint import Checkpoint, OracleSpec
from repro.core.diffusion import ActionRecord, DiffusionForest
from repro.core.greedy import WindowedGreedy, greedy_seed_selection
from repro.core.ic import InfluentialCheckpoints
from repro.core.influence_index import (
    AppendOnlyInfluenceIndex,
    SuffixView,
    VersionedInfluenceIndex,
    WindowInfluenceIndex,
)
from repro.core.multi import MultiQueryEngine
from repro.core.sic import SparseInfluentialCheckpoints
from repro.core.stream import ListStream, batched, renumber, validate_stream
from repro.core.window import SlidingWindow

__all__ = [
    "MultiQueryEngine",
    "ROOT",
    "Action",
    "ActionRecord",
    "AppendOnlyInfluenceIndex",
    "SuffixView",
    "VersionedInfluenceIndex",
    "Checkpoint",
    "DiffusionForest",
    "InfluentialCheckpoints",
    "ListStream",
    "OracleSpec",
    "SIMAlgorithm",
    "SIMResult",
    "SlidingWindow",
    "SparseInfluentialCheckpoints",
    "WindowInfluenceIndex",
    "WindowedGreedy",
    "batched",
    "greedy_seed_selection",
    "renumber",
    "validate_stream",
]
